#include "serve/fleet.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <map>
#include <queue>
#include <stdexcept>

#include "serve/degrade.hpp"

namespace dlrmopt::serve
{

namespace
{

/** One scheduled arrival in the fleet's virtual-time loop. */
struct FArrival
{
    double tMs;
    std::uint64_t seq; //!< deterministic tie-break
    std::uint32_t tenant;
    std::uint64_t req;
};

struct FArrivalLater
{
    bool
    operator()(const FArrival& a, const FArrival& b) const
    {
        if (a.tMs != b.tMs)
            return a.tMs > b.tMs;
        return a.seq > b.seq;
    }
};

} // namespace

void
FleetConfig::validate() const
{
    if (instances == 0) {
        throw std::invalid_argument(
            "FleetConfig: need at least one instance slot");
    }
    if (!(quantumSamples > 0.0) || !std::isfinite(quantumSamples)) {
        throw std::invalid_argument(
            "FleetConfig: quantumSamples must be positive and finite");
    }
    if (!(backoffBaseMs >= 0.0) || !(backoffCapMs >= backoffBaseMs)) {
        throw std::invalid_argument(
            "FleetConfig: need 0 <= backoffBaseMs <= backoffCapMs");
    }
    batching.validate();
    capacity.validate();
    recalibration.validate();
    reload.validate();
    hotTier.validate();
    if (scrub.enabled)
        scrub.validate();
    if (capacity.minInstances > instances) {
        throw std::invalid_argument(
            "FleetConfig: capacity.minInstances exceeds the slot "
            "count");
    }
}

bool
FleetStats::conserved() const
{
    if (total.arrived != total.served + total.shed + total.failed)
        return false;
    for (const TenantStats& t : perTenant) {
        if (!t.conserved())
            return false;
    }
    return true;
}

std::string
FleetStats::summary() const
{
    char buf[512];
    const double pct = total.served
        ? 100.0 * static_cast<double>(compliant) /
            static_cast<double>(total.served)
        : 0.0;
    int len = std::snprintf(
        buf, sizeof(buf),
        "tenants %zu | arrived %zu served %zu shed %zu (budget %zu "
        "deadline %zu) failed %zu | compliant %zu (%.1f%%) | p95 %.3f "
        "ms | up %zu down %zu crashes %zu restarts %zu | %.0f "
        "instance-ms",
        perTenant.size(), total.arrived, total.served, total.shed,
        budgetShed, deadlineShed, total.failed, compliant, pct,
        total.latency.p95(), scaleUps, scaleDowns, crashes, restarts,
        instanceMsUp);
    if (len > 0 && static_cast<std::size_t>(len) < sizeof(buf) &&
        (recalibrations || blocksScrubbed)) {
        const int n = std::snprintf(
            buf + len, sizeof(buf) - static_cast<std::size_t>(len),
            " | refits %zu scrubbed %llu repaired %llu",
            recalibrations,
            static_cast<unsigned long long>(blocksScrubbed),
            static_cast<unsigned long long>(scrubRepairs));
        if (n > 0)
            len += n;
    }
    if (len > 0 && static_cast<std::size_t>(len) < sizeof(buf) &&
        reloadsStarted) {
        const int n = std::snprintf(
            buf + len, sizeof(buf) - static_cast<std::size_t>(len),
            " | reloads %zu (committed %zu rolled-back %zu failed "
            "%zu) swaps %zu retired %zu",
            reloadsStarted, reloadsCommitted, reloadsRolledBack,
            reloadsFailed, versionSwaps, versionsRetired);
        if (n > 0)
            len += n;
    }
    if (len > 0 && static_cast<std::size_t>(len) < sizeof(buf) &&
        tierHits + tierMisses > 0) {
        std::snprintf(
            buf + len, sizeof(buf) - static_cast<std::size_t>(len),
            " | tier hit %.1f%% promoted %llu demoted %llu",
            100.0 * tierHitRate(),
            static_cast<unsigned long long>(tierPromotions),
            static_cast<unsigned long long>(tierDemotions));
    }
    return buf;
}

TenantFleet::TenantFleet(const TenantRegistry& reg,
                         const sched::Topology& topo,
                         const FleetConfig& cfg)
    : _reg(reg), _cfg(cfg)
{
    _cfg.validate();
    if (_reg.empty()) {
        throw std::invalid_argument(
            "TenantFleet: need at least one tenant");
    }

    const auto groups = topo.partition(_cfg.instances);
    const std::size_t n_t = _reg.size();

    _stores.reserve(n_t);
    for (std::size_t k = 0; k < n_t; ++k) {
        _stores.push_back(core::EmbeddingStore::createMutable(
            _reg.tenant(k).model, _cfg.seed + k));
    }

    _models.resize(_cfg.instances);
    _servers.resize(_cfg.instances);
    for (std::size_t i = 0; i < _cfg.instances; ++i) {
        _models[i].reserve(n_t);
        _servers[i].reserve(n_t);
        for (std::size_t k = 0; k < n_t; ++k) {
            const TenantConfig& tc = _reg.tenant(k);
            _models[i].push_back(std::make_unique<core::DlrmModel>(
                tc.model, _stores[k], _cfg.seed));
            ServerConfig sc;
            sc.slaMs = tc.effectiveSlaMs();
            sc.service = tc.service;
            sc.batching = _cfg.batching;
            sc.admission = _cfg.admission;
            sc.maxRetries = _cfg.maxRetries;
            sc.backoffBaseMs = _cfg.backoffBaseMs;
            sc.backoffCapMs = _cfg.backoffCapMs;
            _servers[i].push_back(std::make_unique<Server>(
                *_models[i].back(), groups[i], sc));
        }
    }
    _coresPerInstance = _servers.front().front()->numCores();

    // Replicated hot tiers: one per (instance, tenant) replica, each
    // pinned over that tenant's shared cold store — replicas learn
    // their own hot sets (they serve the same stream here, but the
    // layering matches a real fleet, where they would not).
    if (_cfg.hotTier.budgetBytes > 0) {
        _tiers.resize(_cfg.instances);
        for (std::size_t i = 0; i < _cfg.instances; ++i) {
            _tiers[i].reserve(n_t);
            for (std::size_t k = 0; k < n_t; ++k) {
                auto tier = std::make_shared<core::HotTierCache>(
                    _stores[k], _cfg.hotTier);
                _servers[i][k]->attachHotTier(tier);
                _tiers[i].push_back(std::move(tier));
            }
        }
    }

    // Boot version 1 per tenant: one shared full view over the
    // tenant's store, bitwise-equal to every replica's private view
    // (same cfg, store, seed), wrapped in the version holder the
    // dispatch path pins from.
    _versioned.reserve(n_t);
    for (std::size_t k = 0; k < n_t; ++k) {
        const TenantConfig& tc = _reg.tenant(k);
        auto view = std::make_shared<const core::DlrmModel>(
            tc.model, _stores[k], _cfg.seed);
        _versioned.push_back(std::make_unique<core::VersionedModel>(
            core::ModelVersion::adopt(tc.model, 1, _cfg.seed,
                                      _stores[k], std::move(view))));
    }
}

FleetStats
TenantFleet::serve(const std::vector<TenantWorkload>& work,
                   const core::PrefetchSpec& pf,
                   const FaultSchedule *schedule,
                   const std::vector<ReloadEvent>& reloads)
{
    const std::size_t n_t = _reg.size();
    const std::size_t n_i = _servers.size();
    if (work.size() != n_t) {
        throw std::invalid_argument(
            "TenantFleet: need exactly one workload per tenant");
    }
    for (std::size_t k = 0; k < n_t; ++k) {
        if (!work[k].arrivalsMs.empty() && work[k].batches.empty()) {
            throw std::invalid_argument(
                "TenantFleet: tenant " + _reg.tenant(k).name +
                " has arrivals but no batches");
        }
    }
    if (schedule)
        schedule->validate(n_i);

    FleetStats fs;
    fs.perTenant.resize(n_t);
    for (std::size_t k = 0; k < n_t; ++k) {
        fs.perTenant[k].stats.arrived = work[k].arrivalsMs.size();
        fs.total.arrived += work[k].arrivalsMs.size();
    }

    // ---- Per-tenant machinery -----------------------------------
    std::vector<ServiceModelRecalibrator> recal;
    recal.reserve(n_t);
    for (std::size_t k = 0; k < n_t; ++k)
        recal.emplace_back(_reg.tenant(k).service, _cfg.recalibration);
    std::vector<ServiceModel> estimates(n_t);

    std::vector<std::unique_ptr<EmbeddingScrubber>> scrubbers;
    if (_cfg.scrub.enabled) {
        scrubbers.reserve(n_t);
        for (std::size_t k = 0; k < n_t; ++k) {
            scrubbers.push_back(std::make_unique<EmbeddingScrubber>(
                _versioned[k]->current()->store, _cfg.scrub));
        }
    }

    // ---- Versioned live reload ----------------------------------
    std::vector<core::VersionedModel *> holders;
    holders.reserve(n_t);
    for (std::size_t k = 0; k < n_t; ++k)
        holders.push_back(_versioned[k].get());
    ReloadManager reload(_cfg.reload, reloads, holders, n_i);
    for (std::size_t k = 0; k < n_t; ++k) {
        if (_cfg.scrub.enabled)
            reload.attachScrubber(k, scrubbers[k].get());
        if (!work[k].batches.empty())
            reload.attachShadow(k, &work[k].dense, &work[k].batches);
    }
    if (schedule)
        reload.attachFaults(schedule);

    // Hot tiers: wire every replica tier for commit-time retargeting
    // and into its tenant's scrub sweep, and snapshot cumulative
    // counters so the session reports deltas (tiers outlive serve()
    // calls — a warm tier carries its hot set into the next session).
    std::vector<core::HotTierStats> tier_base;
    for (const auto& row : _tiers) {
        for (const auto& t : row)
            tier_base.push_back(t->stats());
    }
    if (!_tiers.empty()) {
        for (std::size_t i = 0; i < n_i; ++i) {
            for (std::size_t k = 0; k < n_t; ++k) {
                reload.attachHotTier(i, k, _tiers[i][k].get());
                if (_cfg.scrub.enabled)
                    scrubbers[k]->attachHotTier(_tiers[i][k].get());
            }
        }
    }

    // In-flight version pins, keyed by virtual completion time: a
    // dispatch's pin is released only when the clock passes its end,
    // so retiring versions outlive every batch that started on them.
    using Pin =
        std::pair<double, std::shared_ptr<const core::ModelVersion>>;
    const auto pinLater = [](const Pin& a, const Pin& b) {
        return a.first > b.first;
    };
    std::priority_queue<Pin, std::vector<Pin>, decltype(pinLater)>
        inflight(pinLater);

    WfqConfig wfq;
    wfq.weights = _reg.weights();
    wfq.quantumSamples = _cfg.quantumSamples;
    BatchQueue queue(_cfg.batching, wfq);

    // ---- Elastic capacity / lifecycle ---------------------------
    CapacityController ctrl(_cfg.capacity, n_i, _coresPerInstance);
    const std::size_t init_up =
        _cfg.capacity.elastic ? _cfg.capacity.minInstances : n_i;

    std::vector<InstanceState> state(n_i, InstanceState::Down);
    std::vector<std::size_t> active(n_i, 0);
    std::vector<double> drain_ready(n_i, 0.0);
    std::vector<double> probation_end(n_i, 0.0);
    std::vector<double> up_since(n_i, 0.0);
    std::vector<char> chaos_down(n_i, 0);
    std::vector<std::vector<double>> free_at(n_i);
    for (std::size_t i = 0; i < n_i; ++i) {
        free_at[i].assign(_coresPerInstance, 0.0);
        if (i < init_up) {
            state[i] = InstanceState::Up;
            active[i] = _coresPerInstance;
        }
    }

    const auto maxFreeAt = [&](std::size_t i) -> double {
        double m = 0.0;
        for (double f : free_at[i])
            m = std::max(m, f);
        return m;
    };
    const auto leaveUp = [&](std::size_t i, double now) {
        fs.instanceMsUp += std::max(0.0, now - up_since[i]);
    };
    const auto rebuild = [&](std::size_t i, double now) {
        // O(weights) per tenant: fresh MLP views over the untouched
        // shared stores — the restarted replicas are bitwise-
        // identical to their pre-crash selves.
        for (std::size_t k = 0; k < n_t; ++k) {
            *_models[i][k] = core::DlrmModel(_reg.tenant(k).model,
                                             _stores[k], _cfg.seed);
        }
        // Re-pin the replica's hot tiers against the committed
        // version of record: the hot set survives the restart, its
        // bytes re-copied (and checksums rebuilt) from the store the
        // replica will actually serve.
        if (!_tiers.empty()) {
            for (std::size_t k = 0; k < n_t; ++k)
                _tiers[i][k]->retarget(_versioned[k]->current()->store);
        }
        std::fill(free_at[i].begin(), free_at[i].end(), now);
    };
    const auto beginRestart = [&](std::size_t i, double now) {
        state[i] = InstanceState::WarmRestart;
        probation_end[i] = now + _cfg.capacity.probationMs;
        rebuild(i, now);
        // The replica comes back on the committed version of record;
        // an active rollout re-reconciles it at commit/rollback.
        reload.notifyRestart(i);
    };
    const auto beginDrainAt = [&](std::size_t i, double now) {
        state[i] = InstanceState::Draining;
        active[i] = std::min(_cfg.capacity.partialDrainCores,
                             _coresPerInstance);
        drain_ready[i] =
            std::max(maxFreeAt(i), now) +
            (active[i] > 0 ? _cfg.capacity.drainGraceMs : 0.0);
    };

    const auto tickLifecycle = [&](double now) {
        for (std::size_t i = 0; i < n_i; ++i) {
            if (state[i] == InstanceState::Draining &&
                now >= drain_ready[i]) {
                state[i] = InstanceState::Down;
                active[i] = 0;
            }
            if (state[i] == InstanceState::WarmRestart &&
                now >= probation_end[i]) {
                state[i] = InstanceState::Up;
                active[i] = _coresPerInstance;
                up_since[i] = probation_end[i];
                ++fs.restarts;
            }
        }
    };

    const auto reconcile = [&](double now) {
        if (!_cfg.capacity.elastic)
            return;
        // Reload-aware capacity: while a canary/rollout is in flight,
        // freeze the controller's scale-down hysteresis — a lull
        // spanning the rollout must not bank credit and drain the
        // canary (or an instance mid-swap) the moment a window closes.
        ctrl.holdScaleDowns(reload.active());
        const std::size_t desired = ctrl.desiredInstances(now);
        fs.peakForecastLoad =
            std::max(fs.peakForecastLoad, ctrl.forecastLoad());

        std::size_t live = 0;
        for (std::size_t i = 0; i < n_i; ++i) {
            if (state[i] == InstanceState::Up ||
                state[i] == InstanceState::WarmRestart ||
                (state[i] == InstanceState::Draining && !chaos_down[i]))
                ++live;
        }
        // Scale up: cancel elastic drains first (cheapest — the
        // instance never went down), then warm-restart Down slots.
        while (live < desired) {
            std::size_t pick = n_i;
            for (std::size_t i = 0; i < n_i; ++i) {
                if (state[i] == InstanceState::Down && !chaos_down[i]) {
                    pick = i;
                    break;
                }
            }
            if (pick == n_i)
                break;
            beginRestart(pick, now);
            ++fs.scaleUps;
            ++live;
        }
        // Scale down: drain the highest-index Up instances. Never
        // while a reload is in flight — the highest-index Up instance
        // may be the canary, and draining any instance mid-rollout
        // churns the pin set the stage machinery is swapping.
        std::size_t up = 0;
        for (std::size_t i = 0; i < n_i; ++i) {
            if (state[i] == InstanceState::Up)
                ++up;
        }
        while (up > desired && !reload.active()) {
            std::size_t pick = n_i;
            for (std::size_t i = n_i; i-- > 0;) {
                if (state[i] == InstanceState::Up) {
                    pick = i;
                    break;
                }
            }
            if (pick == n_i)
                break;
            leaveUp(pick, now);
            beginDrainAt(pick, now);
            ++fs.scaleDowns;
            fs.scaleDownAtMs.push_back(now);
            --up;
        }
    };

    // ---- Scripted chaos -----------------------------------------
    std::size_t lc_cursor = 0;
    std::size_t flip_cursor = 0;
    const auto advanceScrubbers = [&](double now) {
        for (auto& s : scrubbers)
            s->advanceTo(now);
    };
    const auto applyFlip = [&](const BitFlipEvent& e) {
        // A host-level memory fault hits whichever colocated tenant
        // stores the (table, row, bit) coordinate fits in — the
        // *currently serving* version's bytes, plus any incoming
        // version still mid-rollout (whose integrity gates must be
        // able to catch it).
        for (std::size_t k = 0; k < n_t; ++k) {
            core::EmbeddingStore& st =
                *_versioned[k]->current()->store;
            if (e.table < st.numTables() && e.row < st.rows() &&
                e.bit < st.dim() * 32) {
                st.flipBit(e.table, e.row, e.bit);
            }
        }
        // The same fault hits any replica's pinned copy of the row —
        // the tier's own checksums must catch it independently.
        for (const auto& row_tiers : _tiers) {
            for (const auto& t : row_tiers) {
                if (e.table < t->coldStore()->numTables() &&
                    e.row < t->coldStore()->rows() &&
                    e.bit <
                        t->coldStore()->table(0).storedRowBytes() * 8) {
                    t->flipBit(e.table,
                               static_cast<dlrmopt::RowIndex>(e.row),
                               e.bit);
                }
            }
        }
        reload.applyBitFlip(e.table, e.row, e.bit);
    };
    std::vector<char> up_flags(n_i, 0);
    const auto advanceReload = [&](double now) {
        for (std::size_t i = 0; i < n_i; ++i)
            up_flags[i] = state[i] == InstanceState::Up ? 1 : 0;
        reload.advanceTo(now, up_flags);
        // Release the pins of every dispatch the clock has passed,
        // then reclaim any retiring version whose pins have drained.
        while (!inflight.empty() && inflight.top().first <= now)
            inflight.pop();
        for (std::size_t k = 0; k < n_t; ++k)
            fs.versionsRetired += _versioned[k]->retireDrained();
    };

    const auto applyUpTo = [&](double now) {
        tickLifecycle(now);
        if (schedule) {
            const auto& lc = schedule->lifecycleEvents();
            while (lc_cursor < lc.size() &&
                   lc[lc_cursor].atMs <= now) {
                const LifecycleEvent& e = lc[lc_cursor++];
                const std::size_t j = e.instance;
                tickLifecycle(e.atMs);
                if (e.kind == LifecycleEvent::Kind::Crash) {
                    if (state[j] == InstanceState::Up) {
                        leaveUp(j, e.atMs);
                        beginDrainAt(j, e.atMs);
                        ++fs.crashes;
                    } else if (state[j] == InstanceState::WarmRestart) {
                        state[j] = InstanceState::Down;
                        active[j] = 0;
                        ++fs.crashes;
                    }
                    chaos_down[j] = 1;
                } else { // Recover
                    chaos_down[j] = 0;
                    if (state[j] == InstanceState::Draining) {
                        state[j] = InstanceState::Down; // outage won
                        active[j] = 0;
                    }
                    if (state[j] == InstanceState::Down)
                        beginRestart(j, e.atMs);
                }
            }
            tickLifecycle(now);
            const auto& flips = schedule->bitFlipEvents();
            while (flip_cursor < flips.size() &&
                   flips[flip_cursor].atMs <= now) {
                const BitFlipEvent& e = flips[flip_cursor++];
                advanceScrubbers(e.atMs);
                applyFlip(e);
            }
        }
        advanceScrubbers(now);
        reconcile(now);
        advanceReload(now);
    };

    const auto injFor = [&](std::size_t i,
                            double now) -> const FaultInjector * {
        return schedule ? schedule->injectorAt(now, i) : nullptr;
    };

    // Dispatchable = Up, or Draining with a residual (partial-drain)
    // core group still open.
    const auto dispatchable = [&](std::size_t i) -> bool {
        return state[i] == InstanceState::Up ||
               (state[i] == InstanceState::Draining && active[i] > 0);
    };
    // Earliest-free (instance, core) over the dispatchable set;
    // returns {n_i, 0} when none. Lowest indices win ties.
    struct Slot
    {
        std::size_t inst;
        std::size_t core;
        double freeMs;
    };
    const auto bestSlot = [&]() -> Slot {
        Slot s{n_i, 0, std::numeric_limits<double>::max()};
        for (std::size_t i = 0; i < n_i; ++i) {
            if (!dispatchable(i))
                continue;
            const std::size_t limit =
                std::min(active[i], free_at[i].size());
            for (std::size_t c = 0; c < limit; ++c) {
                if (free_at[i][c] < s.freeMs) {
                    s = Slot{i, c, free_at[i][c]};
                }
            }
        }
        return s;
    };

    // ---- Arrival stream -----------------------------------------
    std::priority_queue<FArrival, std::vector<FArrival>, FArrivalLater>
        arrivals;
    {
        std::uint64_t seq = 0;
        for (std::size_t k = 0; k < n_t; ++k) {
            for (std::size_t r = 0; r < work[k].arrivalsMs.size(); ++r) {
                arrivals.push(FArrival{work[k].arrivalsMs[r], seq++,
                                       static_cast<std::uint32_t>(k),
                                       r});
            }
        }
    }

    std::uint64_t pseq = 0;
    const auto admitArrival = [&](const FArrival& e) {
        const TenantConfig& tc = _reg.tenant(e.tenant);
        const std::size_t samples =
            work[e.tenant]
                .batches[e.req % work[e.tenant].batches.size()]
                .batchSize;
        ctrl.observeArrival(
            e.tMs, recal[e.tenant].current().serviceMs(samples));
        TenantStats& ts = fs.perTenant[e.tenant];
        if (tc.admissionBudget != 0 &&
            queue.queuedOf(e.tenant) >= tc.admissionBudget) {
            ++ts.stats.shed;
            ++ts.budgetShed;
            ++fs.total.shed;
            ++fs.budgetShed;
            return;
        }
        queue.push(PendingRequest{e.tMs, pseq++, e.req, 0, e.tMs,
                                  samples, e.tenant,
                                  tc.effectiveSlaMs()});
    };

    // Per-tenant dense inputs per member size, reference-stable.
    std::vector<std::map<std::size_t, core::Tensor>> dense_maps(n_t);
    const auto denseFor = [&](std::size_t k,
                              std::size_t nrows) -> const core::Tensor& {
        auto& m = dense_maps[k];
        auto it = m.find(nrows);
        if (it == m.end()) {
            const core::Tensor& src = work[k].dense;
            core::Tensor t(nrows, src.cols());
            std::memcpy(t.data(), src.data(),
                        nrows * src.cols() * sizeof(float));
            it = m.emplace(nrows, std::move(t)).first;
        }
        return it->second;
    };

    // Per-tenant degradation: each tenant walks its own tier ladder
    // against its own SLA, so one tenant's tail blow-up shrinks only
    // that tenant's coalescing cap and execution scheme. Tenants with
    // degrade disabled (the default) stay pinned at tier 0.
    std::vector<DegradationPolicy> degrade;
    degrade.reserve(n_t);
    for (std::size_t k = 0; k < n_t; ++k) {
        degrade.emplace_back(_reg.tenant(k).degrade,
                             _reg.tenant(k).effectiveSlaMs());
    }
    std::vector<std::size_t> caps(n_t, _cfg.batching.maxRequests);

    const double linger = _cfg.batching.maxLingerMs;
    const double inf = std::numeric_limits<double>::max();

    // Reused per-dispatch scratch.
    std::vector<PendingRequest> members;
    std::vector<const core::SparseBatch *> parts;
    std::vector<const core::Tensor *> dense_parts;
    std::vector<std::size_t> member_sizes;
    std::vector<char> member_ok;
    std::vector<core::SparseBatch> corrupted;

    double makespan = 0.0;
    double busy_ms = 0.0;

    while (!arrivals.empty() || !queue.empty()) {
        const double next_evt =
            arrivals.empty() ? inf : arrivals.top().tMs;

        if (queue.empty()) {
            const FArrival e = arrivals.top();
            arrivals.pop();
            applyUpTo(e.tMs);
            admitArrival(e);
            continue;
        }

        Slot slot = bestSlot();
        if (slot.inst >= n_i) {
            // Nothing can take work. Sleep until something will:
            // a drain completing (frees the slot for a restart), a
            // probation ending, or the next scripted lifecycle event.
            double wake = inf;
            for (std::size_t i = 0; i < n_i; ++i) {
                if (state[i] == InstanceState::Draining)
                    wake = std::min(wake, drain_ready[i]);
                if (state[i] == InstanceState::WarmRestart)
                    wake = std::min(wake, probation_end[i]);
            }
            if (schedule) {
                const auto& lc = schedule->lifecycleEvents();
                if (lc_cursor < lc.size())
                    wake = std::min(wake, lc[lc_cursor].atMs);
            }
            if (_cfg.capacity.elastic) {
                // Emergency scale-up: queued work with zero serving
                // capacity is the strongest possible load signal —
                // restart a healthy Down slot right now instead of
                // waiting for the forecast to notice.
                std::size_t pick = n_i;
                for (std::size_t i = 0; i < n_i; ++i) {
                    if (state[i] == InstanceState::Down &&
                        !chaos_down[i]) {
                        pick = i;
                        break;
                    }
                }
                if (pick < n_i) {
                    const double now = queue.headReadyMs();
                    beginRestart(pick, now);
                    ++fs.scaleUps;
                    continue;
                }
            }
            if (wake == inf && arrivals.empty()) {
                // Every instance is chaos-down for good: abandon the
                // queue, loudly, conserving per-tenant accounting.
                while (!queue.empty()) {
                    queue.nextBatch(inf, 1, 0.0,
                                    ServiceModel::constant(1.0), 1.0,
                                    members);
                    for (const PendingRequest& m : members) {
                        TenantStats& ts = fs.perTenant[m.tenant];
                        ++ts.stats.failed;
                        ++fs.total.failed;
                        ++fs.lifecycleShed;
                    }
                }
                continue;
            }
            const double t = std::min(wake, next_evt);
            applyUpTo(t);
            if (next_evt <= wake) {
                const FArrival e = arrivals.top();
                arrivals.pop();
                admitArrival(e);
            }
            continue;
        }

        const double head_ready = queue.headReadyMs();
        const double td = std::max(slot.freeMs, head_ready);
        const double hold = std::max(td, head_ready + linger);
        if (next_evt <= hold) {
            const FArrival e = arrivals.top();
            arrivals.pop();
            applyUpTo(e.tMs);
            admitArrival(e);
            continue;
        }

        // Commit to dispatching at td — but applying lazy events up
        // to td may change the fleet (a crash, a scale move, a
        // probation ending on an idler core). Re-resolve and retry
        // the loop when the slot moved.
        applyUpTo(td);
        const Slot again = bestSlot();
        if (again.inst != slot.inst || again.core != slot.core ||
            again.freeMs != slot.freeMs)
            continue;

        const std::size_t inst = slot.inst;
        const std::size_t core = slot.core;
        const FaultInjector *finj = injFor(inst, td);
        const double straggle =
            finj ? finj->serviceFactor(core) : 1.0;

        for (std::size_t k = 0; k < n_t; ++k) {
            estimates[k] = recal[k].current();
            caps[k] = std::max<std::size_t>(
                1, static_cast<std::size_t>(std::floor(
                       degrade[k].state().batchFraction *
                       static_cast<double>(
                           _cfg.batching.maxRequests))));
        }
        queue.nextBatch(free_at[inst][core], caps, 0.0, estimates,
                        straggle, members);
        if (members.empty())
            continue;

        const std::uint32_t ten = members.front().tenant;
        const DegradeState tier = degrade[ten].state();
        const TenantConfig& tc = _reg.tenant(ten);
        TenantStats& ts = fs.perTenant[ten];
        const double sla = tc.effectiveSlaMs();

        double latest_ready = members.front().readyMs;
        std::size_t total_samples = 0;
        for (const PendingRequest& m : members) {
            latest_ready = std::max(latest_ready, m.readyMs);
            total_samples += m.samples;
        }
        const double start = std::max(free_at[inst][core], latest_ready);

        // The *estimate* prices admission; the scripted *truth*
        // advances the clock. Their gap is exactly what in-session
        // recalibration exists to close.
        const double est_service =
            estimates[ten].serviceMs(total_samples) * straggle;
        const ServiceModel& truth = tc.truth.at(start);
        const double true_service =
            truth.serviceMs(total_samples) * straggle;

        if (_cfg.admission && members.size() == 1 &&
            members.front().tries == 0 &&
            start + est_service >
                members.front().arrivalMs + sla) {
            ++ts.stats.shed;
            ++ts.deadlineShed;
            ++fs.total.shed;
            ++fs.deadlineShed;
            continue;
        }

        // Per-member fault resolution before the fused forward (one
        // poisoned member fails alone, exactly like Server's batched
        // path).
        const std::size_t rows_k = tc.model.rows;
        const auto& batches_k = work[ten].batches;
        parts.clear();
        dense_parts.clear();
        member_sizes.clear();
        member_ok.assign(members.size(), 1);
        corrupted.clear();
        if (finj)
            corrupted.reserve(members.size());
        for (std::size_t m = 0; m < members.size(); ++m) {
            const PendingRequest& r = members[m];
            const core::SparseBatch *sparse =
                &batches_k[r.req % batches_k.size()];
            if (finj) {
                try {
                    finj->maybeThrow(r.req, r.tries);
                } catch (...) {
                    member_ok[m] = 0;
                    continue;
                }
                corrupted.push_back(finj->maybeCorrupt(
                    *sparse, rows_k, r.req, r.tries));
                sparse = &corrupted.back();
                if (!sparse->valid(rows_k)) {
                    member_ok[m] = 0;
                    continue;
                }
            }
            parts.push_back(sparse);
            dense_parts.push_back(&denseFor(ten, r.samples));
            member_sizes.push_back(r.samples);
        }

        // Pin the version this dispatch executes on. The pin is
        // copied once, the whole coalesced batch runs on its model,
        // and the pin is released only when the virtual clock passes
        // the dispatch's end — a reload swapping this slot mid-flight
        // never mixes versions inside the batch.
        std::shared_ptr<const core::ModelVersion> pin =
            reload.pinned(inst, ten);
        const std::uint64_t pin_fp = pin->fingerprint;
        bool exec_ok = true;
        if (!parts.empty()) {
            try {
                fs.total.execTotalMs +=
                    _servers[inst][ten]->executeBatchedAttempt(
                        core, parts, dense_parts, tier, pf,
                        *pin->model);
            } catch (...) {
                exec_ok = false;
            }
        }
        if (pin->fingerprint != pin_fp) {
            throw std::logic_error(
                "TenantFleet: version identity changed under an "
                "in-flight batch");
        }

        ++fs.total.dispatches;
        ++ts.stats.dispatches;
        if (tier.dtype != core::EmbDtype::Fp32) {
            ++fs.total.quantDispatches;
            ++ts.stats.quantDispatches;
        }
        const double end = start + true_service;
        inflight.emplace(end, std::move(pin));
        free_at[inst][core] = end;
        busy_ms += true_service;
        makespan = std::max(makespan, end);
        if (state[inst] == InstanceState::Draining)
            drain_ready[inst] = std::max(drain_ready[inst], end);

        // Feed recalibration the measured (un-straggled) dispatch
        // time — the estimate chases the scripted truth.
        recal[ten].observe(total_samples,
                           truth.serviceMs(total_samples));
        if (recal[ten].maybeRecalibrate(end))
            ++fs.recalibrations;

        for (std::size_t m = 0; m < members.size(); ++m) {
            const PendingRequest& r = members[m];
            const bool ok = member_ok[m] && exec_ok;
            if (ok) {
                ++fs.total.served;
                ++ts.stats.served;
                const double latency = end - r.arrivalMs;
                fs.total.latency.add(latency);
                ts.stats.latency.add(latency);
                degrade[ten].observe(latency);
                reload.observeLatency(inst, ten, latency);
                if (latency <= sla) {
                    ++fs.compliant;
                    ++ts.compliant;
                }
            } else if (r.tries < _cfg.maxRetries) {
                ++fs.total.retried;
                ++ts.stats.retried;
                const double backoff = std::min(
                    _cfg.backoffBaseMs *
                        static_cast<double>(1ull << r.tries),
                    _cfg.backoffCapMs);
                queue.push(PendingRequest{end + backoff, pseq++, r.req,
                                          r.tries + 1, r.arrivalMs,
                                          r.samples, ten, sla});
            } else {
                ++fs.total.failed;
                ++ts.stats.failed;
            }
        }
    }

    // Fold remaining scripted events / ticks into the final state so
    // availability-style accounting covers the whole session.
    applyUpTo(makespan);

    // Let a rollout whose canary window or stage holds extend past
    // the last dispatch run to completion — the fleet stays up after
    // the request stream ends, so time keeps passing for the reload
    // machinery (bounded: each pass crosses at least one stage).
    {
        const double grace = std::max(
            {_cfg.reload.loadMs, _cfg.reload.canaryWindowMs,
             _cfg.reload.stageHoldMs, 1.0});
        double t = makespan;
        for (int g = 0; g < 10000 && reload.active(); ++g) {
            t += grace;
            applyUpTo(t);
        }
    }
    for (std::size_t i = 0; i < n_i; ++i) {
        if (state[i] == InstanceState::Up && makespan > up_since[i])
            fs.instanceMsUp += makespan - up_since[i];
    }
    for (const auto& s : scrubbers) {
        fs.blocksScrubbed += s->blocksScrubbed();
        fs.scrubCorruptions += s->corruptionsFound();
        fs.scrubRepairs += s->blocksRepaired();
        fs.scrubSweeps += s->sweepsCompleted();
    }
    {
        std::size_t ti = 0;
        for (const auto& row_tiers : _tiers) {
            for (const auto& t : row_tiers) {
                const core::HotTierStats s = t->stats();
                const core::HotTierStats& b = tier_base[ti++];
                fs.tierHits += s.hits - b.hits;
                fs.tierMisses += s.misses - b.misses;
                fs.tierPromotions += s.promotions - b.promotions;
                fs.tierDemotions += s.demotions - b.demotions;
                fs.tierCorruptions +=
                    s.corruptionsFound - b.corruptionsFound;
                fs.tierQuarantined +=
                    s.blocksQuarantined - b.blocksQuarantined;
                fs.tierRepaired += s.blocksRepaired - b.blocksRepaired;
            }
        }
    }
    fs.estimateError.resize(n_t);
    fs.estimateStale.resize(n_t);
    for (std::size_t k = 0; k < n_t; ++k) {
        fs.estimateError[k] = recal[k].meanRelativeError();
        fs.estimateStale[k] = recal[k].stale() ? 1 : 0;
        fs.perTenant[k].stats.makespanMs = makespan;
        fs.perTenant[k].stats.degradeEscalations =
            degrade[k].escalations();
        fs.perTenant[k].stats.finalTier = degrade[k].tier();
    }
    fs.reloadsStarted = reload.started();
    fs.reloadsCommitted = reload.committed();
    fs.reloadsRolledBack = reload.rolledBack();
    fs.reloadsFailed = reload.failed();
    fs.shadowedRequests = reload.shadowedRequests();
    fs.versionSwaps = reload.instanceSwaps();
    fs.reloadOutcomes = reload.outcomes();
    fs.finalVersions.resize(n_t);
    for (std::size_t k = 0; k < n_t; ++k)
        fs.finalVersions[k] = _versioned[k]->currentVersion();
    fs.makespanMs = makespan;
    fs.total.makespanMs = makespan;
    if (fs.instanceMsUp > 0.0) {
        fs.total.serverUtilization =
            busy_ms /
            (fs.instanceMsUp * static_cast<double>(_coresPerInstance));
    }
    return fs;
}

} // namespace dlrmopt::serve
