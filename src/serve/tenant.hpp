/**
 * @file
 * Tenant registry for the multi-tenant serving fleet.
 *
 * The paper's Sec. 6.5 cluster serves one model class per deployment;
 * a real recommendation fleet multiplexes several — ranking, retrieval
 * and ads models with different architectures (Table 2 presets),
 * different SLA targets (Table 1) and very different traffic curves —
 * onto the same cores. A Tenant binds one such workload to:
 *
 *  - a **model preset** (its own ModelConfig, and therefore its own
 *    EmbeddingStore: tenants never share tables);
 *  - an **SLA class** (per-request deadline, defaulting to the model
 *    class's Table 1 target);
 *  - a **fair-share weight** (the tenant's deficit-round-robin weight
 *    in the shared BatchQueue — its guaranteed fraction of dispatch
 *    bandwidth under contention);
 *  - an **admission budget** (max requests the tenant may hold queued;
 *    overflow is shed at arrival and charged to the tenant, so one
 *    tenant's burst cannot consume the whole queue);
 *  - a **service process**: a seed ServiceModel estimate plus the
 *    scripted ServiceTimeline truth its dispatches actually follow
 *    (serve/service_model.hpp), which is what the fleet's in-session
 *    recalibration converges to.
 */

#ifndef DLRMOPT_SERVE_TENANT_HPP
#define DLRMOPT_SERVE_TENANT_HPP

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/model_config.hpp"
#include "serve/degrade.hpp"
#include "serve/serve_stats.hpp"
#include "serve/service_model.hpp"

namespace dlrmopt::serve
{

/** One tenant's binding of model, SLA, share and service process. */
struct TenantConfig
{
    std::string name;

    /** Architecture this tenant serves (typically a Table 2 preset
     *  scaled to fit the host). */
    core::ModelConfig model;

    /** Per-request deadline (ms); 0 = the model class's Table 1
     *  target. */
    double slaMs = 0.0;

    /** Deficit-round-robin weight in the shared queue. */
    double weight = 1.0;

    /** Max requests this tenant may hold queued; arrivals beyond it
     *  are shed on the spot (0 = unlimited). */
    std::size_t admissionBudget = 0;

    /** Seed service-time estimate the fleet prices dispatches with
     *  until recalibration refines it. */
    ServiceModel service = ServiceModel::constant(1.0);

    /** Scripted truth of this tenant's actual service times over the
     *  virtual clock (stationary by default). */
    ServiceTimeline truth{ServiceModel::constant(1.0)};

    /** Per-tenant graceful-degradation thresholds: each tenant walks
     *  its own tier ladder against its own SLA, so one tenant's tail
     *  blow-up shrinks only that tenant's coalescing and execution
     *  scheme instead of degrading its neighbours. Disabled by
     *  default (every dispatch runs at tier 0, the pre-existing
     *  fleet behaviour). */
    DegradeConfig degrade;

    double
    effectiveSlaMs() const
    {
        return slaMs > 0.0 ? slaMs : model.slaMs();
    }

    /** @throws std::invalid_argument on an empty name, a non-positive
     *          weight, a negative/non-finite slaMs, or a seed model
     *          failing validate(). */
    void validate() const;
};

/** Per-tenant accounting of one fleet session. */
struct TenantStats
{
    ServeStats stats; //!< arrived/served/shed/failed/latency

    /** Arrivals shed because the tenant's queue budget was full
     *  (subset of stats.shed). */
    std::size_t budgetShed = 0;

    /** Arrivals shed because no projected completion could meet the
     *  deadline (subset of stats.shed). */
    std::size_t deadlineShed = 0;

    /** Served requests whose latency met the tenant's SLA. */
    std::size_t compliant = 0;

    /** Compliant fraction of served requests (1 when none served). */
    double
    complianceOfServed() const
    {
        return stats.served ? static_cast<double>(compliant) /
                                  static_cast<double>(stats.served)
                            : 1.0;
    }

    /** Compliant fraction of *arrived* requests — the goodput ratio
     *  the SLA-isolation guarantees are stated over (sheds count
     *  against it; 0 when nothing arrived). */
    double
    goodput() const
    {
        return stats.arrived ? static_cast<double>(compliant) /
                                   static_cast<double>(stats.arrived)
                             : 0.0;
    }

    /** arrived == served + shed + failed. */
    bool
    conserved() const
    {
        return stats.arrived ==
               stats.served + stats.shed + stats.failed;
    }
};

/**
 * Ordered collection of tenants; the index returned by add() is the
 * tenant id used in PendingRequest::tenant and every per-tenant stats
 * vector.
 */
class TenantRegistry
{
  public:
    /** Registers a tenant and returns its id (dense, starting at 0).
     *
     * @throws std::invalid_argument when cfg fails validate() or the
     *         name is already registered. */
    std::size_t add(TenantConfig cfg);

    std::size_t size() const { return _tenants.size(); }
    bool empty() const { return _tenants.empty(); }

    const TenantConfig& tenant(std::size_t id) const
    {
        return _tenants.at(id);
    }

    /** Id of the tenant named @p name.
     *  @throws std::out_of_range on an unknown name. */
    std::size_t idOf(const std::string& name) const;

    /** DRR weights in id order (WfqConfig::weights). */
    std::vector<double> weights() const;

  private:
    std::vector<TenantConfig> _tenants;
};

} // namespace dlrmopt::serve

#endif // DLRMOPT_SERVE_TENANT_HPP
