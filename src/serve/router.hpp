/**
 * @file
 * Health-aware, resilience-hardened front-end router over N serving
 * instances.
 *
 * The paper's at-scale configuration (Sec. 6.5) runs one independent
 * serving instance per physical core. This router is the tier in
 * front of them: it owns N Server instances — each a full-replica
 * DlrmModel view over one shared EmbeddingStore, each with a private
 * disjoint core group from Topology::partition() — and dispatches a
 * Poisson request stream across them.
 *
 * Routing policies:
 *  - round-robin: requests cycle through instances;
 *  - power-of-two-choices: two seed-derived candidate instances,
 *    the less-queued one (earliest projected start) wins;
 *  - health-aware: every instance is scored by its projected
 *    completion for *this* request — queue wait plus the batch-size-
 *    and straggler-aware ServiceModel estimate — plus penalties for
 *    its recent served-latency p95 (WindowedP95) and its accumulated
 *    failure/shed history (CoreHealth::failed and admission sheds);
 *    the lowest score wins.
 *
 * Fault handling composes with the per-instance machinery: a request
 * that exhausts its retry budget on one instance is re-dispatched
 * once (maxFailovers) to a different instance chosen by the same
 * policy; admission control sheds at the routed instance, and a shed
 * where *no* instance could have met the deadline is counted
 * separately as a cluster-level shed.
 *
 * On top of that sits the cluster-resilience layer:
 *
 *  - **instance lifecycle**: a FaultSchedule can script whole-instance
 *    crashes and recoveries; the router drives each Server through
 *    Up -> Draining -> Down -> WarmRestart, rebuilding the replica
 *    model view over the shared store in O(weights) and re-admitting
 *    after a probation window. Down instances leave every candidate
 *    set; their pinned retries are re-routed to survivors.
 *  - **circuit breakers** (RouterConfig::breaker): a per-instance
 *    rolling failure-rate window trips a sick instance out of
 *    rotation entirely; after a cooldown a single half-open probe
 *    decides re-admission.
 *  - **hedged failover** (RouterConfig::hedging): a request whose
 *    routed instance's projected completion would bust the deadline
 *    is redirected to the best available instance that still fits,
 *    instead of queueing behind a dying one.
 *  - **embedding integrity** (RouterConfig::integrity): before an
 *    attempt executes, every store block its lookups touch is
 *    verified against the build-time checksums; a corrupt block is
 *    either repaired in place (regenerated to the exact as-built
 *    bytes — the "verified replica block") or, with repair disabled,
 *    the request is degraded to a counted failure rather than served
 *    from corrupt rows. Either way corruption is a survivable,
 *    counted event, never a silent wrong answer.
 *
 * Like Server::serve, the router advances a deterministic virtual
 * clock while the kernels really execute, so a whole multi-instance
 * chaos session is bit-reproducible under fixed seeds.
 */

#ifndef DLRMOPT_SERVE_ROUTER_HPP
#define DLRMOPT_SERVE_ROUTER_HPP

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/dlrm.hpp"
#include "core/embedding_store.hpp"
#include "sched/topology.hpp"
#include "serve/breaker.hpp"
#include "serve/fault_schedule.hpp"
#include "serve/scrub.hpp"
#include "serve/server.hpp"

namespace dlrmopt::serve
{

/** How the router picks an instance for a fresh request. */
enum class RoutePolicy
{
    RoundRobin,
    PowerOfTwo,
    HealthAware,
};

/** CLI/report name of a policy ("rr", "po2", "health"). */
const char *routePolicyName(RoutePolicy p);

/** Parses a policy name; throws std::invalid_argument on others. */
RoutePolicy parseRoutePolicy(const std::string& name);

/** Embedding-integrity knobs for the serving path. */
struct IntegrityConfig
{
    /** Verify the checksums of every store block an attempt's lookups
     *  touch before executing it. */
    bool enabled = false;

    /** Repair a corrupt block in place (regenerate the as-built
     *  bytes) and serve; false degrades the request instead. Repair
     *  requires the router to hold a mutable store handle. */
    bool repair = true;
};

/** Cluster-level serving parameters. */
struct RouterConfig
{
    ServerConfig server;  //!< per-instance parameters (SLA, retries..)

    std::size_t instances = 2;
    RoutePolicy policy = RoutePolicy::PowerOfTwo;

    std::uint64_t seed = 1; //!< power-of-two candidate sampling

    /** Cross-instance re-dispatches after a request exhausts its
     *  retry budget on one instance (0 disables failover). */
    std::size_t maxFailovers = 1;

    /** Sliding-window size for the per-instance served-latency p95
     *  used by the health-aware policy. */
    std::size_t healthWindow = 64;

    /** Health-score penalty (virtual ms) per failed task and per
     *  admission shed recorded against an instance. */
    double failurePenaltyMs = 1.0;

    /** Per-instance circuit breakers (disabled by default). */
    BreakerConfig breaker;

    /** Health-score penalty (virtual ms) while an instance's breaker
     *  sits half-open: a probation instance should win routing only
     *  when the healthy ones are meaningfully worse, not split
     *  traffic evenly the moment its cooldown expires. Applied only
     *  when breakers are enabled. */
    double halfOpenPenaltyMs = 5.0;

    /** Peak health-score penalty (virtual ms) right after a breaker
     *  trip, decaying linearly to zero over tripRecencyWindowMs — a
     *  just-reclosed breaker says the instance was proven sick
     *  moments ago, and the score should remember that even though
     *  admits() no longer objects. Applied only when breakers are
     *  enabled. */
    double tripRecencyPenaltyMs = 10.0;

    /** Decay horizon (virtual ms) of the trip-recency penalty. */
    double tripRecencyWindowMs = 50.0;

    /** Partial drain: a crashed (Draining) instance keeps this many
     *  cores serving its *pinned retries* until the drain completes,
     *  instead of re-routing every in-flight request the moment the
     *  crash is announced (0 = legacy all-or-nothing drain). Fresh
     *  requests still avoid a Draining instance. */
    std::size_t partialDrainCores = 0;

    /** Redirect a request to the next-best available instance when
     *  its routed instance's projected completion busts the SLA. */
    bool hedging = false;

    /** Virtual ms a warm-restarted instance waits in WarmRestart
     *  before re-admission. */
    double probationMs = 5.0;

    /** Embedding-integrity verification/quarantine. */
    IntegrityConfig integrity;

    /** Background checksum scrubbing over the shared store: a
     *  round-robin block sweep on a periodic virtual-clock tick,
     *  bounding the detection latency of silent bit flips by one
     *  sweep period instead of by request luck (serve/scrub.hpp). */
    ScrubConfig scrub;

    /** Record a per-request prediction fingerprint for every served
     *  request (RouterStats::predFingerprints), letting tests assert
     *  bitwise-correct answers against a fault-free baseline. */
    bool recordPredictions = false;
};

/** Outcome of one routed serving session. */
struct RouterStats
{
    ServeStats total; //!< cluster-wide aggregate

    std::vector<ServeStats> perInstance;

    std::size_t failovers = 0; //!< cross-instance re-dispatches

    /** Sheds where every instance's projected completion missed the
     *  SLA (subset of total.shed). */
    std::size_t clusterShed = 0;

    /** Served requests whose latency met the per-request SLA. */
    std::size_t compliant = 0;

    /** Virtual end time of the last completed attempt (for
     *  throughput comparisons over the same arrival stream). */
    double makespanMs = 0.0;

    /// @name Resilience counters
    /// @{

    std::size_t breakerTrips = 0; //!< breaker open transitions
    std::size_t hedges = 0;       //!< deadline-hedged redirects
    std::size_t crashes = 0;      //!< scripted instance crashes
    std::size_t restarts = 0;     //!< completed warm restarts

    /** Corrupt store blocks detected by pre-execution verification. */
    std::size_t corruptionsDetected = 0;

    /** Corrupt blocks repaired in place (regenerated). */
    std::size_t blocksRepaired = 0;

    /** Requests degraded (failed without serving) because their
     *  lookups touched a corrupt block and repair was off. */
    std::size_t integrityDegraded = 0;

    /** Blocks verified by the background scrubber. */
    std::uint64_t blocksScrubbed = 0;

    /** Corrupt blocks the scrubber found (before any request did). */
    std::uint64_t scrubCorruptions = 0;

    /** Corrupt blocks the scrubber repaired in place. */
    std::uint64_t scrubRepairs = 0;

    /** Full sweeps over every (table, block) pair the scrubber
     *  completed within the session. */
    std::uint64_t scrubSweeps = 0;

    /** Pinned retries served on a Draining instance's residual core
     *  group (partial drain) instead of being re-routed. */
    std::size_t partialDrainServed = 0;

    /** Fresh requests shed because no instance was available
     *  (subset of total.shed). */
    std::size_t lifecycleShed = 0;

    /** Per-instance fraction of the session spent lifecycle-Up. */
    std::vector<double> availability;

    /** Per-request prediction fingerprint (0 = not served); filled
     *  only when RouterConfig::recordPredictions. */
    std::vector<std::uint64_t> predFingerprints;

    /// @}

    /** One-line cluster summary (aggregate + router counters). */
    std::string summary() const;
};

/**
 * Front-end router owning N replica Server instances over one shared
 * EmbeddingStore.
 */
class Router
{
  public:
    /**
     * Builds cfg.instances Server instances. The topology is
     * partitioned into disjoint per-instance core groups; each
     * instance gets a full-replica DlrmModel view over @p store
     * (zero embedding bytes beyond the store's single copy).
     *
     * @param model_cfg Architecture served by every instance.
     * @param store Shared table storage (kept alive by the router).
     * @param topo Cores to split across instances.
     * @param cfg Cluster parameters.
     * @param faults Optional per-instance fault injectors, indexed by
     *        instance; a shorter vector or nullptr entries mean no
     *        faults for those instances. **Not owned**: every
     *        non-null injector must outlive the Router (and any
     *        serve() session), exactly like the Server's injector
     *        parameter.
     * @param model_seed Seed for the per-instance MLP weights.
     *
     * @throws std::invalid_argument when instances is zero or exceeds
     *         the physical core count, when @p faults has more
     *         entries than instances, when an injector's bitFlipRate
     *         is positive without a mutable store, or via
     *         Server/DlrmModel validation.
     */
    Router(const core::ModelConfig& model_cfg,
           std::shared_ptr<const core::EmbeddingStore> store,
           const sched::Topology& topo, const RouterConfig& cfg,
           std::vector<const FaultInjector *> faults = {},
           std::uint64_t model_seed = 42);

    /**
     * Same, but over a *mutable* store handle. Required for any
     * session that corrupts stored rows (FaultConfig::bitFlipRate or
     * scripted BitFlipEvents) or repairs them
     * (IntegrityConfig::repair).
     */
    Router(const core::ModelConfig& model_cfg,
           std::shared_ptr<core::EmbeddingStore> store,
           const sched::Topology& topo, const RouterConfig& cfg,
           std::vector<const FaultInjector *> faults = {},
           std::uint64_t model_seed = 42);

    std::size_t numInstances() const { return _servers.size(); }

    const Server& instance(std::size_t i) const { return *_servers[i]; }

    /** Instance @p i's replica model view (shares the store). */
    const core::DlrmModel& model(std::size_t i) const
    {
        return *_models[i];
    }

    /** The shared table storage every instance reads from. */
    const std::shared_ptr<const core::EmbeddingStore>& store() const
    {
        return _store;
    }

    /**
     * Serves one session: the same contract as Server::serve, but
     * requests are routed across instances by the configured policy.
     * An optional FaultSchedule scripts time-varying fault phases,
     * instance crash/recover events, and stored-row bit flips over
     * the session's virtual clock (not owned; must outlive the call).
     *
     * @throws std::invalid_argument on an empty batch list, a
     *         schedule that fails validate(numInstances()), or a
     *         schedule that corrupts stored rows when the router
     *         holds no mutable store handle.
     */
    RouterStats serve(const core::Tensor& dense,
                      const std::vector<core::SparseBatch>& batches,
                      const std::vector<double>& arrivals_ms,
                      const core::PrefetchSpec& pf =
                          core::PrefetchSpec::paperDefault(),
                      const FaultSchedule *schedule = nullptr);

  private:
    void build(const core::ModelConfig& model_cfg,
               const sched::Topology& topo,
               std::uint64_t model_seed);

    RouterConfig _cfg;
    std::vector<const FaultInjector *> _faults;
    std::shared_ptr<const core::EmbeddingStore> _store;
    /** Non-null only for the mutable-store constructor; aliases
     *  _store. */
    std::shared_ptr<core::EmbeddingStore> _mutableStore;
    core::ModelConfig _modelCfg;   //!< kept for warm-restart rebuilds
    std::uint64_t _modelSeed = 42; //!< ditto
    std::vector<std::unique_ptr<core::DlrmModel>> _models;
    std::vector<std::unique_ptr<Server>> _servers;
};

} // namespace dlrmopt::serve

#endif // DLRMOPT_SERVE_ROUTER_HPP
