/**
 * @file
 * Health-aware front-end router over N serving instances.
 *
 * The paper's at-scale configuration (Sec. 6.5) runs one independent
 * serving instance per physical core. This router is the tier in
 * front of them: it owns N Server instances — each a full-replica
 * DlrmModel view over one shared EmbeddingStore, each with a private
 * disjoint core group from Topology::partition() — and dispatches a
 * Poisson request stream across them.
 *
 * Routing policies:
 *  - round-robin: requests cycle through instances;
 *  - power-of-two-choices: two seed-derived candidate instances,
 *    the less-queued one (earliest projected start) wins;
 *  - health-aware: every instance is scored by its projected
 *    completion for *this* request — queue wait plus the batch-size-
 *    and straggler-aware ServiceModel estimate — plus penalties for
 *    its recent served-latency p95 (WindowedP95) and its accumulated
 *    failure/shed history (CoreHealth::failed and admission sheds);
 *    the lowest score wins.
 *
 * Fault handling composes with the per-instance machinery: a request
 * that exhausts its retry budget on one instance is re-dispatched
 * once (maxFailovers) to a different instance chosen by the same
 * policy; admission control sheds at the routed instance, and a shed
 * where *no* instance could have met the deadline is counted
 * separately as a cluster-level shed.
 *
 * Like Server::serve, the router advances a deterministic virtual
 * clock while the kernels really execute, so a whole multi-instance
 * session is bit-reproducible under fixed seeds.
 */

#ifndef DLRMOPT_SERVE_ROUTER_HPP
#define DLRMOPT_SERVE_ROUTER_HPP

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/dlrm.hpp"
#include "core/embedding_store.hpp"
#include "sched/topology.hpp"
#include "serve/server.hpp"

namespace dlrmopt::serve
{

/** How the router picks an instance for a fresh request. */
enum class RoutePolicy
{
    RoundRobin,
    PowerOfTwo,
    HealthAware,
};

/** CLI/report name of a policy ("rr", "po2", "health"). */
const char *routePolicyName(RoutePolicy p);

/** Parses a policy name; throws std::invalid_argument on others. */
RoutePolicy parseRoutePolicy(const std::string& name);

/** Cluster-level serving parameters. */
struct RouterConfig
{
    ServerConfig server;  //!< per-instance parameters (SLA, retries..)

    std::size_t instances = 2;
    RoutePolicy policy = RoutePolicy::PowerOfTwo;

    std::uint64_t seed = 1; //!< power-of-two candidate sampling

    /** Cross-instance re-dispatches after a request exhausts its
     *  retry budget on one instance (0 disables failover). */
    std::size_t maxFailovers = 1;

    /** Sliding-window size for the per-instance served-latency p95
     *  used by the health-aware policy. */
    std::size_t healthWindow = 64;

    /** Health-score penalty (virtual ms) per failed task and per
     *  admission shed recorded against an instance. */
    double failurePenaltyMs = 1.0;
};

/** Outcome of one routed serving session. */
struct RouterStats
{
    ServeStats total; //!< cluster-wide aggregate

    std::vector<ServeStats> perInstance;

    std::size_t failovers = 0; //!< cross-instance re-dispatches

    /** Sheds where every instance's projected completion missed the
     *  SLA (subset of total.shed). */
    std::size_t clusterShed = 0;

    /** Served requests whose latency met the per-request SLA. */
    std::size_t compliant = 0;

    /** Virtual end time of the last completed attempt (for
     *  throughput comparisons over the same arrival stream). */
    double makespanMs = 0.0;

    /** One-line cluster summary (aggregate + router counters). */
    std::string summary() const;
};

/**
 * Front-end router owning N replica Server instances over one shared
 * EmbeddingStore.
 */
class Router
{
  public:
    /**
     * Builds cfg.instances Server instances. The topology is
     * partitioned into disjoint per-instance core groups; each
     * instance gets a full-replica DlrmModel view over @p store
     * (zero embedding bytes beyond the store's single copy).
     *
     * @param model_cfg Architecture served by every instance.
     * @param store Shared table storage (kept alive by the router).
     * @param topo Cores to split across instances.
     * @param cfg Cluster parameters.
     * @param faults Optional per-instance fault injectors (indexed by
     *        instance; shorter vectors / nullptr entries mean no
     *        faults for that instance; not owned).
     * @param model_seed Seed for the per-instance MLP weights.
     *
     * @throws std::invalid_argument when instances is zero or exceeds
     *         the physical core count, or via Server/DlrmModel
     *         validation.
     */
    Router(const core::ModelConfig& model_cfg,
           std::shared_ptr<const core::EmbeddingStore> store,
           const sched::Topology& topo, const RouterConfig& cfg,
           std::vector<const FaultInjector *> faults = {},
           std::uint64_t model_seed = 42);

    std::size_t numInstances() const { return _servers.size(); }

    const Server& instance(std::size_t i) const { return *_servers[i]; }

    /** Instance @p i's replica model view (shares the store). */
    const core::DlrmModel& model(std::size_t i) const
    {
        return *_models[i];
    }

    /** The shared table storage every instance reads from. */
    const std::shared_ptr<const core::EmbeddingStore>& store() const
    {
        return _store;
    }

    /**
     * Serves one session: the same contract as Server::serve, but
     * requests are routed across instances by the configured policy.
     *
     * @throws std::invalid_argument on an empty batch list.
     */
    RouterStats serve(const core::Tensor& dense,
                      const std::vector<core::SparseBatch>& batches,
                      const std::vector<double>& arrivals_ms,
                      const core::PrefetchSpec& pf =
                          core::PrefetchSpec::paperDefault());

  private:
    RouterConfig _cfg;
    std::vector<const FaultInjector *> _faults;
    std::shared_ptr<const core::EmbeddingStore> _store;
    std::vector<std::unique_ptr<core::DlrmModel>> _models;
    std::vector<std::unique_ptr<Server>> _servers;
};

} // namespace dlrmopt::serve

#endif // DLRMOPT_SERVE_ROUTER_HPP
