#include "serve/latency_stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace dlrmopt::serve
{

double
LatencyStats::percentile(double p) const
{
    if (_samples.empty())
        return 0.0;
    std::vector<double> sorted = _samples;
    std::sort(sorted.begin(), sorted.end());
    const double clamped = std::clamp(p, 0.0, 100.0);
    // Nearest-rank: ceil(p/100 * N), 1-based.
    const std::size_t rank = static_cast<std::size_t>(
        std::ceil(clamped / 100.0 * static_cast<double>(sorted.size())));
    const std::size_t idx = rank == 0 ? 0 : rank - 1;
    return sorted[std::min(idx, sorted.size() - 1)];
}

double
LatencyStats::mean() const
{
    if (_samples.empty())
        return 0.0;
    return std::accumulate(_samples.begin(), _samples.end(), 0.0) /
           static_cast<double>(_samples.size());
}

double
LatencyStats::max() const
{
    if (_samples.empty())
        return 0.0;
    return *std::max_element(_samples.begin(), _samples.end());
}

double
LatencyStats::slaCompliance(double sla_ms) const
{
    if (_samples.empty())
        return 0.0;
    std::size_t ok = 0;
    for (double s : _samples) {
        if (s <= sla_ms)
            ++ok;
    }
    return static_cast<double>(ok) / static_cast<double>(_samples.size());
}

} // namespace dlrmopt::serve
