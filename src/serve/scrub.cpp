#include "serve/scrub.hpp"

#include <cmath>
#include <stdexcept>

namespace dlrmopt::serve
{

void
ScrubConfig::validate() const
{
    if (!(intervalMs > 0.0) || !std::isfinite(intervalMs)) {
        throw std::invalid_argument(
            "ScrubConfig: intervalMs must be positive and finite");
    }
    if (blocksPerTick == 0) {
        throw std::invalid_argument(
            "ScrubConfig: blocksPerTick must be >= 1");
    }
}

EmbeddingScrubber::EmbeddingScrubber(
    std::shared_ptr<const core::EmbeddingStore> store,
    const ScrubConfig& cfg)
    : _cfg(cfg), _store(std::move(store)),
      _nextTickMs(cfg.intervalMs)
{
    _cfg.validate();
    if (!_store) {
        throw std::invalid_argument(
            "EmbeddingScrubber: store must not be null");
    }
    if (_cfg.repair) {
        throw std::invalid_argument(
            "EmbeddingScrubber: repair requires a mutable store "
            "handle");
    }
    _totalBlocks = _store->numTables() * _store->numBlocks();
}

EmbeddingScrubber::EmbeddingScrubber(
    std::shared_ptr<core::EmbeddingStore> store,
    const ScrubConfig& cfg)
    : _cfg(cfg), _store(store), _mutableStore(std::move(store)),
      _nextTickMs(cfg.intervalMs)
{
    _cfg.validate();
    if (!_store) {
        throw std::invalid_argument(
            "EmbeddingScrubber: store must not be null");
    }
    _totalBlocks = _store->numTables() * _store->numBlocks();
}

std::size_t
EmbeddingScrubber::advanceTo(double now_ms)
{
    std::lock_guard<std::mutex> lk(_mu);
    if (!_cfg.enabled || _totalBlocks == 0)
        return 0;
    std::size_t scrubbed = 0;
    while (now_ms >= _nextTickMs) {
        for (std::size_t i = 0; i < _cfg.blocksPerTick; ++i)
            scrubOne();
        scrubbed += _cfg.blocksPerTick;
        // Tier blocks ride the same tick, after the store's, so a
        // flip that landed in both copies is repaired cold-first and
        // the tier re-copy picks up clean bytes.
        for (core::HotTierCache *t : _tiers)
            scrubbed += t->scrubTick(_cfg.blocksPerTick);
        _nextTickMs += _cfg.intervalMs;
    }
    return scrubbed;
}

void
EmbeddingScrubber::attachHotTier(core::HotTierCache *tier)
{
    std::lock_guard<std::mutex> lk(_mu);
    if (tier != nullptr)
        _tiers.push_back(tier);
}

void
EmbeddingScrubber::retarget(
    std::shared_ptr<core::EmbeddingStore> store)
{
    if (!store) {
        throw std::invalid_argument(
            "EmbeddingScrubber::retarget: store must not be null");
    }
    std::lock_guard<std::mutex> lk(_mu);
    _totalBlocks = store->numTables() * store->numBlocks();
    _store = store;
    _mutableStore = std::move(store);
    _cursor = 0;
}

void
EmbeddingScrubber::scrubOne()
{
    const std::size_t per_table = _store->numBlocks();
    const std::size_t t = _cursor / per_table;
    const std::size_t b = _cursor % per_table;
    ++_blocksScrubbed;
    if (!_store->verifyBlock(t, b)) {
        ++_corruptions;
        if (_cfg.repair && _mutableStore) {
            _mutableStore->repairBlock(t, b);
            ++_repaired;
        }
    }
    if (++_cursor == _totalBlocks) {
        _cursor = 0;
        ++_sweeps;
    }
}

std::uint64_t
EmbeddingScrubber::blocksScrubbed() const
{
    std::lock_guard<std::mutex> lk(_mu);
    return _blocksScrubbed;
}

std::uint64_t
EmbeddingScrubber::corruptionsFound() const
{
    std::lock_guard<std::mutex> lk(_mu);
    return _corruptions;
}

std::uint64_t
EmbeddingScrubber::blocksRepaired() const
{
    std::lock_guard<std::mutex> lk(_mu);
    return _repaired;
}

std::uint64_t
EmbeddingScrubber::sweepsCompleted() const
{
    std::lock_guard<std::mutex> lk(_mu);
    return _sweeps;
}

std::size_t
EmbeddingScrubber::blocksPerSweep() const
{
    std::lock_guard<std::mutex> lk(_mu);
    return _totalBlocks;
}

double
EmbeddingScrubber::sweepProgress() const
{
    std::lock_guard<std::mutex> lk(_mu);
    return _totalBlocks == 0
               ? 0.0
               : static_cast<double>(_cursor) /
                     static_cast<double>(_totalBlocks);
}

} // namespace dlrmopt::serve
