/**
 * @file
 * Per-instance circuit breaker for the multi-instance Router.
 *
 * The Router's health score *biases* traffic away from a sick
 * instance; a breaker *removes* it. When the rolling failure rate of
 * an instance's recent attempts crosses a threshold, the breaker
 * opens and the instance leaves every candidate set — no more
 * requests burn their retry budgets discovering what the last N
 * already proved. After a cooldown the breaker goes half-open and
 * admits exactly one probe attempt; a successful probe closes the
 * breaker (full re-admission), a failed one re-opens it for another
 * cooldown.
 *
 * All state advances on the Router's virtual clock, so breaker
 * behaviour is as bit-reproducible as the rest of the session.
 */

#ifndef DLRMOPT_SERVE_BREAKER_HPP
#define DLRMOPT_SERVE_BREAKER_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dlrmopt::serve
{

/** Circuit-breaker thresholds. */
struct BreakerConfig
{
    bool enabled = false;  //!< off by default: PR 2/3 behaviour

    std::size_t window = 16;     //!< rolling attempt-outcome window
    std::size_t minSamples = 8;  //!< outcomes needed before tripping
    double failureThreshold = 0.5; //!< trip when failure rate >= this
    double cooldownMs = 20.0;    //!< open -> half-open delay

    /**
     * @throws std::invalid_argument when window or minSamples is 0,
     *         minSamples exceeds window, failureThreshold is outside
     *         (0, 1], or cooldownMs is negative/non-finite.
     */
    void validate() const;
};

/**
 * One instance's breaker. Closed admits everything; Open admits
 * nothing until cooldown expires; HalfOpen admits a single probe.
 */
class CircuitBreaker
{
  public:
    enum class State
    {
        Closed,
        Open,
        HalfOpen
    };

    explicit CircuitBreaker(const BreakerConfig& cfg);

    State state(double now_ms) const;

    /** True when an attempt may be routed here at @p now_ms. A
     *  half-open breaker admits only until its probe is taken. */
    bool admits(double now_ms) const;

    /** Claims the half-open probe slot (call when routing an attempt
     *  to a half-open instance, so only one probe flies). */
    void beginProbe(double now_ms);

    /**
     * Records one attempt outcome ending at @p end_ms. Returns true
     * when this outcome trips the breaker open (for trip counting).
     * A successful half-open probe closes the breaker and clears the
     * window; a failed probe re-opens it for another cooldown.
     */
    bool record(bool ok, double end_ms);

    /** Forgets all rolled outcomes and closes the breaker (used on
     *  warm restart: the rebuilt instance starts with a clean bill). */
    void reset();

    std::uint64_t trips() const { return _trips; }

    /** Virtual time of the most recent trip, or a negative value when
     *  the breaker has never tripped (or was reset since). Lets the
     *  Router's health score hold a recently-tripped instance at
     *  arm's length even after its probe succeeded. */
    double lastTripMs() const { return _lastTripMs; }

  private:
    double failureRate() const;

    BreakerConfig _cfg;
    std::vector<char> _outcomes; //!< ring: 1 = failure, 0 = success
    std::size_t _head = 0;
    std::size_t _count = 0;
    State _state = State::Closed;
    double _openedAtMs = 0.0;
    double _lastTripMs = -1.0;
    bool _probeInFlight = false;
    std::uint64_t _trips = 0;
};

} // namespace dlrmopt::serve

#endif // DLRMOPT_SERVE_BREAKER_HPP
