#include "serve/router.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <map>
#include <queue>
#include <stdexcept>
#include <utility>

#include "serve/degrade.hpp"

namespace dlrmopt::serve
{

namespace
{

/** One scheduled attempt in the cluster-level virtual-time loop. */
struct RAttempt
{
    double readyMs;          //!< earliest virtual start
    std::uint64_t seq;       //!< deterministic tie-break
    std::uint64_t req;       //!< request id
    std::uint64_t tries;     //!< attempts burned on current instance
    std::uint64_t failovers; //!< instances already given up on
    int instance;            //!< pinned instance (retries), -1 = route
    int exclude;             //!< instance to avoid when routing, -1 = none
    double arrivalMs;        //!< original arrival (latency baseline)
};

struct RAttemptLater
{
    bool
    operator()(const RAttempt& a, const RAttempt& b) const
    {
        if (a.readyMs != b.readyMs)
            return a.readyMs > b.readyMs;
        return a.seq > b.seq;
    }
};

/** Counter-based uniform [0,1) draw for power-of-two sampling. */
double
drawUnit(std::uint64_t seed, std::uint64_t kind, std::uint64_t req,
         std::uint64_t failovers)
{
    using dlrmopt::mix64;
    return dlrmopt::toUnitInterval(
        mix64(seed ^ mix64(kind + mix64(req + mix64(failovers)))));
}

} // namespace

const char *
routePolicyName(RoutePolicy p)
{
    switch (p) {
      case RoutePolicy::RoundRobin:
        return "rr";
      case RoutePolicy::PowerOfTwo:
        return "po2";
      case RoutePolicy::HealthAware:
        return "health";
    }
    return "?";
}

RoutePolicy
parseRoutePolicy(const std::string& name)
{
    if (name == "rr" || name == "round-robin")
        return RoutePolicy::RoundRobin;
    if (name == "po2" || name == "power-of-two")
        return RoutePolicy::PowerOfTwo;
    if (name == "health" || name == "health-aware")
        return RoutePolicy::HealthAware;
    throw std::invalid_argument("unknown routing policy '" + name +
                                "' (rr|po2|health)");
}

std::string
RouterStats::summary() const
{
    char buf[320];
    const double pct = total.served
        ? 100.0 * static_cast<double>(compliant) /
            static_cast<double>(total.served)
        : 0.0;
    std::snprintf(
        buf, sizeof(buf),
        "arrived %zu served %zu shed %zu (cluster %zu) failed %zu "
        "retried %zu failovers %zu (shed %.1f%%) | p50 %.3f p95 %.3f "
        "p99 %.3f ms | compliant %zu (%.1f%% of served)",
        total.arrived, total.served, total.shed, clusterShed,
        total.failed, total.retried, failovers,
        100.0 * total.shedRate(), total.latency.percentile(50.0),
        total.latency.p95(), total.latency.p99(), compliant, pct);
    return buf;
}

Router::Router(const core::ModelConfig& model_cfg,
               std::shared_ptr<const core::EmbeddingStore> store,
               const sched::Topology& topo, const RouterConfig& cfg,
               std::vector<const FaultInjector *> faults,
               std::uint64_t model_seed)
    : _cfg(cfg), _faults(std::move(faults)), _store(std::move(store))
{
    if (cfg.instances == 0) {
        throw std::invalid_argument(
            "Router: need at least one instance");
    }
    const auto groups = topo.partition(cfg.instances);
    _faults.resize(cfg.instances, nullptr);
    _models.reserve(cfg.instances);
    _servers.reserve(cfg.instances);
    for (std::size_t i = 0; i < cfg.instances; ++i) {
        // Full-replica view: private MLP weights, shared tables.
        _models.push_back(std::make_unique<core::DlrmModel>(
            model_cfg, _store, model_seed));
        _servers.push_back(std::make_unique<Server>(
            *_models.back(), groups[i], cfg.server, _faults[i]));
    }
}

RouterStats
Router::serve(const core::Tensor& dense,
              const std::vector<core::SparseBatch>& batches,
              const std::vector<double>& arrivals_ms,
              const core::PrefetchSpec& pf)
{
    if (batches.empty())
        throw std::invalid_argument("Router: need at least one batch");

    const std::size_t n = _servers.size();
    const std::size_t rows = _models.front()->config().rows;
    const double sla = _cfg.server.slaMs;
    // Instances run at full capability; graceful degradation remains
    // an instance-local feature of Server::serve sessions.
    const DegradeState tier = DegradationPolicy::stateForTier(0);

    RouterStats rs;
    rs.total.arrived = arrivals_ms.size();
    rs.perInstance.resize(n);

    // Per-instance routing state, all advanced on the virtual clock.
    std::vector<std::vector<double>> free_at(n);
    std::vector<WindowedP95> wins;
    std::vector<std::uint64_t> sheds(n, 0);
    std::vector<double> busy(n, 0.0);
    std::size_t total_cores = 0;
    for (std::size_t i = 0; i < n; ++i) {
        free_at[i].assign(_servers[i]->numCores(), 0.0);
        wins.emplace_back(_cfg.healthWindow);
        total_cores += _servers[i]->numCores();
    }

    // Earliest-free core of an instance (lowest index on ties).
    const auto earliestCore = [&](std::size_t i) -> std::size_t {
        std::size_t core = 0;
        for (std::size_t c = 1; c < free_at[i].size(); ++c) {
            if (free_at[i][c] < free_at[i][core])
                core = c;
        }
        return core;
    };
    const auto projectedWait = [&](std::size_t i,
                                   double ready) -> double {
        return std::max(0.0, free_at[i][earliestCore(i)] - ready);
    };
    const auto samplesOf = [&](std::uint64_t req) -> std::size_t {
        return batches[req % batches.size()].batchSize;
    };
    const auto serviceOn = [&](std::size_t i, std::size_t core,
                               std::size_t samples) -> double {
        const double straggle =
            _faults[i] ? _faults[i]->serviceFactor(core) : 1.0;
        return _cfg.server.service.serviceMs(samples) *
               tier.serviceFactor * straggle;
    };
    // Health score = projected *completion* on this instance: queue
    // wait plus the batch-size-aware (and straggler-aware) service
    // estimate for this request, plus tail-latency and failure/shed
    // penalties. Using the per-request estimate instead of a constant
    // lets the score separate instances whose queues look equal but
    // whose effective service rates differ.
    const auto healthScore = [&](std::size_t i, double ready,
                                 std::size_t samples) {
        const double penalty =
            _cfg.failurePenaltyMs *
            static_cast<double>(_servers[i]->totalFailed() + sheds[i]);
        return projectedWait(i, ready) +
               serviceOn(i, earliestCore(i), samples) + wins[i].p95() +
               penalty;
    };

    std::uint64_t rr = 0;
    const auto route = [&](const RAttempt& a) -> std::size_t {
        if (n == 1)
            return 0;
        switch (_cfg.policy) {
          case RoutePolicy::RoundRobin: {
            std::size_t i = rr++ % n;
            if (static_cast<int>(i) == a.exclude)
                i = rr++ % n;
            return i;
          }
          case RoutePolicy::PowerOfTwo: {
            // Two seed-derived candidates (skipping any excluded
            // instance), least-queued wins, lower index on ties.
            const auto pick = [&](std::uint64_t kind) -> std::size_t {
                const std::size_t span =
                    a.exclude >= 0 ? n - 1 : n;
                std::size_t i = static_cast<std::size_t>(
                    drawUnit(_cfg.seed, kind, a.req, a.failovers) *
                    static_cast<double>(span));
                i = std::min(i, span - 1);
                if (a.exclude >= 0 &&
                    i >= static_cast<std::size_t>(a.exclude))
                    ++i;
                return i;
            };
            const std::size_t c1 = pick(1);
            const std::size_t c2 = pick(2);
            const double w1 = projectedWait(c1, a.readyMs);
            const double w2 = projectedWait(c2, a.readyMs);
            if (w1 != w2)
                return w1 < w2 ? c1 : c2;
            return std::min(c1, c2);
          }
          case RoutePolicy::HealthAware: {
            std::size_t best = n; // sentinel
            double best_score = std::numeric_limits<double>::max();
            for (std::size_t i = 0; i < n; ++i) {
                if (static_cast<int>(i) == a.exclude)
                    continue;
                const double s =
                    healthScore(i, a.readyMs, samplesOf(a.req));
                if (s < best_score) {
                    best_score = s;
                    best = i;
                }
            }
            return best;
          }
        }
        return 0;
    };

    // Dense inputs per batch size, reference-stable while tasks run.
    std::map<std::size_t, core::Tensor> dense_by_rows;
    const auto denseFor =
        [&](std::size_t nrows) -> const core::Tensor& {
        auto it = dense_by_rows.find(nrows);
        if (it == dense_by_rows.end()) {
            core::Tensor t(nrows, dense.cols());
            std::memcpy(t.data(), dense.data(),
                        nrows * dense.cols() * sizeof(float));
            it = dense_by_rows.emplace(nrows, std::move(t)).first;
        }
        return it->second;
    };

    std::priority_queue<RAttempt, std::vector<RAttempt>, RAttemptLater>
        events;
    std::uint64_t seq = 0;
    for (std::size_t r = 0; r < arrivals_ms.size(); ++r) {
        events.push(RAttempt{arrivals_ms[r], seq++, r, 0, 0, -1, -1,
                             arrivals_ms[r]});
    }

    double makespan = 0.0;

    while (!events.empty()) {
        const RAttempt a = events.top();
        events.pop();

        const std::size_t inst =
            a.instance >= 0 ? static_cast<std::size_t>(a.instance)
                            : route(a);
        ServeStats& pis = rs.perInstance[inst];
        if (a.tries == 0)
            ++pis.arrived;

        const std::size_t core = earliestCore(inst);
        const double start = std::max(free_at[inst][core], a.readyMs);
        const double wait = start - a.readyMs;
        const double service = serviceOn(inst, core, samplesOf(a.req));

        // Admission control at the routed instance. Retries and
        // failovers are always admitted — their work is already paid
        // for. A shed where no instance could have met the deadline
        // is additionally a cluster-level shed.
        if (_cfg.server.admission && a.tries == 0 &&
            a.failovers == 0 && wait + service > sla) {
            ++rs.total.shed;
            ++pis.shed;
            ++sheds[inst];
            bool any_fits = false;
            for (std::size_t j = 0; j < n && !any_fits; ++j) {
                any_fits = projectedWait(j, a.readyMs) +
                               serviceOn(j, earliestCore(j),
                                         samplesOf(a.req)) <=
                           sla;
            }
            if (!any_fits)
                ++rs.clusterShed;
            continue;
        }

        // Real execution on the instance's private pool.
        const core::SparseBatch& base =
            batches[a.req % batches.size()];
        core::SparseBatch sparse = _faults[inst]
            ? _faults[inst]->maybeCorrupt(base, rows, a.req, a.tries)
            : base;

        bool ok = true;
        try {
            rs.total.execTotalMs += _servers[inst]->executeAttempt(
                core, denseFor(sparse.batchSize), sparse, tier, pf,
                a.req, a.tries);
        } catch (...) {
            ok = false;
        }

        const double end = start + service;
        free_at[inst][core] = end;
        busy[inst] += service;
        makespan = std::max(makespan, end);

        if (ok) {
            ++rs.total.served;
            ++pis.served;
            const double latency = end - a.arrivalMs;
            rs.total.latency.add(latency);
            pis.latency.add(latency);
            wins[inst].add(latency);
            if (latency <= sla)
                ++rs.compliant;
        } else if (a.tries < _cfg.server.maxRetries) {
            ++rs.total.retried;
            ++pis.retried;
            const double backoff = std::min(
                _cfg.server.backoffBaseMs *
                    static_cast<double>(1ull << a.tries),
                _cfg.server.backoffCapMs);
            events.push(RAttempt{end + backoff, seq++, a.req,
                                 a.tries + 1, a.failovers,
                                 static_cast<int>(inst), a.exclude,
                                 a.arrivalMs});
        } else if (a.failovers < _cfg.maxFailovers && n > 1) {
            // Retry budget exhausted here: hand the request to a
            // different replica with a fresh budget, once.
            ++rs.failovers;
            events.push(RAttempt{end + _cfg.server.backoffBaseMs,
                                 seq++, a.req, 0, a.failovers + 1, -1,
                                 static_cast<int>(inst), a.arrivalMs});
        } else {
            ++rs.total.failed;
            ++pis.failed;
        }
    }

    rs.makespanMs = makespan;
    if (makespan > 0.0) {
        double busy_total = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            busy_total += busy[i];
            rs.perInstance[i].serverUtilization =
                busy[i] /
                (makespan *
                 static_cast<double>(free_at[i].size()));
        }
        rs.total.serverUtilization =
            busy_total /
            (makespan * static_cast<double>(total_cores));
    }
    return rs;
}

} // namespace dlrmopt::serve
