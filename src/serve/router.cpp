#include "serve/router.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <map>
#include <queue>
#include <stdexcept>
#include <utility>

#include "serve/degrade.hpp"

namespace dlrmopt::serve
{

namespace
{

/** One scheduled attempt in the cluster-level virtual-time loop. */
struct RAttempt
{
    double readyMs;          //!< earliest virtual start
    std::uint64_t seq;       //!< deterministic tie-break
    std::uint64_t req;       //!< request id
    std::uint64_t tries;     //!< attempts burned on current instance
    std::uint64_t failovers; //!< instances already given up on
    int instance;            //!< pinned instance (retries), -1 = route
    int exclude;             //!< instance to avoid when routing, -1 = none
    double arrivalMs;        //!< original arrival (latency baseline)
};

struct RAttemptLater
{
    bool
    operator()(const RAttempt& a, const RAttempt& b) const
    {
        if (a.readyMs != b.readyMs)
            return a.readyMs > b.readyMs;
        return a.seq > b.seq;
    }
};

/** Counter-based uniform [0,1) draw for power-of-two sampling. */
double
drawUnit(std::uint64_t seed, std::uint64_t kind, std::uint64_t req,
         std::uint64_t failovers)
{
    using dlrmopt::mix64;
    return dlrmopt::toUnitInterval(
        mix64(seed ^ mix64(kind + mix64(req + mix64(failovers)))));
}

} // namespace

const char *
routePolicyName(RoutePolicy p)
{
    switch (p) {
      case RoutePolicy::RoundRobin:
        return "rr";
      case RoutePolicy::PowerOfTwo:
        return "po2";
      case RoutePolicy::HealthAware:
        return "health";
    }
    return "?";
}

RoutePolicy
parseRoutePolicy(const std::string& name)
{
    if (name == "rr" || name == "round-robin")
        return RoutePolicy::RoundRobin;
    if (name == "po2" || name == "power-of-two")
        return RoutePolicy::PowerOfTwo;
    if (name == "health" || name == "health-aware")
        return RoutePolicy::HealthAware;
    throw std::invalid_argument("unknown routing policy '" + name +
                                "' (rr|po2|health)");
}

std::string
RouterStats::summary() const
{
    char buf[560];
    const double pct = total.served
        ? 100.0 * static_cast<double>(compliant) /
            static_cast<double>(total.served)
        : 0.0;
    int len = std::snprintf(
        buf, sizeof(buf),
        "arrived %zu served %zu shed %zu (cluster %zu) failed %zu "
        "retried %zu failovers %zu (shed %.1f%%) | p50 %.3f p95 %.3f "
        "p99 %.3f ms | compliant %zu (%.1f%% of served)",
        total.arrived, total.served, total.shed, clusterShed,
        total.failed, total.retried, failovers,
        100.0 * total.shedRate(), total.latency.percentile(50.0),
        total.latency.p95(), total.latency.p99(), compliant, pct);
    if (len > 0 && static_cast<std::size_t>(len) < sizeof(buf) &&
        (breakerTrips || hedges || crashes || restarts ||
         corruptionsDetected || integrityDegraded)) {
        const int more = std::snprintf(
            buf + len, sizeof(buf) - static_cast<std::size_t>(len),
            " | trips %zu hedges %zu crashes %zu restarts %zu "
            "corrupt %zu repaired %zu degraded %zu",
            breakerTrips, hedges, crashes, restarts,
            corruptionsDetected, blocksRepaired, integrityDegraded);
        if (more > 0)
            len += more;
    }
    if (len > 0 && static_cast<std::size_t>(len) < sizeof(buf) &&
        blocksScrubbed) {
        std::snprintf(
            buf + len, sizeof(buf) - static_cast<std::size_t>(len),
            " | scrubbed %llu found %llu repaired %llu sweeps %llu",
            static_cast<unsigned long long>(blocksScrubbed),
            static_cast<unsigned long long>(scrubCorruptions),
            static_cast<unsigned long long>(scrubRepairs),
            static_cast<unsigned long long>(scrubSweeps));
    }
    return buf;
}

Router::Router(const core::ModelConfig& model_cfg,
               std::shared_ptr<const core::EmbeddingStore> store,
               const sched::Topology& topo, const RouterConfig& cfg,
               std::vector<const FaultInjector *> faults,
               std::uint64_t model_seed)
    : _cfg(cfg), _faults(std::move(faults)), _store(std::move(store))
{
    build(model_cfg, topo, model_seed);
}

Router::Router(const core::ModelConfig& model_cfg,
               std::shared_ptr<core::EmbeddingStore> store,
               const sched::Topology& topo, const RouterConfig& cfg,
               std::vector<const FaultInjector *> faults,
               std::uint64_t model_seed)
    : _cfg(cfg), _faults(std::move(faults)), _store(store),
      _mutableStore(std::move(store))
{
    build(model_cfg, topo, model_seed);
}

void
Router::build(const core::ModelConfig& model_cfg,
              const sched::Topology& topo, std::uint64_t model_seed)
{
    const RouterConfig& cfg = _cfg;
    if (cfg.instances == 0) {
        throw std::invalid_argument(
            "Router: need at least one instance");
    }
    if (_faults.size() > cfg.instances) {
        throw std::invalid_argument(
            "Router: " + std::to_string(_faults.size()) +
            " fault injectors for " + std::to_string(cfg.instances) +
            " instances — extra entries would be silently ignored");
    }
    cfg.breaker.validate();
    if (!(cfg.probationMs >= 0.0) || !std::isfinite(cfg.probationMs)) {
        throw std::invalid_argument(
            "Router: probationMs must be finite and >= 0");
    }
    if (!(cfg.halfOpenPenaltyMs >= 0.0) ||
        !std::isfinite(cfg.halfOpenPenaltyMs) ||
        !(cfg.tripRecencyPenaltyMs >= 0.0) ||
        !std::isfinite(cfg.tripRecencyPenaltyMs) ||
        !(cfg.tripRecencyWindowMs > 0.0) ||
        !std::isfinite(cfg.tripRecencyWindowMs)) {
        throw std::invalid_argument(
            "Router: breaker score penalties must be finite and >= 0 "
            "with a positive recency window");
    }
    if (cfg.scrub.enabled) {
        cfg.scrub.validate();
        if (cfg.scrub.repair && !_mutableStore) {
            throw std::invalid_argument(
                "Router: ScrubConfig::repair needs a mutable store "
                "handle (use the mutable-store constructor or disable "
                "repair)");
        }
    }
    for (const FaultInjector *f : _faults) {
        if (f && f->config().bitFlipRate > 0.0 && !_mutableStore) {
            throw std::invalid_argument(
                "Router: an injector has bitFlipRate > 0 but the "
                "router holds no mutable store handle");
        }
    }
    if (_cfg.integrity.enabled && _cfg.integrity.repair &&
        !_mutableStore) {
        throw std::invalid_argument(
            "Router: IntegrityConfig::repair needs a mutable store "
            "handle (use the mutable-store constructor or disable "
            "repair)");
    }

    _modelCfg = model_cfg;
    _modelSeed = model_seed;
    const auto groups = topo.partition(cfg.instances);
    _faults.resize(cfg.instances, nullptr);
    _models.reserve(cfg.instances);
    _servers.reserve(cfg.instances);
    for (std::size_t i = 0; i < cfg.instances; ++i) {
        // Full-replica view: private MLP weights, shared tables.
        _models.push_back(std::make_unique<core::DlrmModel>(
            model_cfg, _store, model_seed));
        _servers.push_back(std::make_unique<Server>(
            *_models.back(), groups[i], cfg.server, _faults[i]));
    }
}

RouterStats
Router::serve(const core::Tensor& dense,
              const std::vector<core::SparseBatch>& batches,
              const std::vector<double>& arrivals_ms,
              const core::PrefetchSpec& pf,
              const FaultSchedule *schedule)
{
    if (batches.empty())
        throw std::invalid_argument("Router: need at least one batch");

    const std::size_t n = _servers.size();
    if (schedule) {
        schedule->validate(n);
        if (schedule->corruptsStore() && !_mutableStore) {
            throw std::invalid_argument(
                "Router: the fault schedule corrupts stored rows but "
                "the router holds no mutable store handle");
        }
    }

    const std::size_t rows = _models.front()->config().rows;
    const double sla = _cfg.server.slaMs;
    const bool use_breakers = _cfg.breaker.enabled;
    // Instances run at full capability; graceful degradation remains
    // an instance-local feature of Server::serve sessions.
    const DegradeState tier = DegradationPolicy::stateForTier(0);

    RouterStats rs;
    rs.total.arrived = arrivals_ms.size();
    rs.perInstance.resize(n);
    rs.availability.assign(n, 1.0);
    if (_cfg.recordPredictions)
        rs.predFingerprints.assign(arrivals_ms.size(), 0);

    // Per-instance routing state, all advanced on the virtual clock.
    std::vector<std::vector<double>> free_at(n);
    std::vector<WindowedP95> wins;
    std::vector<std::uint64_t> sheds(n, 0);
    std::vector<double> busy(n, 0.0);
    std::vector<CircuitBreaker> breakers;
    std::vector<double> drain_ready(n, 0.0);
    std::vector<double> probation_end(n, 0.0);
    std::vector<double> down_since(n, 0.0);
    std::vector<double> down_total(n, 0.0);
    std::size_t total_cores = 0;
    for (std::size_t i = 0; i < n; ++i) {
        free_at[i].assign(_servers[i]->numCores(), 0.0);
        wins.emplace_back(_cfg.healthWindow);
        breakers.emplace_back(_cfg.breaker);
        total_cores += _servers[i]->numCores();
    }

    // Background checksum scrubbing: deterministic round-robin sweep
    // on the virtual clock, interleaved with scripted bit flips in
    // exact time order below.
    std::unique_ptr<EmbeddingScrubber> scrubber;
    if (_cfg.scrub.enabled) {
        if (_mutableStore) {
            scrubber = std::make_unique<EmbeddingScrubber>(
                _mutableStore, _cfg.scrub);
        } else {
            scrubber = std::make_unique<EmbeddingScrubber>(
                _store, _cfg.scrub);
        }
    }

    // ---- Lifecycle machinery ------------------------------------
    //
    // Scripted events apply lazily: the event loop pops attempts in
    // nondecreasing readyMs order, so folding in every scripted event
    // with atMs <= the current attempt's readyMs keeps the whole
    // session a pure function of (script, seeds).
    std::size_t lc_cursor = 0;
    std::size_t flip_cursor = 0;

    const auto maxFreeAt = [&](std::size_t i) -> double {
        double m = 0.0;
        for (double f : free_at[i])
            m = std::max(m, f);
        return m;
    };

    // Draining -> Down once in-flight work ends; WarmRestart -> Up
    // once probation passes.
    const auto tickLifecycle = [&](double now) {
        for (std::size_t i = 0; i < n; ++i) {
            Server& srv = *_servers[i];
            if (srv.lifecycleState() == InstanceState::Draining &&
                now >= drain_ready[i]) {
                srv.markDown();
            }
            if (srv.lifecycleState() == InstanceState::WarmRestart &&
                now >= probation_end[i]) {
                srv.completeWarmRestart();
                ++rs.restarts;
                // The instance was conceptually Up from the end of
                // probation, however late this lazy tick fires.
                down_total[i] += probation_end[i] - down_since[i];
                // The rebuilt instance starts with a clean bill of
                // health: stale pre-crash failures say nothing about
                // the fresh weights.
                if (use_breakers)
                    breakers[i].reset();
            }
        }
    };

    const auto applyEventsUpTo = [&](double now) {
        tickLifecycle(now);
        if (!schedule) {
            if (scrubber)
                scrubber->advanceTo(now);
            return;
        }
        const auto& lc = schedule->lifecycleEvents();
        while (lc_cursor < lc.size() && lc[lc_cursor].atMs <= now) {
            const LifecycleEvent& e = lc[lc_cursor++];
            Server& srv = *_servers[e.instance];
            tickLifecycle(e.atMs);
            if (e.kind == LifecycleEvent::Kind::Crash) {
                if (srv.lifecycleState() == InstanceState::Up) {
                    srv.beginDrain();
                    // Partial drain: keep a residual core group open
                    // for this instance's pinned retries instead of
                    // orphaning them all at once.
                    if (_cfg.partialDrainCores > 0) {
                        srv.setActiveCores(
                            std::min(_cfg.partialDrainCores,
                                     srv.numCores()));
                    }
                    drain_ready[e.instance] =
                        std::max(maxFreeAt(e.instance), e.atMs);
                    down_since[e.instance] = e.atMs;
                    ++rs.crashes;
                }
            } else { // Recover
                if (srv.lifecycleState() == InstanceState::Draining)
                    srv.markDown(); // outage outlived the drain
                if (srv.lifecycleState() == InstanceState::Down) {
                    srv.beginWarmRestart();
                    // O(weights) rebuild: fresh MLP weights from the
                    // same seed over the same shared store — the
                    // restarted replica is bitwise-identical to its
                    // pre-crash self, so predictions are unaffected.
                    *_models[e.instance] = core::DlrmModel(
                        _modelCfg, _store, _modelSeed);
                    // The instance resumes with idle cores.
                    std::fill(free_at[e.instance].begin(),
                              free_at[e.instance].end(), e.atMs);
                    probation_end[e.instance] =
                        e.atMs + _cfg.probationMs;
                }
            }
        }
        tickLifecycle(now);
        const auto& flips = schedule->bitFlipEvents();
        while (flip_cursor < flips.size() &&
               flips[flip_cursor].atMs <= now) {
            const BitFlipEvent& e = flips[flip_cursor++];
            // Scrub ticks scheduled before this flip run first, so a
            // sweep never "repairs" corruption from its own future.
            if (scrubber)
                scrubber->advanceTo(e.atMs);
            _mutableStore->flipBit(e.table, e.row, e.bit);
        }
        if (scrubber)
            scrubber->advanceTo(now);
    };

    /** The injector governing instance @p i at @p now: an active
     *  schedule phase overrides the static per-instance injector. */
    const auto injFor = [&](std::size_t i,
                            double now) -> const FaultInjector * {
        if (schedule) {
            if (const FaultInjector *f = schedule->injectorAt(now, i))
                return f;
        }
        return _faults[i];
    };

    /** Can new work be routed to instance @p i at @p now? */
    const auto availableFor = [&](std::size_t i, double now) -> bool {
        if (_servers[i]->lifecycleState() != InstanceState::Up)
            return false;
        if (use_breakers && !breakers[i].admits(now))
            return false;
        return true;
    };

    // Earliest-free core of an instance (lowest index on ties),
    // restricted to the active core group during a partial drain.
    const auto earliestCore = [&](std::size_t i) -> std::size_t {
        const std::size_t active = _servers[i]->activeCores();
        const std::size_t limit =
            active > 0 ? std::min(active, free_at[i].size())
                       : free_at[i].size();
        std::size_t core = 0;
        for (std::size_t c = 1; c < limit; ++c) {
            if (free_at[i][c] < free_at[i][core])
                core = c;
        }
        return core;
    };
    const auto projectedWait = [&](std::size_t i,
                                   double ready) -> double {
        return std::max(0.0, free_at[i][earliestCore(i)] - ready);
    };
    const auto samplesOf = [&](std::uint64_t req) -> std::size_t {
        return batches[req % batches.size()].batchSize;
    };
    const auto serviceOn = [&](std::size_t i, std::size_t core,
                               std::size_t samples,
                               double now) -> double {
        const FaultInjector *f = injFor(i, now);
        const double straggle = f ? f->serviceFactor(core) : 1.0;
        return _cfg.server.service.serviceMs(samples) *
               tier.serviceFactor * straggle;
    };
    /** Projected completion of @p req on instance @p i at @p now. */
    const auto projectedEnd = [&](std::size_t i, double ready,
                                  std::size_t samples) -> double {
        const std::size_t core = earliestCore(i);
        return std::max(free_at[i][core], ready) +
               serviceOn(i, core, samples, ready);
    };
    // Health score = projected *completion* on this instance: queue
    // wait plus the batch-size-aware (and straggler-aware) service
    // estimate for this request, plus tail-latency and failure/shed
    // penalties. Using the per-request estimate instead of a constant
    // lets the score separate instances whose queues look equal but
    // whose effective service rates differ.
    const auto healthScore = [&](std::size_t i, double ready,
                                 std::size_t samples) {
        double penalty =
            _cfg.failurePenaltyMs *
            static_cast<double>(_servers[i]->totalFailed() + sheds[i]);
        // Breaker-aware scoring: admits() is a binary gate, but the
        // score should also *bias* away from an instance on breaker
        // probation (half-open) or one whose breaker tripped moments
        // ago — recent proof of sickness outlasts the reclosing.
        if (use_breakers) {
            if (breakers[i].state(ready) ==
                CircuitBreaker::State::HalfOpen)
                penalty += _cfg.halfOpenPenaltyMs;
            const double trip = breakers[i].lastTripMs();
            if (trip >= 0.0 &&
                ready - trip < _cfg.tripRecencyWindowMs) {
                penalty += _cfg.tripRecencyPenaltyMs *
                           (1.0 - (ready - trip) /
                                      _cfg.tripRecencyWindowMs);
            }
        }
        return projectedWait(i, ready) +
               serviceOn(i, earliestCore(i), samples, ready) +
               wins[i].p95() + penalty;
    };

    std::uint64_t rr = 0;
    std::vector<std::size_t> cand; // po2 candidate scratch
    /** Routes an attempt over the available instances; returns n when
     *  no instance can take new work. */
    const auto route = [&](const RAttempt& a) -> std::size_t {
        cand.clear();
        for (std::size_t i = 0; i < n; ++i) {
            if (static_cast<int>(i) != a.exclude &&
                availableFor(i, a.readyMs))
                cand.push_back(i);
        }
        if (cand.empty()) {
            // The only remaining option may be the excluded instance
            // itself (e.g. every other instance is down).
            if (a.exclude >= 0 &&
                availableFor(static_cast<std::size_t>(a.exclude),
                             a.readyMs))
                return static_cast<std::size_t>(a.exclude);
            return n;
        }
        if (cand.size() == 1)
            return cand.front();
        switch (_cfg.policy) {
          case RoutePolicy::RoundRobin: {
            // Cycle the global counter until it lands on a candidate;
            // with every instance available this reduces to the
            // classic exclude-skipping round robin.
            for (std::size_t k = 0; k < 2 * n; ++k) {
                const std::size_t i = rr++ % n;
                if (std::find(cand.begin(), cand.end(), i) !=
                    cand.end())
                    return i;
            }
            return cand.front();
          }
          case RoutePolicy::PowerOfTwo: {
            // Two seed-derived candidates drawn over the available
            // set (ascending order, so with every instance available
            // the mapping matches the classic exclude-skip draw),
            // least-queued wins, lower index on ties.
            const auto pick = [&](std::uint64_t kind) -> std::size_t {
                std::size_t i = static_cast<std::size_t>(
                    drawUnit(_cfg.seed, kind, a.req, a.failovers) *
                    static_cast<double>(cand.size()));
                i = std::min(i, cand.size() - 1);
                return cand[i];
            };
            const std::size_t c1 = pick(1);
            const std::size_t c2 = pick(2);
            const double w1 = projectedWait(c1, a.readyMs);
            const double w2 = projectedWait(c2, a.readyMs);
            if (w1 != w2)
                return w1 < w2 ? c1 : c2;
            return std::min(c1, c2);
          }
          case RoutePolicy::HealthAware: {
            std::size_t best = n; // sentinel
            double best_score = std::numeric_limits<double>::max();
            for (const std::size_t i : cand) {
                const double s =
                    healthScore(i, a.readyMs, samplesOf(a.req));
                if (s < best_score) {
                    best_score = s;
                    best = i;
                }
            }
            return best;
          }
        }
        return cand.front();
    };

    // Dense inputs per batch size, reference-stable while tasks run.
    std::map<std::size_t, core::Tensor> dense_by_rows;
    const auto denseFor =
        [&](std::size_t nrows) -> const core::Tensor& {
        auto it = dense_by_rows.find(nrows);
        if (it == dense_by_rows.end()) {
            core::Tensor t(nrows, dense.cols());
            std::memcpy(t.data(), dense.data(),
                        nrows * dense.cols() * sizeof(float));
            it = dense_by_rows.emplace(nrows, std::move(t)).first;
        }
        return it->second;
    };

    // Distinct (table, block) pairs touched by a sparse batch;
    // scratch reused across attempts. Out-of-range (poisoned)
    // indices are skipped — they fail in the kernel's bounds check,
    // not here.
    std::vector<core::BlockRef> touched;
    const auto touchedBlocks = [&](const core::SparseBatch& sparse) {
        touched.clear();
        const std::size_t tables = _store->numTables();
        for (std::size_t t = 0;
             t < std::min(tables, sparse.indices.size()); ++t) {
            for (const auto idx : sparse.indices[t]) {
                if (static_cast<std::uint64_t>(idx) <
                    static_cast<std::uint64_t>(rows)) {
                    touched.push_back(
                        {t, _store->blockOfRow(
                                static_cast<std::size_t>(idx))});
                }
            }
        }
        std::sort(touched.begin(), touched.end(),
                  [](const core::BlockRef& a, const core::BlockRef& b) {
                      return a.table != b.table ? a.table < b.table
                                                : a.block < b.block;
                  });
        touched.erase(std::unique(touched.begin(), touched.end()),
                      touched.end());
    };

    std::priority_queue<RAttempt, std::vector<RAttempt>, RAttemptLater>
        events;
    std::uint64_t seq = 0;
    for (std::size_t r = 0; r < arrivals_ms.size(); ++r) {
        events.push(RAttempt{arrivals_ms[r], seq++, r, 0, 0, -1, -1,
                             arrivals_ms[r]});
    }

    double makespan = 0.0;

    while (!events.empty()) {
        RAttempt a = events.top();
        events.pop();

        applyEventsUpTo(a.readyMs);

        // Resolve the instance. A retry pinned to an instance that
        // has since left rotation (crashed or draining) is re-bound
        // by the routing policy — the request outlives its instance —
        // unless the instance is partially draining, in which case
        // its residual core group keeps serving pinned work.
        std::size_t inst;
        bool partial_drain = false;
        if (a.instance >= 0) {
            inst = static_cast<std::size_t>(a.instance);
            const InstanceState st = _servers[inst]->lifecycleState();
            partial_drain = st == InstanceState::Draining &&
                            _servers[inst]->activeCores() > 0;
            if (st != InstanceState::Up && !partial_drain) {
                a.exclude = a.instance;
                a.instance = -1;
            }
        }
        if (a.instance < 0) {
            inst = route(a);
            if (inst >= n) {
                // No instance can take new work right now.
                if (a.tries == 0 && a.failovers == 0) {
                    ++rs.total.shed;
                    ++rs.lifecycleShed;
                    ++rs.clusterShed;
                } else {
                    ++rs.total.failed;
                }
                continue;
            }
            // Hedge: if the chosen instance's projected completion
            // already busts this request's deadline, redirect to the
            // best available instance that still fits instead of
            // queueing behind a dying one.
            if (_cfg.hedging && a.tries == 0) {
                const std::size_t samples = samplesOf(a.req);
                const double deadline = a.arrivalMs + sla;
                if (projectedEnd(inst, a.readyMs, samples) > deadline) {
                    std::size_t best = n;
                    double best_end =
                        std::numeric_limits<double>::max();
                    for (std::size_t j = 0; j < n; ++j) {
                        if (j == inst || !availableFor(j, a.readyMs))
                            continue;
                        const double e =
                            projectedEnd(j, a.readyMs, samples);
                        if (e <= deadline && e < best_end) {
                            best_end = e;
                            best = j;
                        }
                    }
                    if (best < n) {
                        inst = best;
                        ++rs.hedges;
                    }
                }
            }
        }
        if (use_breakers)
            breakers[inst].beginProbe(a.readyMs);

        ServeStats& pis = rs.perInstance[inst];
        if (a.tries == 0)
            ++pis.arrived;

        const std::size_t core = earliestCore(inst);
        const double start = std::max(free_at[inst][core], a.readyMs);
        const double wait = start - a.readyMs;
        const FaultInjector *fault = injFor(inst, a.readyMs);
        const double straggle =
            fault ? fault->serviceFactor(core) : 1.0;
        const double service = _cfg.server.service.serviceMs(
                                   samplesOf(a.req)) *
                               tier.serviceFactor * straggle;

        // Admission control at the routed instance. Retries and
        // failovers are always admitted — their work is already paid
        // for. A shed where no *available* instance could have met
        // the deadline is additionally a cluster-level shed.
        if (_cfg.server.admission && a.tries == 0 &&
            a.failovers == 0 && wait + service > sla) {
            ++rs.total.shed;
            ++pis.shed;
            ++sheds[inst];
            bool any_fits = false;
            for (std::size_t j = 0; j < n && !any_fits; ++j) {
                if (!availableFor(j, a.readyMs))
                    continue;
                any_fits = projectedWait(j, a.readyMs) +
                               serviceOn(j, earliestCore(j),
                                         samplesOf(a.req),
                                         a.readyMs) <=
                           sla;
            }
            if (!any_fits)
                ++rs.clusterShed;
            continue;
        }

        // Time-varying silent corruption: an active bit-flip fault
        // upsets a stored row *before* this attempt reads the store.
        if (fault && _mutableStore)
            fault->maybeFlipStoredBit(*_mutableStore, a.req, a.tries);

        // Real execution on the instance's private pool.
        const core::SparseBatch& base =
            batches[a.req % batches.size()];
        core::SparseBatch sparse = fault
            ? fault->maybeCorrupt(base, rows, a.req, a.tries)
            : base;

        // Embedding integrity: verify every store block this
        // attempt's lookups touch before executing. A corrupt block
        // is repaired in place (regenerated to the exact as-built
        // bytes) or, with repair off, the request is degraded — a
        // counted failure instead of a silent wrong answer.
        bool degraded = false;
        if (_cfg.integrity.enabled) {
            touchedBlocks(sparse);
            for (const auto& blk : touched) {
                if (_store->verifyBlock(blk.table, blk.block))
                    continue;
                ++rs.corruptionsDetected;
                if (_cfg.integrity.repair && _mutableStore) {
                    _mutableStore->repairBlock(blk.table, blk.block);
                    ++rs.blocksRepaired;
                } else {
                    degraded = true;
                }
            }
        }
        if (degraded) {
            // Corruption is deterministic, not transient: without
            // repair a retry anywhere re-reads the same corrupt
            // block, so the request fails now, loudly.
            ++rs.integrityDegraded;
            ++rs.total.failed;
            ++pis.failed;
            continue;
        }

        bool ok = true;
        try {
            std::uint64_t fp = 0;
            rs.total.execTotalMs += _servers[inst]->executeAttempt(
                core, denseFor(sparse.batchSize), sparse, tier, pf,
                a.req, a.tries, fault,
                _cfg.recordPredictions ? &fp : nullptr);
            if (_cfg.recordPredictions)
                rs.predFingerprints[a.req] = fp;
        } catch (...) {
            ok = false;
        }

        const double end = start + service;
        free_at[inst][core] = end;
        busy[inst] += service;
        makespan = std::max(makespan, end);
        // A partial drain stays open while pinned work is still
        // landing on the residual cores.
        if (_servers[inst]->lifecycleState() == InstanceState::Draining)
            drain_ready[inst] = std::max(drain_ready[inst], end);

        if (use_breakers && breakers[inst].record(ok, end))
            ++rs.breakerTrips;

        if (ok) {
            ++rs.total.served;
            ++pis.served;
            if (partial_drain)
                ++rs.partialDrainServed;
            const double latency = end - a.arrivalMs;
            rs.total.latency.add(latency);
            pis.latency.add(latency);
            wins[inst].add(latency);
            if (latency <= sla)
                ++rs.compliant;
        } else if (a.tries < _cfg.server.maxRetries) {
            ++rs.total.retried;
            ++pis.retried;
            const double backoff = std::min(
                _cfg.server.backoffBaseMs *
                    static_cast<double>(1ull << a.tries),
                _cfg.server.backoffCapMs);
            // Keep a partially-draining instance open long enough for
            // the retry it is about to receive.
            if (_servers[inst]->lifecycleState() ==
                    InstanceState::Draining &&
                _servers[inst]->activeCores() > 0) {
                drain_ready[inst] =
                    std::max(drain_ready[inst], end + backoff);
            }
            events.push(RAttempt{end + backoff, seq++, a.req,
                                 a.tries + 1, a.failovers,
                                 static_cast<int>(inst), a.exclude,
                                 a.arrivalMs});
        } else if (a.failovers < _cfg.maxFailovers && n > 1) {
            // Retry budget exhausted here: hand the request to a
            // different replica with a fresh budget, once.
            ++rs.failovers;
            events.push(RAttempt{end + _cfg.server.backoffBaseMs,
                                 seq++, a.req, 0, a.failovers + 1, -1,
                                 static_cast<int>(inst), a.arrivalMs});
        } else {
            ++rs.total.failed;
            ++pis.failed;
        }
    }

    // Fold any scripted events up to the end of the session, so
    // availability accounts for outages no attempt happened to
    // observe; instances still out of rotation stay unavailable
    // through the end.
    applyEventsUpTo(makespan);
    if (scrubber) {
        rs.blocksScrubbed = scrubber->blocksScrubbed();
        rs.scrubCorruptions = scrubber->corruptionsFound();
        rs.scrubRepairs = scrubber->blocksRepaired();
        rs.scrubSweeps = scrubber->sweepsCompleted();
    }
    rs.makespanMs = makespan;
    if (makespan > 0.0) {
        double busy_total = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            busy_total += busy[i];
            rs.perInstance[i].serverUtilization =
                busy[i] /
                (makespan *
                 static_cast<double>(free_at[i].size()));
            double down = down_total[i];
            if (_servers[i]->lifecycleState() != InstanceState::Up &&
                makespan > down_since[i])
                down += makespan - down_since[i];
            rs.availability[i] =
                std::max(0.0, 1.0 - down / makespan);
        }
        rs.total.serverUtilization =
            busy_total /
            (makespan * static_cast<double>(total_cores));
    }
    return rs;
}

} // namespace dlrmopt::serve
