#include "serve/fault.hpp"

#include <new>
#include <string>

#include "core/types.hpp"

namespace dlrmopt::serve
{

namespace
{

// Domain-separation constants so the exception / alloc / corruption
// draws for the same (req, attempt) are independent.
constexpr std::uint64_t kindException = 0x45584350ull;  // "EXCP"
constexpr std::uint64_t kindAlloc = 0x414c4c4full;      // "ALLO"
constexpr std::uint64_t kindCorrupt = 0x434f5252ull;    // "CORR"
constexpr std::uint64_t kindPosition = 0x504f5349ull;   // "POSI"

} // namespace

FaultInjector::FaultInjector(const FaultConfig& cfg) : _cfg(cfg)
{
    const auto rateOk = [](double r) { return r >= 0.0 && r <= 1.0; };
    if (!rateOk(cfg.taskExceptionRate) ||
        !rateOk(cfg.allocFailureRate) ||
        !rateOk(cfg.corruptIndexRate)) {
        throw std::invalid_argument(
            "FaultConfig: rates must lie in [0, 1]");
    }
    if (!(cfg.stragglerFactor >= 1.0)) {
        throw std::invalid_argument(
            "FaultConfig: stragglerFactor must be >= 1");
    }
}

double
FaultInjector::draw(std::uint64_t kind, std::uint64_t req,
                    std::uint64_t attempt) const
{
    return toUnitInterval(mix64(
        _cfg.seed ^ mix64(kind ^ mix64(req * 2654435761ull + attempt))));
}

bool
FaultInjector::taskExceptionHits(std::uint64_t req,
                                 std::uint64_t attempt) const
{
    return draw(kindException, req, attempt) < _cfg.taskExceptionRate;
}

bool
FaultInjector::allocFailureHits(std::uint64_t req,
                                std::uint64_t attempt) const
{
    return draw(kindAlloc, req, attempt) < _cfg.allocFailureRate;
}

bool
FaultInjector::corruptionHits(std::uint64_t req,
                              std::uint64_t attempt) const
{
    return draw(kindCorrupt, req, attempt) < _cfg.corruptIndexRate;
}

void
FaultInjector::maybeThrow(std::uint64_t req, std::uint64_t attempt) const
{
    if (taskExceptionHits(req, attempt)) {
        _exceptions.fetch_add(1);
        throw InjectedFault("injected task exception (request " +
                            std::to_string(req) + ", attempt " +
                            std::to_string(attempt) + ")");
    }
    if (allocFailureHits(req, attempt)) {
        _allocs.fetch_add(1);
        throw std::bad_alloc();
    }
}

core::SparseBatch
FaultInjector::maybeCorrupt(const core::SparseBatch& sparse,
                            std::size_t rows, std::uint64_t req,
                            std::uint64_t attempt) const
{
    core::SparseBatch copy = sparse;
    if (!corruptionHits(req, attempt))
        return copy;
    _corruptions.fetch_add(1);

    // Pick a deterministic (table, position) to poison.
    const std::uint64_t r =
        mix64(_cfg.seed ^ mix64(kindPosition ^
                                mix64(req * 2654435761ull + attempt)));
    const std::size_t t = r % copy.numTables();
    if (copy.indices[t].empty())
        return copy;
    const std::size_t pos = (r >> 17) % copy.indices[t].size();
    copy.indices[t][pos] =
        static_cast<RowIndex>(rows + 1 + (r >> 43) % 1024);
    return copy;
}

double
FaultInjector::serviceFactor(std::size_t core) const
{
    if (_cfg.stragglerCore >= 0 &&
        core == static_cast<std::size_t>(_cfg.stragglerCore)) {
        return _cfg.stragglerFactor;
    }
    return 1.0;
}

} // namespace dlrmopt::serve
