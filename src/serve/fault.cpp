#include "serve/fault.hpp"

#include <new>
#include <string>

#include "core/types.hpp"

namespace dlrmopt::serve
{

namespace
{

// Domain-separation constants so the exception / alloc / corruption
// draws for the same (req, attempt) are independent.
constexpr std::uint64_t kindException = 0x45584350ull;  // "EXCP"
constexpr std::uint64_t kindAlloc = 0x414c4c4full;      // "ALLO"
constexpr std::uint64_t kindCorrupt = 0x434f5252ull;    // "CORR"
constexpr std::uint64_t kindPosition = 0x504f5349ull;   // "POSI"
constexpr std::uint64_t kindBitFlip = 0x464c4950ull;    // "FLIP"
constexpr std::uint64_t kindBitSite = 0x53495445ull;    // "SITE"
constexpr std::uint64_t kindSnapTorn = 0x544f524eull;   // "TORN"
constexpr std::uint64_t kindSnapFlip = 0x53464c50ull;   // "SFLP"
constexpr std::uint64_t kindSnapAlloc = 0x534e414cull;  // "SNAL"

} // namespace

void
FaultConfig::validate(std::size_t numCores) const
{
    const auto rateOk = [](double r) { return r >= 0.0 && r <= 1.0; };
    if (!rateOk(taskExceptionRate) || !rateOk(allocFailureRate) ||
        !rateOk(corruptIndexRate) || !rateOk(bitFlipRate) ||
        !rateOk(snapshotTornWriteRate) || !rateOk(snapshotFlipRate) ||
        !rateOk(snapshotBadAllocRate)) {
        throw std::invalid_argument(
            "FaultConfig: rates must lie in [0, 1]");
    }
    // The negated comparison also rejects NaN.
    if (!(stragglerFactor >= 1.0) ||
        stragglerFactor > 1e12) {
        throw std::invalid_argument(
            "FaultConfig: stragglerFactor must be finite and >= 1, got " +
            std::to_string(stragglerFactor));
    }
    if (stragglerCore < -1) {
        throw std::invalid_argument(
            "FaultConfig: stragglerCore must be -1 (disabled) or a core "
            "id, got " + std::to_string(stragglerCore));
    }
    if (numCores > 0 && stragglerCore >= 0 &&
        static_cast<std::size_t>(stragglerCore) >= numCores) {
        throw std::invalid_argument(
            "FaultConfig: stragglerCore " + std::to_string(stragglerCore) +
            " out of range [0, " + std::to_string(numCores) + ")");
    }
}

FaultInjector::FaultInjector(const FaultConfig& cfg) : _cfg(cfg)
{
    cfg.validate();
}

double
FaultInjector::draw(std::uint64_t kind, std::uint64_t req,
                    std::uint64_t attempt) const
{
    return toUnitInterval(mix64(
        _cfg.seed ^ mix64(kind ^ mix64(req * 2654435761ull + attempt))));
}

bool
FaultInjector::taskExceptionHits(std::uint64_t req,
                                 std::uint64_t attempt) const
{
    return draw(kindException, req, attempt) < _cfg.taskExceptionRate;
}

bool
FaultInjector::allocFailureHits(std::uint64_t req,
                                std::uint64_t attempt) const
{
    return draw(kindAlloc, req, attempt) < _cfg.allocFailureRate;
}

bool
FaultInjector::corruptionHits(std::uint64_t req,
                              std::uint64_t attempt) const
{
    return draw(kindCorrupt, req, attempt) < _cfg.corruptIndexRate;
}

void
FaultInjector::maybeThrow(std::uint64_t req, std::uint64_t attempt) const
{
    if (taskExceptionHits(req, attempt)) {
        _exceptions.fetch_add(1);
        throw InjectedFault("injected task exception (request " +
                            std::to_string(req) + ", attempt " +
                            std::to_string(attempt) + ")");
    }
    if (allocFailureHits(req, attempt)) {
        _allocs.fetch_add(1);
        throw std::bad_alloc();
    }
}

core::SparseBatch
FaultInjector::maybeCorrupt(const core::SparseBatch& sparse,
                            std::size_t rows, std::uint64_t req,
                            std::uint64_t attempt) const
{
    core::SparseBatch copy = sparse;
    if (!corruptionHits(req, attempt))
        return copy;
    _corruptions.fetch_add(1);

    // Pick a deterministic (table, position) to poison.
    const std::uint64_t r =
        mix64(_cfg.seed ^ mix64(kindPosition ^
                                mix64(req * 2654435761ull + attempt)));
    const std::size_t t = r % copy.numTables();
    if (copy.indices[t].empty())
        return copy;
    const std::size_t pos = (r >> 17) % copy.indices[t].size();
    copy.indices[t][pos] =
        static_cast<RowIndex>(rows + 1 + (r >> 43) % 1024);
    return copy;
}

bool
FaultInjector::bitFlipHits(std::uint64_t req, std::uint64_t attempt) const
{
    return draw(kindBitFlip, req, attempt) < _cfg.bitFlipRate;
}

bool
FaultInjector::maybeFlipStoredBit(core::EmbeddingStore& store,
                                  std::uint64_t req,
                                  std::uint64_t attempt) const
{
    if (!bitFlipHits(req, attempt))
        return false;
    _bitFlips.fetch_add(1);

    // Pick a deterministic (table, row, bit) upset site.
    const std::uint64_t r =
        mix64(_cfg.seed ^ mix64(kindBitSite ^
                                mix64(req * 2654435761ull + attempt)));
    const std::size_t t = r % store.numTables();
    const std::size_t row = (r >> 13) % store.rows();
    const std::size_t bit = (r >> 41) % (store.dim() * 32);
    store.flipBit(t, row, bit);
    return true;
}

core::SnapshotFaults
FaultInjector::snapshotFaults(std::uint64_t op) const
{
    core::SnapshotFaults f;
    if (draw(kindSnapTorn, op, 0) < _cfg.snapshotTornWriteRate) {
        f.tornWrite = true;
        // Crash point: a seed-derived prefix length; save() clamps it
        // to the file size, so any draw models a real partial write.
        f.tornBytes = static_cast<std::size_t>(
            mix64(_cfg.seed ^ mix64(kindSnapTorn ^ mix64(op + 1))) %
            65536u);
        _snapshot.fetch_add(1);
    }
    if (draw(kindSnapFlip, op, 0) < _cfg.snapshotFlipRate) {
        const std::uint64_t r =
            mix64(_cfg.seed ^ mix64(kindSnapFlip ^ mix64(op + 1)));
        f.flipBit = true;
        f.flipByteOffset = static_cast<std::size_t>(r >> 8);
        f.flipMask = static_cast<std::uint8_t>(1u << (r % 8));
        _snapshot.fetch_add(1);
    }
    if (draw(kindSnapAlloc, op, 0) < _cfg.snapshotBadAllocRate) {
        f.loadBadAlloc = true;
        _snapshot.fetch_add(1);
    }
    return f;
}

double
FaultInjector::serviceFactor(std::size_t core) const
{
    if (_cfg.stragglerCore >= 0 &&
        core == static_cast<std::size_t>(_cfg.stragglerCore)) {
        return _cfg.stragglerFactor;
    }
    return 1.0;
}

} // namespace dlrmopt::serve
