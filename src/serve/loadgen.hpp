/**
 * @file
 * Poisson request load generator (Sec. 6.5: "we model a load
 * generator that generates requests with a Poisson distribution").
 */

#ifndef DLRMOPT_SERVE_LOADGEN_HPP
#define DLRMOPT_SERVE_LOADGEN_HPP

#include <cstdint>
#include <vector>

namespace dlrmopt::serve
{

/**
 * Deterministic Poisson-process arrival generator: exponential
 * inter-arrival times with a given mean, from a counter-based PRNG so
 * the same seed always yields the same request stream.
 */
class PoissonLoadGen
{
  public:
    /**
     * @param mean_interarrival_ms Average time between requests (the
     *        x-axis of Fig. 17).
     * @param seed PRNG seed.
     */
    PoissonLoadGen(double mean_interarrival_ms, std::uint64_t seed = 7);

    double meanInterarrivalMs() const { return _meanMs; }

    /** Arrival timestamps (ms) of the first @p n requests. */
    std::vector<double> arrivals(std::size_t n) const;

  private:
    double _meanMs;
    std::uint64_t _seed;
};

} // namespace dlrmopt::serve

#endif // DLRMOPT_SERVE_LOADGEN_HPP
