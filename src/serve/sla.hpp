/**
 * @file
 * SLA-region analysis: the fastest Poisson arrival rate a
 * configuration can sustain while keeping p95 latency within the SLA
 * (the boundary between Fig. 17's "SLA-compliant" and "saturation"
 * regions). The paper quantifies its schemes by how much faster an
 * arrival rate they tolerate (1.4x for rm2_1, 2.3x for rm1).
 */

#ifndef DLRMOPT_SERVE_SLA_HPP
#define DLRMOPT_SERVE_SLA_HPP

#include <cstddef>
#include <cstdint>

namespace dlrmopt::serve
{

/** Parameters of an SLA-boundary search. */
struct SlaSearchConfig
{
    double serviceMs = 1.0;   //!< per-request (batch) service time
    std::size_t servers = 1;  //!< parallel serving cores
    double slaMs = 100.0;     //!< p95 target
    std::size_t requests = 8000; //!< simulated requests per probe
    std::uint64_t seed = 17;
    int iterations = 24;      //!< bisection steps
};

/**
 * Finds the minimum mean inter-arrival time (ms) whose p95 latency
 * still meets the SLA. Smaller is better: it means the system
 * tolerates a faster request stream.
 *
 * @return The boundary inter-arrival time, or +infinity when even an
 *         idle system cannot meet the SLA (service > SLA).
 */
double minCompliantArrivalMs(const SlaSearchConfig& cfg);

} // namespace dlrmopt::serve

#endif // DLRMOPT_SERVE_SLA_HPP
