/**
 * @file
 * SLA-region analysis: the fastest Poisson arrival rate a
 * configuration can sustain while keeping p95 latency within the SLA
 * (the boundary between Fig. 17's "SLA-compliant" and "saturation"
 * regions). The paper quantifies its schemes by how much faster an
 * arrival rate they tolerate (1.4x for rm2_1, 2.3x for rm1).
 */

#ifndef DLRMOPT_SERVE_SLA_HPP
#define DLRMOPT_SERVE_SLA_HPP

#include <cstddef>
#include <cstdint>

namespace dlrmopt::serve
{

/** Parameters of an SLA-boundary search. */
struct SlaSearchConfig
{
    double serviceMs = 1.0;   //!< per-request (batch) service time
    std::size_t servers = 1;  //!< parallel serving cores
    double slaMs = 100.0;     //!< p95 target
    std::size_t requests = 8000; //!< simulated requests per probe
    std::uint64_t seed = 17;
    int iterations = 24;      //!< bisection steps
};

/**
 * Checks an SLA search configuration for usable values.
 *
 * @throws std::invalid_argument on non-positive / NaN service, SLA,
 *         or counts that would hang or NaN-poison the search.
 */
void validate(const SlaSearchConfig& cfg);

/**
 * Finds the minimum mean inter-arrival time (ms) whose p95 latency
 * still meets the SLA. Smaller is better: it means the system
 * tolerates a faster request stream.
 *
 * @return The boundary inter-arrival time, or +infinity when even an
 *         idle system cannot meet the SLA (service > SLA).
 *
 * @throws std::invalid_argument when @p cfg fails validate().
 */
double minCompliantArrivalMs(const SlaSearchConfig& cfg);

/**
 * Shedding-aware SLA boundary: with deadline-based admission control
 * on, the p95 of *served* requests stays within the SLA by
 * construction, so the saturation signal becomes the shed rate.
 * Finds the minimum mean inter-arrival time whose shed fraction stays
 * at or below @p max_shed_rate.
 *
 * @param max_shed_rate Tolerated fraction of rejected requests in
 *        [0, 1).
 * @return The boundary inter-arrival time, or +infinity when even a
 *         slow stream sheds more than tolerated (service > SLA).
 *
 * @throws std::invalid_argument on a bad config or shed rate.
 */
double minCompliantArrivalShedding(const SlaSearchConfig& cfg,
                                   double max_shed_rate);

} // namespace dlrmopt::serve

#endif // DLRMOPT_SERVE_SLA_HPP
