/**
 * @file
 * Deterministic, seeded fault injection for the serving layer.
 *
 * Every injection decision is a pure function of (seed, kind,
 * request id, attempt), so a serving session replayed with the same
 * seed hits exactly the same faults — which is what makes the
 * fault-tolerance tests reproducible instead of flaky.
 *
 * Supported fault classes:
 *  - task exceptions: a stage task throws InjectedFault mid-request;
 *  - allocation failures: a stage task throws std::bad_alloc;
 *  - index corruption: one embedding lookup index of the request is
 *    driven out of range (caught by embedding_bag's bounds check as
 *    core::IndexError);
 *  - straggler cores: one physical core serves every request slower
 *    by a fixed factor (modeling a thermally-throttled or noisy
 *    neighbor core);
 *  - stored bit flips: one bit of one stored embedding row is
 *    silently inverted (modeling a DRAM upset), detectable only by
 *    the EmbeddingStore block checksums;
 *  - snapshot persistence faults: a reload operation's snapshot save
 *    crashes mid-write (torn temp file, target untouched), its
 *    published file takes a storage bit flip, or its load bad_allocs
 *    while materializing tables — all derived deterministically per
 *    reload operation id (core::SnapshotFaults).
 */

#ifndef DLRMOPT_SERVE_FAULT_HPP
#define DLRMOPT_SERVE_FAULT_HPP

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <stdexcept>

#include "core/embedding_store.hpp"
#include "core/snapshot.hpp"
#include "core/sparse_input.hpp"

namespace dlrmopt::serve
{

/** Exception thrown by injected task faults. */
class InjectedFault : public std::runtime_error
{
  public:
    explicit InjectedFault(const std::string& what)
        : std::runtime_error(what)
    {
    }
};

/** Fault-injection knobs; all rates are per request *attempt*. */
struct FaultConfig
{
    std::uint64_t seed = 1;

    double taskExceptionRate = 0.0; //!< P(stage task throws)
    double allocFailureRate = 0.0;  //!< P(stage task bad_allocs)
    double corruptIndexRate = 0.0;  //!< P(one lookup index poisoned)
    double bitFlipRate = 0.0;       //!< P(one stored row bit flipped)

    int stragglerCore = -1;        //!< physical core id, -1 = none
    double stragglerFactor = 1.0;  //!< service-time multiplier >= 1

    /// @name Snapshot persistence faults (per reload *operation*)
    /// @{
    double snapshotTornWriteRate = 0.0; //!< P(save crashes pre-rename)
    double snapshotFlipRate = 0.0;      //!< P(published file bit flip)
    double snapshotBadAllocRate = 0.0;  //!< P(load bad_allocs)
    /// @}

    /**
     * Rejects out-of-domain knobs: every rate must lie in [0, 1],
     * stragglerFactor must be finite and >= 1, and stragglerCore must
     * be -1 (disabled) or a nonnegative core id. Callers that know
     * the core count pass @p numCores to additionally range-check
     * stragglerCore; the default skips that check.
     *
     * @throws std::invalid_argument on any violation.
     */
    void validate(std::size_t numCores = 0) const;
};

/**
 * Seeded fault injector. Decision methods are const and thread-safe;
 * the hit counters are atomic.
 */
class FaultInjector
{
  public:
    /**
     * @throws std::invalid_argument when cfg fails
     *         FaultConfig::validate().
     */
    explicit FaultInjector(const FaultConfig& cfg);

    const FaultConfig& config() const { return _cfg; }

    /** True when attempt (req, attempt) should throw InjectedFault. */
    bool taskExceptionHits(std::uint64_t req,
                           std::uint64_t attempt) const;

    /** True when attempt (req, attempt) should throw bad_alloc. */
    bool allocFailureHits(std::uint64_t req,
                          std::uint64_t attempt) const;

    /** True when attempt (req, attempt) gets a poisoned index. */
    bool corruptionHits(std::uint64_t req, std::uint64_t attempt) const;

    /** True when attempt (req, attempt) flips a stored row bit. */
    bool bitFlipHits(std::uint64_t req, std::uint64_t attempt) const;

    /**
     * Throws the configured task fault for this attempt, if any.
     * Call from inside a stage task; counts hits.
     *
     * @throws InjectedFault or std::bad_alloc on a hit.
     */
    void maybeThrow(std::uint64_t req, std::uint64_t attempt) const;

    /**
     * Returns a copy of @p sparse with one lookup index driven out of
     * range when corruption hits this attempt; otherwise an untouched
     * copy. The poisoned position is seed-derived.
     */
    core::SparseBatch maybeCorrupt(const core::SparseBatch& sparse,
                                   std::size_t rows, std::uint64_t req,
                                   std::uint64_t attempt) const;

    /**
     * When a bit flip hits this attempt, silently inverts one
     * seed-derived (table, row, bit) of @p store — exactly the silent
     * corruption a DRAM upset produces: the store's checksum for the
     * affected block stops verifying, nothing else changes. Returns
     * true when a flip was injected.
     */
    bool maybeFlipStoredBit(core::EmbeddingStore& store, std::uint64_t req,
                            std::uint64_t attempt) const;

    /** Service-time multiplier for physical core @p core (>= 1). */
    double serviceFactor(std::size_t core) const;

    /**
     * The scripted persistence faults for reload operation @p op: a
     * deterministic SnapshotFaults instance whose torn-byte count,
     * flip site, and flip mask are seed-derived. Counts one snapshot
     * fault per armed field. The same (seed, op) always yields the
     * same faults, so reload chaos sessions replay bit-identically.
     */
    core::SnapshotFaults snapshotFaults(std::uint64_t op) const;

    std::uint64_t injectedExceptions() const { return _exceptions; }
    std::uint64_t injectedAllocFailures() const { return _allocs; }
    std::uint64_t injectedCorruptions() const { return _corruptions; }
    std::uint64_t injectedBitFlips() const { return _bitFlips; }
    std::uint64_t injectedSnapshotFaults() const { return _snapshot; }

  private:
    /** Uniform [0,1) draw keyed by (kind, req, attempt). */
    double draw(std::uint64_t kind, std::uint64_t req,
                std::uint64_t attempt) const;

    FaultConfig _cfg;
    mutable std::atomic<std::uint64_t> _exceptions{0};
    mutable std::atomic<std::uint64_t> _allocs{0};
    mutable std::atomic<std::uint64_t> _corruptions{0};
    mutable std::atomic<std::uint64_t> _bitFlips{0};
    mutable std::atomic<std::uint64_t> _snapshot{0};
};

} // namespace dlrmopt::serve

#endif // DLRMOPT_SERVE_FAULT_HPP
