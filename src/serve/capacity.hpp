/**
 * @file
 * Elastic capacity and in-session service-model recalibration for the
 * multi-tenant fleet.
 *
 * The paper sizes a cluster once, offline, against Table 1's SLA
 * targets. A production fleet cannot: diurnal arrival curves swing
 * offered load severalfold within a session, and the service-time
 * behaviour itself drifts (cache warmth, co-located jobs). Two
 * controllers close those loops on the deterministic virtual clock:
 *
 *  - **CapacityController** — a windowed load forecast (EWMA over
 *    fixed windows of offered service-milliseconds) drives a desired
 *    instance count: scale up immediately when the forecast exceeds
 *    the target utilization of the current Up set, scale down only
 *    after `downLag` consecutive low windows (hysteresis, so a
 *    momentary lull does not flap capacity). The fleet maps the
 *    desired count onto the PR-4 lifecycle machinery: Up -> Draining
 *    (optionally partial: a smaller core group serves residual
 *    traffic) -> Down, and Down -> WarmRestart -> Up after probation.
 *
 *  - **ServiceModelRecalibrator** — a sliding window of observed
 *    (samples, measured ms) dispatch pairs refit through
 *    ServiceModel::fit() every `intervalMs`. The serving loop's
 *    *estimate* (admission, batch-deadline feasibility, queue-wait
 *    projection) tracks the *actual* service process scripted by a
 *    ServiceTimeline; staleness (mean relative error of the current
 *    estimate over the window above a threshold) is detected and
 *    surfaced. With recalibration disabled and a stationary truth,
 *    accounting is bit-for-bit the legacy static-model behaviour.
 */

#ifndef DLRMOPT_SERVE_CAPACITY_HPP
#define DLRMOPT_SERVE_CAPACITY_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

#include "serve/service_model.hpp"

namespace dlrmopt::serve
{

/** Elastic-capacity knobs. */
struct CapacityConfig
{
    bool elastic = false;  //!< off: fixed instance count

    std::size_t minInstances = 1;

    /** Forecast window length (virtual ms). Decisions land on window
     *  boundaries, so capacity moves are deterministic. */
    double windowMs = 50.0;

    /** EWMA smoothing of the per-window offered load (0 = last
     *  window only, 1 would never update; 0.3 keeps ~2 windows of
     *  memory). */
    double forecastDecay = 0.3;

    /** Plan capacity so forecast offered load <= this fraction of
     *  the Up set's core-milliseconds per millisecond. */
    double targetUtilization = 0.7;

    /** Consecutive low windows required before a scale-down (scale-
     *  ups are immediate: under-capacity sheds, over-capacity only
     *  wastes). */
    std::size_t downLag = 3;

    /** Virtual ms a warm-restarted instance spends in probation. */
    double probationMs = 5.0;

    /** Partial drain: a scale-down victim keeps this many cores
     *  serving residual traffic while Draining instead of stopping
     *  cold (0 = all-or-nothing drain). */
    std::size_t partialDrainCores = 0;

    /** Virtual ms a partial drain lingers before the instance stops
     *  accepting work entirely. */
    double drainGraceMs = 20.0;

    /** @throws std::invalid_argument on minInstances == 0, a non-
     *          positive/non-finite window or grace, a utilization or
     *          decay outside (0, 1], or a zero downLag. */
    void validate() const;
};

/**
 * Windowed offered-load forecaster. The fleet reports every arrival's
 * estimated service cost; at each window boundary the controller
 * folds the window into an EWMA forecast and recommends an instance
 * count. Pure virtual-clock arithmetic: no wall time, no randomness.
 */
class CapacityController
{
  public:
    /**
     * @param cfg Knobs (validated here).
     * @param max_instances Instance slots the fleet owns.
     * @param cores_per_instance Serving cores per instance (capacity
     *        of one Up instance is cores * 1 ms/ms).
     *
     * @throws std::invalid_argument when cfg fails validate() or
     *         minInstances exceeds max_instances, or either count is
     *         zero.
     */
    CapacityController(const CapacityConfig& cfg,
                       std::size_t max_instances,
                       std::size_t cores_per_instance);

    /** Accumulates one arrival's estimated service cost (ms) into
     *  the current window. @p now_ms must be nondecreasing. */
    void observeArrival(double now_ms, double service_cost_ms);

    /**
     * Advances window accounting to @p now_ms and returns the
     * currently desired instance count (clamped to [minInstances,
     * maxInstances]). Idempotent between window boundaries.
     */
    std::size_t desiredInstances(double now_ms);

    /** Forecast offered load (service-ms per ms) after the last
     *  closed window. */
    double forecastLoad() const { return _forecast; }

    std::size_t windowsClosed() const { return _windowsClosed; }

    /**
     * Reload-aware hold: while @p hold is set, window boundaries
     * never lower the desired count (scale-ups stay immediate) and
     * the low-streak hysteresis does not accumulate. The fleet
     * asserts this while a ReloadManager canary/rollout is in flight
     * — draining an instance mid-canary would yank the very capacity
     * the rollout's p95 gate is being judged against, turning every
     * reload into a self-inflicted latency regression. Dropped when
     * the rollout commits or rolls back; the lull must then persist
     * for a full downLag streak before any instance drains.
     */
    void holdScaleDowns(bool hold) { _holdScaleDowns = hold; }

    /** True while scale-downs are held (see holdScaleDowns). */
    bool scaleDownsHeld() const { return _holdScaleDowns; }

  private:
    void closeWindowsUpTo(double now_ms);

    CapacityConfig _cfg;
    std::size_t _maxInstances;
    std::size_t _coresPerInstance;

    double _windowEnd;    //!< end of the currently open window
    double _windowLoadMs = 0.0; //!< offered service-ms this window
    double _forecast = 0.0;     //!< EWMA service-ms per ms
    std::size_t _windowsClosed = 0;
    std::size_t _lowStreak = 0; //!< consecutive scale-down windows
    std::size_t _desired;       //!< last recommendation
    bool _holdScaleDowns = false; //!< reload in flight: never shrink
};

/** Recalibration knobs. */
struct RecalibrationConfig
{
    bool enabled = false;

    double intervalMs = 100.0;  //!< refit period on the virtual clock

    std::size_t window = 256;   //!< sliding (samples, ms) window

    /** Observations required before the first refit replaces the
     *  seed model. */
    std::size_t minObservations = 16;

    /** Mean relative error of the current model over the window at
     *  which it is flagged stale. */
    double staleThreshold = 0.25;

    /** @throws std::invalid_argument on a non-positive interval /
     *          threshold, zero window, or minObservations > window. */
    void validate() const;
};

/**
 * Sliding-window least-squares recalibration of the serving loop's
 * ServiceModel estimate from observed dispatch times.
 */
class ServiceModelRecalibrator
{
  public:
    /**
     * @param initial Seed estimate used until enough observations
     *        accumulate (validated).
     * @param cfg Knobs (validated).
     */
    ServiceModelRecalibrator(const ServiceModel& initial,
                             const RecalibrationConfig& cfg);

    /** Records one dispatch: @p samples coalesced samples took
     *  @p measured_ms. Ignored when disabled. */
    void observe(std::size_t samples, double measured_ms);

    /**
     * Refits when enabled, the interval has elapsed since the last
     * refit, and at least minObservations are windowed. Returns true
     * when the estimate was replaced this call.
     */
    bool maybeRecalibrate(double now_ms);

    /** The estimate the serving loop should price dispatches with. */
    const ServiceModel& current() const { return _current; }

    /** Mean relative |estimate - observed| / observed over the
     *  window (0 when empty). */
    double meanRelativeError() const;

    /** True when the current estimate's windowed error exceeds the
     *  stale threshold — i.e. the model no longer describes the
     *  service process and a refit (or alert) is due. */
    bool stale() const;

    std::size_t recalibrations() const { return _recalibrations; }
    std::size_t observations() const { return _observations; }

  private:
    RecalibrationConfig _cfg;
    ServiceModel _current;
    std::vector<std::size_t> _samples; //!< ring buffer
    std::vector<double> _measured;
    std::size_t _head = 0;
    std::size_t _filled = 0;
    std::uint64_t _observations = 0;
    double _lastFitMs;
    std::size_t _recalibrations = 0;

    // fit() scratch, reused across refits.
    std::vector<std::size_t> _fitSamples;
    std::vector<double> _fitMeasured;
};

} // namespace dlrmopt::serve

#endif // DLRMOPT_SERVE_CAPACITY_HPP
