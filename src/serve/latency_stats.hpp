/**
 * @file
 * Latency distribution statistics (p95 tail latency, SLA compliance)
 * for the serving evaluation (Sec. 6.5, Fig. 17).
 */

#ifndef DLRMOPT_SERVE_LATENCY_STATS_HPP
#define DLRMOPT_SERVE_LATENCY_STATS_HPP

#include <cstddef>
#include <vector>

namespace dlrmopt::serve
{

/**
 * Accumulates latency samples and answers percentile queries.
 */
class LatencyStats
{
  public:
    LatencyStats() = default;

    explicit LatencyStats(std::vector<double> samples)
        : _samples(std::move(samples))
    {
    }

    void add(double latency_ms) { _samples.push_back(latency_ms); }

    std::size_t count() const { return _samples.size(); }
    bool empty() const { return _samples.empty(); }

    /**
     * @param p Percentile in [0, 100], e.g. 95 for the paper's tail
     *          metric. Nearest-rank method.
     */
    double percentile(double p) const;

    double p95() const { return percentile(95.0); }
    double p99() const { return percentile(99.0); }

    double mean() const;
    double max() const;

    /** Fraction of samples at or below @p sla_ms. */
    double slaCompliance(double sla_ms) const;

    const std::vector<double>& samples() const { return _samples; }

  private:
    std::vector<double> _samples;
};

} // namespace dlrmopt::serve

#endif // DLRMOPT_SERVE_LATENCY_STATS_HPP
