#include "serve/sla.hpp"

#include <limits>

#include "serve/loadgen.hpp"
#include "serve/queue_sim.hpp"

namespace dlrmopt::serve
{

namespace
{

bool
meetsSla(const SlaSearchConfig& cfg, double arrival_ms)
{
    PoissonLoadGen gen(arrival_ms, cfg.seed);
    const auto res = simulateQueue(gen.arrivals(cfg.requests),
                                   cfg.serviceMs, cfg.servers);
    return res.latency.p95() <= cfg.slaMs;
}

} // namespace

double
minCompliantArrivalMs(const SlaSearchConfig& cfg)
{
    // Even an unloaded system pays the service time.
    if (cfg.serviceMs > cfg.slaMs)
        return std::numeric_limits<double>::infinity();

    // The per-server saturation arrival rate: below
    // service/servers, the queue grows without bound, so the
    // boundary must be above it.
    const double saturation =
        cfg.serviceMs / static_cast<double>(cfg.servers);

    double lo = saturation;             // non-compliant (or limit)
    double hi = saturation * 64.0;      // hopefully compliant
    for (int i = 0; i < 8 && !meetsSla(cfg, hi); ++i)
        hi *= 4.0;
    if (!meetsSla(cfg, hi))
        return std::numeric_limits<double>::infinity();

    for (int i = 0; i < cfg.iterations; ++i) {
        const double mid = 0.5 * (lo + hi);
        if (meetsSla(cfg, mid))
            hi = mid;
        else
            lo = mid;
    }
    return hi;
}

} // namespace dlrmopt::serve
