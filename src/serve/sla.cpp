#include "serve/sla.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "serve/loadgen.hpp"
#include "serve/queue_sim.hpp"

namespace dlrmopt::serve
{

void
validate(const SlaSearchConfig& cfg)
{
    // Negated comparisons so NaN inputs are rejected as well; a NaN
    // service or SLA makes every bisection probe "non-compliant" and
    // the search degenerates.
    if (!(cfg.serviceMs > 0.0) || !std::isfinite(cfg.serviceMs)) {
        throw std::invalid_argument(
            "SlaSearchConfig: serviceMs must be positive and finite");
    }
    if (!(cfg.slaMs > 0.0) || !std::isfinite(cfg.slaMs)) {
        throw std::invalid_argument(
            "SlaSearchConfig: slaMs must be positive and finite");
    }
    if (cfg.servers == 0)
        throw std::invalid_argument("SlaSearchConfig: need >= 1 server");
    if (cfg.requests == 0) {
        throw std::invalid_argument(
            "SlaSearchConfig: need >= 1 simulated request");
    }
    if (cfg.iterations <= 0) {
        throw std::invalid_argument(
            "SlaSearchConfig: need >= 1 bisection iteration");
    }
}

namespace
{

bool
meetsSla(const SlaSearchConfig& cfg, double arrival_ms)
{
    PoissonLoadGen gen(arrival_ms, cfg.seed);
    const auto res = simulateQueue(gen.arrivals(cfg.requests),
                                   cfg.serviceMs, cfg.servers);
    return res.latency.p95() <= cfg.slaMs;
}

} // namespace

double
minCompliantArrivalMs(const SlaSearchConfig& cfg)
{
    validate(cfg);

    // Even an unloaded system pays the service time.
    if (cfg.serviceMs > cfg.slaMs)
        return std::numeric_limits<double>::infinity();

    // The per-server saturation arrival rate: below
    // service/servers, the queue grows without bound, so the
    // boundary must be above it.
    const double saturation =
        cfg.serviceMs / static_cast<double>(cfg.servers);

    double lo = saturation;             // non-compliant (or limit)
    double hi = saturation * 64.0;      // hopefully compliant
    for (int i = 0; i < 8 && !meetsSla(cfg, hi); ++i)
        hi *= 4.0;
    if (!meetsSla(cfg, hi))
        return std::numeric_limits<double>::infinity();

    for (int i = 0; i < cfg.iterations; ++i) {
        const double mid = 0.5 * (lo + hi);
        if (meetsSla(cfg, mid))
            hi = mid;
        else
            lo = mid;
    }
    return hi;
}

double
minCompliantArrivalShedding(const SlaSearchConfig& cfg,
                            double max_shed_rate)
{
    validate(cfg);
    if (!(max_shed_rate >= 0.0) || max_shed_rate >= 1.0) {
        throw std::invalid_argument(
            "max_shed_rate must lie in [0, 1)");
    }
    if (cfg.serviceMs > cfg.slaMs)
        return std::numeric_limits<double>::infinity();

    const auto shedOk = [&](double arrival_ms) {
        PoissonLoadGen gen(arrival_ms, cfg.seed);
        const auto st = simulateQueueShedding(
            gen.arrivals(cfg.requests), cfg.serviceMs, cfg.servers,
            cfg.slaMs, true);
        return st.shedRate() <= max_shed_rate;
    };

    const double saturation =
        cfg.serviceMs / static_cast<double>(cfg.servers);
    double lo = saturation * 1e-3;
    double hi = saturation * 64.0;
    for (int i = 0; i < 8 && !shedOk(hi); ++i)
        hi *= 4.0;
    if (!shedOk(hi))
        return std::numeric_limits<double>::infinity();

    for (int i = 0; i < cfg.iterations; ++i) {
        const double mid = 0.5 * (lo + hi);
        if (shedOk(mid))
            hi = mid;
        else
            lo = mid;
    }
    return hi;
}

} // namespace dlrmopt::serve
