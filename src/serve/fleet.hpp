/**
 * @file
 * Multi-tenant serving fleet: weighted-fair admission, per-tenant SLA
 * isolation, and elastic adaptive capacity over real model execution.
 *
 * The single-model Router (serve/router.hpp) answers "how does one
 * deployment survive faults". The TenantFleet answers the question a
 * shared production cluster faces: several tenants — each a Tenant
 * binding of model preset, SLA class, fair-share weight and admission
 * budget (serve/tenant.hpp) — multiplexed onto the same instance
 * slots, under diurnal traffic whose aggregate peak exceeds any
 * static provisioning. Three mechanisms compose:
 *
 *  - **Weighted-fair admission.** All tenants share one BatchQueue in
 *    deficit-round-robin mode: per-tenant sub-queues, weight-
 *    proportional deficit per round, dispatched samples charged
 *    against the winner's deficit, and never a mixed-tenant group
 *    (tenants serve different models). A flooding tenant exhausts its
 *    own deficit and its own admission budget — overflow is shed at
 *    arrival and charged to it — while the other tenants' dispatch
 *    bandwidth and SLA compliance are isolated by construction.
 *
 *  - **Per-tenant SLA isolation.** Every request carries its tenant's
 *    deadline (PendingRequest::slaMs); batch formation, deadline
 *    sheds and compliance accounting all use the owning tenant's SLA
 *    and the owning tenant's service estimate.
 *
 *  - **Elastic adaptive capacity.** A CapacityController forecasts
 *    offered load over fixed virtual-time windows and resizes the Up
 *    set between minInstances and the slot count, driving the PR-4
 *    lifecycle machinery (Up -> Draining -> Down -> WarmRestart ->
 *    Up) with optional partial drains — a scale-down victim keeps a
 *    residual core group until its grace expires. In parallel, a
 *    per-tenant ServiceModelRecalibrator refits the service estimate
 *    from observed dispatch times, so admission and forecasting track
 *    the scripted ServiceTimeline truth even when it drifts
 *    mid-session.
 *
 * Execution follows the established split: the virtual clock advances
 * on arrivals and the scripted truth while every dispatch really runs
 * as one coalesced forward through the owning (instance, tenant)
 * Server's persistent workspace. A FaultSchedule can overlay the
 * chaos scenarios (instance crashes, stored-row bit flips — applied
 * to every tenant store they fit in, repaired by per-store background
 * scrubbers — and fault-injection phases), and the whole session
 * remains a pure function of (configs, seeds, schedule): per-tenant
 * accounting satisfies arrived == served + shed + failed under every
 * scenario.
 *
 * **Versioned serving and live reload.** Every tenant's model is held
 * in a core::VersionedModel; a dispatch pins the version it starts on
 * and executes entirely on that pin (the explicit-model Server path),
 * so a mid-flight swap never mixes versions inside a batch. A session
 * may script ReloadEvents: the embedded ReloadManager loads each new
 * version off the serving threads, shadow-validates it, canaries one
 * instance, rolls the rest out in stages, and commits (publishing the
 * version and retargeting the background scrubber) or rolls back /
 * fails with the old version still serving. Retiring versions are
 * reclaimed only after their last in-flight pin drains on the virtual
 * clock.
 */

#ifndef DLRMOPT_SERVE_FLEET_HPP
#define DLRMOPT_SERVE_FLEET_HPP

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/batching.hpp"
#include "core/dlrm.hpp"
#include "core/embedding_store.hpp"
#include "core/hot_tier.hpp"
#include "core/versioned.hpp"
#include "sched/topology.hpp"
#include "serve/batch_queue.hpp"
#include "serve/capacity.hpp"
#include "serve/fault_schedule.hpp"
#include "serve/reload.hpp"
#include "serve/scrub.hpp"
#include "serve/server.hpp"
#include "serve/tenant.hpp"

namespace dlrmopt::serve
{

/** Fleet-wide serving parameters (per-tenant ones live in
 *  TenantConfig). */
struct FleetConfig
{
    /** Instance slots. Static mode keeps all of them Up; elastic mode
     *  moves the Up set within [capacity.minInstances, instances]. */
    std::size_t instances = 2;

    /** Request coalescing knobs shared by every tenant's dispatches
     *  (enable it: single-request dispatches waste the fixed cost the
     *  batch-size-aware model exists to amortize). */
    BatchConfig batching;

    /** Deficit-round-robin quantum (samples per unit weight per
     *  round) of the shared queue. */
    double quantumSamples = 8.0;

    bool admission = true; //!< shed projected deadline misses

    std::size_t maxRetries = 2;
    double backoffBaseMs = 1.0;
    double backoffCapMs = 8.0;

    CapacityConfig capacity;           //!< elastic knobs
    RecalibrationConfig recalibration; //!< per-tenant refits
    ScrubConfig scrub;                 //!< per-store background scrub
    ReloadConfig reload;               //!< staged-rollout knobs

    /** Hot-tier knobs. budgetBytes > 0 gives every (instance, tenant)
     *  replica its own pinned hot tier over the tenant's shared cold
     *  store, sized from the byte budget; 0 (the default) serves
     *  straight from the cold store. */
    core::HotTierConfig hotTier;

    std::uint64_t seed = 42; //!< model-weight seed

    /** @throws std::invalid_argument on zero instances, a backoff cap
     *          below the base, a non-positive quantum, or any nested
     *          config failing its own validate(). */
    void validate() const;
};

/** One tenant's request stream for a fleet session. */
struct TenantWorkload
{
    core::Tensor dense; //!< dense features (tenant's denseDim cols)

    /** Sparse inputs; request r uses batches[r % batches.size()]. */
    std::vector<core::SparseBatch> batches;

    /** Ascending arrival timestamps (ms), e.g. from DiurnalLoadGen. */
    std::vector<double> arrivalsMs;
};

/** Outcome of one fleet session. */
struct FleetStats
{
    ServeStats total; //!< aggregate over all tenants

    std::vector<TenantStats> perTenant;

    std::size_t compliant = 0;    //!< served within the owner's SLA
    std::size_t budgetShed = 0;   //!< admission-budget sheds
    std::size_t deadlineShed = 0; //!< projected-deadline sheds
    /** Queued requests abandoned because every instance was down for
     *  good (counted in total.failed). */
    std::size_t lifecycleShed = 0;

    /// @name Elastic capacity
    /// @{
    std::size_t scaleUps = 0;   //!< instances brought (back) up
    std::size_t scaleDowns = 0; //!< drains started by the controller
    std::size_t crashes = 0;    //!< scripted chaos crashes
    std::size_t restarts = 0;   //!< completed warm restarts

    /** Integral of Up-instance count over the session (instance-ms) —
     *  the provisioning cost an elastic fleet is judged by. A static
     *  N-instance fleet scores N * makespan. */
    double instanceMsUp = 0.0;

    double peakForecastLoad = 0.0; //!< max windowed forecast seen

    /** Virtual time of every controller-initiated drain, in order —
     *  lets tests assert no scale-down landed inside a reload's
     *  canary/rollout window. */
    std::vector<double> scaleDownAtMs;
    /// @}

    /// @name Recalibration
    /// @{
    std::size_t recalibrations = 0; //!< refits across all tenants

    /** Per-tenant final estimate error vs the observation window
     *  (ServiceModelRecalibrator::meanRelativeError). */
    std::vector<double> estimateError;

    /** Per-tenant staleness flag at session end. */
    std::vector<char> estimateStale;
    /// @}

    /// @name Scrubbing (summed over per-tenant stores)
    /// @{
    std::uint64_t blocksScrubbed = 0;
    std::uint64_t scrubCorruptions = 0;
    std::uint64_t scrubRepairs = 0;
    std::uint64_t scrubSweeps = 0;
    /// @}

    /// @name Hot tier (session deltas summed over every replica tier)
    /// @{
    std::uint64_t tierHits = 0;
    std::uint64_t tierMisses = 0;
    std::uint64_t tierPromotions = 0;
    std::uint64_t tierDemotions = 0;
    std::uint64_t tierCorruptions = 0;
    std::uint64_t tierQuarantined = 0;
    std::uint64_t tierRepaired = 0;

    /** Session hit rate over every tier probe, 0 with no tiers. */
    double tierHitRate() const
    {
        const std::uint64_t n = tierHits + tierMisses;
        return n == 0 ? 0.0
                      : static_cast<double>(tierHits) /
                            static_cast<double>(n);
    }
    /// @}

    /// @name Live reload
    /// @{
    std::size_t reloadsStarted = 0;
    std::size_t reloadsCommitted = 0;
    std::size_t reloadsRolledBack = 0;
    std::size_t reloadsFailed = 0;
    std::size_t shadowedRequests = 0; //!< shadow-validation replays
    std::size_t versionSwaps = 0;     //!< instance pin swaps performed
    std::size_t versionsRetired = 0;  //!< drained versions reclaimed

    /** Per-tenant version id serving at session end. */
    std::vector<std::uint64_t> finalVersions;

    /** Audit trail of every finished reload. */
    std::vector<ReloadOutcome> reloadOutcomes;
    /// @}

    double makespanMs = 0.0;

    /** arrived == served + shed + failed, in aggregate and for every
     *  tenant. */
    bool conserved() const;

    /** One-line fleet summary. */
    std::string summary() const;
};

/**
 * Multi-tenant fleet over instance slots from Topology::partition().
 * Each slot hosts one Server (execution engine: private core pool,
 * persistent batched-forward workspace) per tenant over that tenant's
 * own EmbeddingStore; the fleet drives lifecycle, fair queueing,
 * capacity and recalibration from a single cluster-level event loop.
 */
class TenantFleet
{
  public:
    /**
     * Builds instances x tenants Servers. Embedding bytes are paid
     * once per tenant (stores are shared across that tenant's
     * replicas).
     *
     * @throws std::invalid_argument on an empty registry, a config
     *         failing validate(), more min instances than slots, or
     *         via Server/DlrmModel validation.
     */
    TenantFleet(const TenantRegistry& reg, const sched::Topology& topo,
                const FleetConfig& cfg);

    std::size_t numTenants() const { return _reg.size(); }
    std::size_t numInstances() const { return _servers.size(); }
    std::size_t coresPerInstance() const { return _coresPerInstance; }

    const TenantRegistry& registry() const { return _reg; }

    /** Tenant @p k's *boot* table storage (version 1; kept for
     *  construction-time tooling — the serving path reads
     *  currentStore()). */
    const core::EmbeddingStore& store(std::size_t k) const
    {
        return *_stores[k];
    }

    /** Tenant @p k's currently committed version's storage. */
    const core::EmbeddingStore& currentStore(std::size_t k) const
    {
        return *_versioned[k]->current()->store;
    }

    /** Tenant @p k's version holder (current + retiring versions). */
    const core::VersionedModel& versioned(std::size_t k) const
    {
        return *_versioned[k];
    }

    /** Instance @p i's hot tier for tenant @p k; null when the fleet
     *  runs without one (hotTier.budgetBytes == 0). */
    const core::HotTierCache *hotTier(std::size_t i,
                                      std::size_t k) const
    {
        return _tiers.empty() ? nullptr : _tiers[i][k].get();
    }

    /**
     * Serves one session over per-tenant request streams (one
     * workload per registered tenant, same order). An optional
     * FaultSchedule overlays chaos: instance crash/recover events,
     * stored-row bit flips, and per-instance fault-injection phases.
     * Optional ReloadEvents script staged live reloads (see the
     * header comment); committed versions persist across sessions.
     *
     * @throws std::invalid_argument when the workload count mismatches
     *         the registry, a tenant with arrivals has no batches, the
     *         schedule fails validate(numInstances()), or a reload
     *         event fails ReloadManager validation.
     */
    FleetStats serve(const std::vector<TenantWorkload>& work,
                     const core::PrefetchSpec& pf =
                         core::PrefetchSpec::paperDefault(),
                     const FaultSchedule *schedule = nullptr,
                     const std::vector<ReloadEvent>& reloads = {});

  private:
    TenantRegistry _reg;
    FleetConfig _cfg;
    std::size_t _coresPerInstance = 0;
    std::vector<std::shared_ptr<core::EmbeddingStore>> _stores;
    /** [instance][tenant] replica views / execution engines. */
    std::vector<std::vector<std::unique_ptr<core::DlrmModel>>> _models;
    std::vector<std::vector<std::unique_ptr<Server>>> _servers;
    /** [instance][tenant] replicated hot tiers over the tenant's
     *  shared cold store; empty when hotTier.budgetBytes == 0. */
    std::vector<std::vector<std::shared_ptr<core::HotTierCache>>>
        _tiers;
    /** Per-tenant version holders; boot version is 1 over _stores. */
    std::vector<std::unique_ptr<core::VersionedModel>> _versioned;
};

} // namespace dlrmopt::serve

#endif // DLRMOPT_SERVE_FLEET_HPP
