#include "serve/batch_queue.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace dlrmopt::serve
{

namespace
{

/** Deadline of a member. A first attempt must finish within the SLA
 *  of its arrival. A retry is always *admitted*, but it still gets a
 *  fresh SLA-derived deadline from its backoff-expiry (readyMs) —
 *  otherwise retries would be deadline-free and exempt from the
 *  tightest-member-deadline bound, letting one stale retry drag a
 *  whole coalesced group past every member's SLA. A request carrying
 *  its own slaMs (multi-tenant fleet) uses that instead of the
 *  session-wide offset. */
double
deadlineOf(const PendingRequest& r, double sla_ms)
{
    const double sla = r.slaMs > 0.0 ? r.slaMs : sla_ms;
    return (r.tries == 0 ? r.arrivalMs : r.readyMs) + sla;
}

} // namespace

void
BatchConfig::validate() const
{
    if (maxRequests == 0) {
        throw std::invalid_argument(
            "BatchConfig: maxRequests must be >= 1");
    }
    if (!(maxLingerMs >= 0.0) || !std::isfinite(maxLingerMs)) {
        throw std::invalid_argument(
            "BatchConfig: maxLingerMs must be finite and >= 0");
    }
}

void
WfqConfig::validate() const
{
    for (const double w : weights) {
        if (!(w > 0.0) || !std::isfinite(w)) {
            throw std::invalid_argument(
                "WfqConfig: tenant weights must be finite and > 0");
        }
    }
    if (!(quantumSamples > 0.0) || !std::isfinite(quantumSamples)) {
        throw std::invalid_argument(
            "WfqConfig: quantumSamples must be finite and > 0");
    }
}

BatchQueue::BatchQueue(const BatchConfig& cfg) : _cfg(cfg)
{
    _cfg.validate();
    _sub.resize(1);
    _deficit.assign(1, 0.0);
}

BatchQueue::BatchQueue(const BatchConfig& cfg, const WfqConfig& wfq)
    : _cfg(cfg), _wfq(wfq), _fair(!wfq.weights.empty())
{
    _cfg.validate();
    _wfq.validate();
    const std::size_t n = _fair ? _wfq.weights.size() : 1;
    _sub.resize(n);
    _deficit.assign(n, 0.0);
}

void
BatchQueue::push(const PendingRequest& r)
{
    std::size_t idx = 0;
    if (_fair) {
        if (r.tenant >= _sub.size()) {
            throw std::invalid_argument(
                "BatchQueue: tenant " + std::to_string(r.tenant) +
                " has no configured weight");
        }
        idx = r.tenant;
    }
    _sub[idx].insert(r);
    ++_count;
}

std::size_t
BatchQueue::queuedOf(std::uint32_t tenant) const
{
    if (!_fair)
        return tenant == 0 ? _count : 0;
    return tenant < _sub.size() ? _sub[tenant].size() : 0;
}

std::size_t
BatchQueue::queuedSamplesOf(std::uint32_t tenant) const
{
    std::size_t n = 0;
    if (_fair) {
        if (tenant < _sub.size()) {
            for (const auto& r : _sub[tenant])
                n += r.samples;
        }
    } else if (tenant == 0) {
        for (const auto& r : _sub[0])
            n += r.samples;
    }
    return n;
}

double
BatchQueue::headReadyMs() const
{
    double m = std::numeric_limits<double>::max();
    for (const auto& q : _sub) {
        if (!q.empty())
            m = std::min(m, q.begin()->readyMs);
    }
    return m;
}

std::size_t
BatchQueue::formGroup(SubQueue& q, double core_free_ms,
                      std::size_t cap, double sla_ms,
                      const ServiceModel& service, double straggle,
                      std::size_t max_samples,
                      std::vector<PendingRequest>& out)
{
    const PendingRequest& head = out.front();
    double dispatch = std::max(core_free_ms, head.readyMs);
    std::size_t total = head.samples;
    double min_deadline = deadlineOf(head, sla_ms);

    // A head that cannot meet its own deadline dispatches solo: the
    // caller sheds it (first try) or runs it late (retry), and no
    // follower gets dragged past its deadline with it.
    if (dispatch + service.serviceMs(total) * straggle > min_deadline)
        return total;

    // Followers must be ready within the linger window — or before
    // the core frees up anyway, which costs the head nothing.
    const double window =
        std::max(dispatch, head.readyMs + _cfg.maxLingerMs);

    auto it = q.begin();
    while (it != q.end() && out.size() < cap) {
        const PendingRequest& c = *it;
        if (c.readyMs > window)
            break; // queue is ready-ordered: nothing later fits
        const std::size_t new_total = total + c.samples;
        if (max_samples != 0 && new_total > max_samples) {
            // Out of deficit: this follower is paid for next round.
            ++it;
            continue;
        }
        const double new_dispatch = std::max(dispatch, c.readyMs);
        const double new_deadline =
            std::min(min_deadline, deadlineOf(c, sla_ms));
        if (new_dispatch + service.serviceMs(new_total) * straggle <=
            new_deadline) {
            out.push_back(c);
            dispatch = new_dispatch;
            total = new_total;
            min_deadline = new_deadline;
            it = q.erase(it);
            --_count;
        } else {
            // This member would blow a deadline; a later one with a
            // looser deadline (or fewer samples) may still fit.
            ++it;
        }
    }
    return total;
}

void
BatchQueue::nextBatch(double core_free_ms, std::size_t cap,
                      double sla_ms, const ServiceModel& service,
                      double straggle,
                      std::vector<PendingRequest>& out)
{
    nextBatchImpl(core_free_ms, cap, nullptr, sla_ms, &service, false,
                  straggle, out);
}

void
BatchQueue::nextBatch(double core_free_ms, std::size_t cap,
                      double sla_ms,
                      const std::vector<ServiceModel>& service_by_tenant,
                      double straggle,
                      std::vector<PendingRequest>& out)
{
    if (service_by_tenant.size() < _sub.size()) {
        throw std::invalid_argument(
            "BatchQueue: need one service model per tenant");
    }
    nextBatchImpl(core_free_ms, cap, nullptr, sla_ms,
                  service_by_tenant.data(), true, straggle, out);
}

void
BatchQueue::nextBatch(double core_free_ms,
                      const std::vector<std::size_t>& cap_by_tenant,
                      double sla_ms,
                      const std::vector<ServiceModel>& service_by_tenant,
                      double straggle,
                      std::vector<PendingRequest>& out)
{
    if (cap_by_tenant.size() < _sub.size()) {
        throw std::invalid_argument(
            "BatchQueue: need one coalescing cap per tenant");
    }
    for (const std::size_t c : cap_by_tenant) {
        if (c == 0) {
            throw std::invalid_argument(
                "BatchQueue: per-tenant caps must be >= 1");
        }
    }
    if (service_by_tenant.size() < _sub.size()) {
        throw std::invalid_argument(
            "BatchQueue: need one service model per tenant");
    }
    nextBatchImpl(core_free_ms, 1, cap_by_tenant.data(), sla_ms,
                  service_by_tenant.data(), true, straggle, out);
}

void
BatchQueue::nextBatchImpl(double core_free_ms, std::size_t cap,
                          const std::size_t *cap_by_tenant,
                          double sla_ms, const ServiceModel *service,
                          bool per_tenant, double straggle,
                          std::vector<PendingRequest>& out)
{
    out.clear();
    if (_count == 0)
        return;

    std::size_t t = 0;
    std::size_t budget = 0; // 0 = unbounded (single-tenant mode)
    if (_fair) {
        // Deficit round robin: every nonempty tenant accrues
        // weight-proportional deficit per round; the first tenant
        // (in cyclic order from the cursor) whose deficit covers its
        // head wins the dispatch. An emptied tenant forfeits its
        // deficit — credit never accumulates while idle, the classic
        // DRR rule that keeps latent bursts from starving the rest.
        for (;;) {
            const std::size_t i = _cursor;
            _cursor = (_cursor + 1) % _sub.size();
            if (_sub[i].empty()) {
                _deficit[i] = 0.0;
                continue;
            }
            _deficit[i] += _wfq.quantumSamples * _wfq.weights[i];
            if (_deficit[i] >=
                static_cast<double>(_sub[i].begin()->samples)) {
                t = i;
                break;
            }
        }
        budget = static_cast<std::size_t>(_deficit[t]);
    }

    SubQueue& q = _sub[t];
    out.push_back(*q.begin());
    q.erase(q.begin());
    --_count;

    const ServiceModel& model = per_tenant ? service[t] : *service;
    const std::size_t eff_cap = cap_by_tenant ? cap_by_tenant[t] : cap;
    const std::size_t total = formGroup(q, core_free_ms, eff_cap,
                                        sla_ms, model, straggle,
                                        budget, out);
    if (_fair) {
        _deficit[t] -= static_cast<double>(total);
        if (q.empty())
            _deficit[t] = 0.0;
        else
            _deficit[t] = std::max(_deficit[t], 0.0);
    }
}

} // namespace dlrmopt::serve
