#include "serve/batch_queue.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dlrmopt::serve
{

namespace
{

/** Deadline of a member. A first attempt must finish within the SLA
 *  of its arrival. A retry is always *admitted*, but it still gets a
 *  fresh SLA-derived deadline from its backoff-expiry (readyMs) —
 *  otherwise retries would be deadline-free and exempt from the
 *  tightest-member-deadline bound, letting one stale retry drag a
 *  whole coalesced group past every member's SLA. */
double
deadlineOf(const PendingRequest& r, double sla_ms)
{
    return (r.tries == 0 ? r.arrivalMs : r.readyMs) + sla_ms;
}

} // namespace

void
BatchConfig::validate() const
{
    if (maxRequests == 0) {
        throw std::invalid_argument(
            "BatchConfig: maxRequests must be >= 1");
    }
    if (!(maxLingerMs >= 0.0) || !std::isfinite(maxLingerMs)) {
        throw std::invalid_argument(
            "BatchConfig: maxLingerMs must be finite and >= 0");
    }
}

BatchQueue::BatchQueue(const BatchConfig& cfg) : _cfg(cfg)
{
    _cfg.validate();
}

void
BatchQueue::push(const PendingRequest& r)
{
    _pending.insert(r);
}

void
BatchQueue::nextBatch(double core_free_ms, std::size_t cap,
                      double sla_ms, const ServiceModel& service,
                      double straggle,
                      std::vector<PendingRequest>& out)
{
    out.clear();
    if (_pending.empty())
        return;

    const PendingRequest head = *_pending.begin();
    _pending.erase(_pending.begin());
    out.push_back(head);

    double dispatch = std::max(core_free_ms, head.readyMs);
    std::size_t total = head.samples;
    double min_deadline = deadlineOf(head, sla_ms);

    // A head that cannot meet its own deadline dispatches solo: the
    // caller sheds it (first try) or runs it late (retry), and no
    // follower gets dragged past its deadline with it.
    if (dispatch + service.serviceMs(total) * straggle > min_deadline)
        return;

    // Followers must be ready within the linger window — or before
    // the core frees up anyway, which costs the head nothing.
    const double window =
        std::max(dispatch, head.readyMs + _cfg.maxLingerMs);

    auto it = _pending.begin();
    while (it != _pending.end() && out.size() < cap) {
        const PendingRequest& c = *it;
        if (c.readyMs > window)
            break; // queue is ready-ordered: nothing later fits
        const double new_dispatch = std::max(dispatch, c.readyMs);
        const std::size_t new_total = total + c.samples;
        const double new_deadline =
            std::min(min_deadline, deadlineOf(c, sla_ms));
        if (new_dispatch + service.serviceMs(new_total) * straggle <=
            new_deadline) {
            out.push_back(c);
            dispatch = new_dispatch;
            total = new_total;
            min_deadline = new_deadline;
            it = _pending.erase(it);
        } else {
            // This member would blow a deadline; a later one with a
            // looser deadline (or fewer samples) may still fit.
            ++it;
        }
    }
}

} // namespace dlrmopt::serve
