#include "serve/capacity.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dlrmopt::serve
{

void
CapacityConfig::validate() const
{
    if (minInstances == 0) {
        throw std::invalid_argument(
            "CapacityConfig: minInstances must be >= 1");
    }
    if (!(windowMs > 0.0) || !std::isfinite(windowMs)) {
        throw std::invalid_argument(
            "CapacityConfig: windowMs must be positive and finite");
    }
    if (!(forecastDecay >= 0.0) || !(forecastDecay < 1.0)) {
        throw std::invalid_argument(
            "CapacityConfig: forecastDecay must be in [0, 1)");
    }
    if (!(targetUtilization > 0.0) || !(targetUtilization <= 1.0)) {
        throw std::invalid_argument(
            "CapacityConfig: targetUtilization must be in (0, 1]");
    }
    if (downLag == 0) {
        throw std::invalid_argument(
            "CapacityConfig: downLag must be >= 1");
    }
    if (!(drainGraceMs >= 0.0) || !std::isfinite(drainGraceMs)) {
        throw std::invalid_argument(
            "CapacityConfig: drainGraceMs must be >= 0 and finite");
    }
    if (!(probationMs >= 0.0) || !std::isfinite(probationMs)) {
        throw std::invalid_argument(
            "CapacityConfig: probationMs must be >= 0 and finite");
    }
}

CapacityController::CapacityController(const CapacityConfig& cfg,
                                       std::size_t max_instances,
                                       std::size_t cores_per_instance)
    : _cfg(cfg), _maxInstances(max_instances),
      _coresPerInstance(cores_per_instance), _windowEnd(cfg.windowMs),
      _desired(cfg.minInstances)
{
    _cfg.validate();
    if (max_instances == 0 || cores_per_instance == 0) {
        throw std::invalid_argument(
            "CapacityController: need instances and cores >= 1");
    }
    if (_cfg.minInstances > max_instances) {
        throw std::invalid_argument(
            "CapacityController: minInstances exceeds maxInstances");
    }
    // Start at the floor: scale-ups are immediate at the first closed
    // window, so the worst case is one window of under-capacity —
    // while starting high would forfeit the elastic savings that
    // justify the controller in the first place.
}

void
CapacityController::observeArrival(double now_ms,
                                   double service_cost_ms)
{
    closeWindowsUpTo(now_ms);
    _windowLoadMs += service_cost_ms;
}

std::size_t
CapacityController::desiredInstances(double now_ms)
{
    closeWindowsUpTo(now_ms);
    return _desired;
}

void
CapacityController::closeWindowsUpTo(double now_ms)
{
    while (now_ms >= _windowEnd) {
        const double rate = _windowLoadMs / _cfg.windowMs;
        _forecast = _windowsClosed == 0
                        ? rate
                        : _cfg.forecastDecay * _forecast +
                              (1.0 - _cfg.forecastDecay) * rate;
        _windowLoadMs = 0.0;
        ++_windowsClosed;
        _windowEnd += _cfg.windowMs;

        // Instances needed so the forecast fits within the target
        // utilization of their cores.
        const double per_instance =
            static_cast<double>(_coresPerInstance) *
            _cfg.targetUtilization;
        std::size_t need = static_cast<std::size_t>(
            std::ceil(_forecast / per_instance));
        need = std::clamp(need, _cfg.minInstances, _maxInstances);

        if (need > _desired) {
            // Under-capacity sheds traffic: react immediately.
            _desired = need;
            _lowStreak = 0;
        } else if (need < _desired) {
            if (_holdScaleDowns) {
                // A canary/rollout is in flight: freeze the streak so
                // a lull spanning the rollout cannot bank hysteresis
                // credit and drain an instance the moment it commits.
                _lowStreak = 0;
            } else if (++_lowStreak >= _cfg.downLag) {
                // Over-capacity only wastes: require a sustained lull.
                _desired = need;
                _lowStreak = 0;
            }
        } else {
            _lowStreak = 0;
        }
    }
}

void
RecalibrationConfig::validate() const
{
    if (!(intervalMs > 0.0) || !std::isfinite(intervalMs)) {
        throw std::invalid_argument(
            "RecalibrationConfig: intervalMs must be positive");
    }
    if (window == 0) {
        throw std::invalid_argument(
            "RecalibrationConfig: window must be >= 1");
    }
    if (minObservations == 0 || minObservations > window) {
        throw std::invalid_argument(
            "RecalibrationConfig: need 1 <= minObservations <= "
            "window");
    }
    if (!(staleThreshold > 0.0) || !std::isfinite(staleThreshold)) {
        throw std::invalid_argument(
            "RecalibrationConfig: staleThreshold must be positive");
    }
}

ServiceModelRecalibrator::ServiceModelRecalibrator(
    const ServiceModel& initial, const RecalibrationConfig& cfg)
    : _cfg(cfg), _current(initial), _lastFitMs(0.0)
{
    _cfg.validate();
    _current.validate();
    _samples.resize(_cfg.window, 0);
    _measured.resize(_cfg.window, 0.0);
}

void
ServiceModelRecalibrator::observe(std::size_t samples,
                                  double measured_ms)
{
    if (!_cfg.enabled)
        return;
    _samples[_head] = samples;
    _measured[_head] = measured_ms;
    _head = (_head + 1) % _cfg.window;
    _filled = std::min(_filled + 1, _cfg.window);
    ++_observations;
}

bool
ServiceModelRecalibrator::maybeRecalibrate(double now_ms)
{
    if (!_cfg.enabled || _filled < _cfg.minObservations ||
        now_ms - _lastFitMs < _cfg.intervalMs)
        return false;
    _lastFitMs = now_ms;

    _fitSamples.assign(_samples.begin(),
                       _samples.begin() +
                           static_cast<std::ptrdiff_t>(_filled));
    _fitMeasured.assign(_measured.begin(),
                        _measured.begin() +
                            static_cast<std::ptrdiff_t>(_filled));
    _current = ServiceModel::fit(_fitSamples, _fitMeasured);
    ++_recalibrations;
    return true;
}

double
ServiceModelRecalibrator::meanRelativeError() const
{
    if (_filled == 0)
        return 0.0;
    double sum = 0.0;
    std::size_t n = 0;
    for (std::size_t i = 0; i < _filled; ++i) {
        if (!(_measured[i] > 0.0))
            continue;
        const double est = _current.serviceMs(_samples[i]);
        sum += std::abs(est - _measured[i]) / _measured[i];
        ++n;
    }
    return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

bool
ServiceModelRecalibrator::stale() const
{
    return _filled >= _cfg.minObservations &&
           meanRelativeError() > _cfg.staleThreshold;
}

} // namespace dlrmopt::serve
