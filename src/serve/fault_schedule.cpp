#include "serve/fault_schedule.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace dlrmopt::serve
{

namespace
{

void
checkTimestamp(double t, const char *what)
{
    if (!(t >= 0.0) || !std::isfinite(t)) {
        throw std::invalid_argument(
            std::string("FaultSchedule: ") + what +
            " timestamps must be finite and >= 0");
    }
}

} // namespace

FaultSchedule::FaultSchedule(std::vector<FaultPhase> phases,
                             std::vector<LifecycleEvent> lifecycle,
                             std::vector<BitFlipEvent> bitFlips)
    : _lifecycle(std::move(lifecycle)), _bitFlips(std::move(bitFlips))
{
    _phases.reserve(phases.size());
    for (const auto& p : phases) {
        checkTimestamp(p.startMs, "phase");
        if (p.instance < -1) {
            throw std::invalid_argument(
                "FaultSchedule: phase instance must be -1 (all) or an "
                "instance id");
        }
        // FaultInjector's ctor runs FaultConfig::validate().
        _phases.push_back(Phase{p.startMs, p.instance,
                                std::make_unique<FaultInjector>(p.config)});
    }
    for (const auto& e : _lifecycle)
        checkTimestamp(e.atMs, "lifecycle");
    for (const auto& e : _bitFlips)
        checkTimestamp(e.atMs, "bit-flip");

    std::stable_sort(_phases.begin(), _phases.end(),
                     [](const Phase& a, const Phase& b) {
                         return a.startMs < b.startMs;
                     });
    std::stable_sort(_lifecycle.begin(), _lifecycle.end(),
                     [](const LifecycleEvent& a, const LifecycleEvent& b) {
                         return a.atMs < b.atMs;
                     });
    std::stable_sort(_bitFlips.begin(), _bitFlips.end(),
                     [](const BitFlipEvent& a, const BitFlipEvent& b) {
                         return a.atMs < b.atMs;
                     });
}

void
FaultSchedule::validate(std::size_t instances) const
{
    for (const auto& p : _phases) {
        if (p.instance >= 0 &&
            static_cast<std::size_t>(p.instance) >= instances) {
            throw std::invalid_argument(
                "FaultSchedule: phase targets instance " +
                std::to_string(p.instance) + " of a " +
                std::to_string(instances) + "-instance cluster");
        }
    }
    // Each instance's lifecycle must alternate Crash, Recover, Crash,
    // ... — a doubly-crashed or spontaneously-recovering script is a
    // bug in the scenario, not a survivable fault.
    std::vector<char> down(instances, 0);
    for (const auto& e : _lifecycle) {
        if (e.instance >= instances) {
            throw std::invalid_argument(
                "FaultSchedule: lifecycle event targets instance " +
                std::to_string(e.instance) + " of a " +
                std::to_string(instances) + "-instance cluster");
        }
        if (e.kind == LifecycleEvent::Kind::Crash) {
            if (down[e.instance]) {
                throw std::invalid_argument(
                    "FaultSchedule: instance " +
                    std::to_string(e.instance) +
                    " crashes twice without recovering");
            }
            down[e.instance] = 1;
        } else {
            if (!down[e.instance]) {
                throw std::invalid_argument(
                    "FaultSchedule: instance " +
                    std::to_string(e.instance) +
                    " recovers without having crashed");
            }
            down[e.instance] = 0;
        }
    }
}

const FaultInjector *
FaultSchedule::injectorAt(double now_ms, std::size_t instance) const
{
    const Phase *best = nullptr;
    for (const auto& p : _phases) {
        if (p.startMs > now_ms)
            break; // ascending startMs
        if (p.instance >= 0 &&
            static_cast<std::size_t>(p.instance) != instance)
            continue;
        // Latest phase wins; an instance-specific phase beats a
        // global one starting at the same time.
        if (!best || p.startMs > best->startMs ||
            (p.startMs == best->startMs &&
             (best->instance < 0 || p.instance >= 0)))
            best = &p;
    }
    return best ? best->injector.get() : nullptr;
}

bool
FaultSchedule::corruptsStore() const
{
    if (!_bitFlips.empty())
        return true;
    for (const auto& p : _phases)
        if (p.injector->config().bitFlipRate > 0.0)
            return true;
    return false;
}

std::uint64_t
FaultSchedule::injectedTaskFaults() const
{
    std::uint64_t n = 0;
    for (const auto& p : _phases) {
        n += p.injector->injectedExceptions() +
             p.injector->injectedAllocFailures() +
             p.injector->injectedCorruptions() +
             p.injector->injectedBitFlips();
    }
    return n;
}

const std::vector<std::string>&
FaultSchedule::scenarioNames()
{
    static const std::vector<std::string> names = {
        "crash-storm", "rolling-corruption", "flapping-straggler"};
    return names;
}

FaultSchedule
FaultSchedule::chaosScenario(const std::string& name,
                             std::size_t instances, double session_ms,
                             std::uint64_t seed)
{
    if (instances < 2) {
        throw std::invalid_argument(
            "FaultSchedule::chaosScenario: chaos needs >= 2 instances "
            "(something must survive)");
    }
    if (!(session_ms > 0.0) || !std::isfinite(session_ms)) {
        throw std::invalid_argument(
            "FaultSchedule::chaosScenario: session_ms must be positive");
    }

    std::vector<FaultPhase> phases;
    std::vector<LifecycleEvent> lifecycle;
    std::vector<BitFlipEvent> flips;

    if (name == "crash-storm") {
        // A staggered wave of whole-instance crashes through the first
        // two thirds of the session; outages are serialized so the
        // survivors always form a quorum.
        const std::size_t waves = std::min<std::size_t>(instances, 4);
        for (std::size_t i = 0; i < waves; ++i) {
            const double crash =
                session_ms * (0.10 + 0.15 * static_cast<double>(i));
            const double recover = crash + session_ms * 0.12;
            lifecycle.push_back(
                {crash, i % instances, LifecycleEvent::Kind::Crash});
            lifecycle.push_back(
                {recover, i % instances, LifecycleEvent::Kind::Recover});
        }
    } else if (name == "rolling-corruption") {
        // One scripted early upset plus a mid-session regime where
        // every attempt may silently flip a stored bit; a clean phase
        // closes the corruption window.
        flips.push_back({session_ms * 0.08, 0, 3, 30});
        FaultConfig corrupting;
        corrupting.seed = seed + 11;
        corrupting.bitFlipRate = 0.05;
        phases.push_back({session_ms * 0.30, -1, corrupting});
        FaultConfig clean;
        clean.seed = seed + 12;
        phases.push_back({session_ms * 0.60, -1, clean});
    } else if (name == "flapping-straggler") {
        // Instance 0 flaps: every other eighth of the session it
        // turns into a throwing 8x straggler, then recovers. The flap
        // period is what separates breakers (which re-probe) from a
        // static blacklist.
        for (int k = 0; k < 8; ++k) {
            FaultConfig c;
            c.seed = seed + 20 + static_cast<std::uint64_t>(k);
            if (k % 2 == 0) {
                c.taskExceptionRate = 0.6;
                c.stragglerCore = 0;
                c.stragglerFactor = 8.0;
            }
            phases.push_back(
                {session_ms * (static_cast<double>(k) / 8.0), 0, c});
        }
    } else {
        throw std::invalid_argument(
            "FaultSchedule::chaosScenario: unknown scenario '" + name +
            "' (expected crash-storm, rolling-corruption, or "
            "flapping-straggler)");
    }

    return FaultSchedule(std::move(phases), std::move(lifecycle),
                         std::move(flips));
}

} // namespace dlrmopt::serve
