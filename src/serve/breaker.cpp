#include "serve/breaker.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

namespace dlrmopt::serve
{

void
BreakerConfig::validate() const
{
    if (window == 0 || minSamples == 0 || minSamples > window) {
        throw std::invalid_argument(
            "BreakerConfig: need 0 < minSamples <= window, got " +
            std::to_string(minSamples) + " / " + std::to_string(window));
    }
    if (!(failureThreshold > 0.0) || failureThreshold > 1.0) {
        throw std::invalid_argument(
            "BreakerConfig: failureThreshold must lie in (0, 1], got " +
            std::to_string(failureThreshold));
    }
    if (!(cooldownMs >= 0.0) || !std::isfinite(cooldownMs)) {
        throw std::invalid_argument(
            "BreakerConfig: cooldownMs must be finite and >= 0");
    }
}

CircuitBreaker::CircuitBreaker(const BreakerConfig& cfg) : _cfg(cfg)
{
    cfg.validate();
    _outcomes.assign(cfg.window, 0);
}

CircuitBreaker::State
CircuitBreaker::state(double now_ms) const
{
    if (_state == State::Open && now_ms >= _openedAtMs + _cfg.cooldownMs)
        return State::HalfOpen;
    return _state;
}

bool
CircuitBreaker::admits(double now_ms) const
{
    switch (state(now_ms)) {
      case State::Closed:
        return true;
      case State::HalfOpen:
        return !_probeInFlight;
      case State::Open:
      default:
        return false;
    }
}

void
CircuitBreaker::beginProbe(double now_ms)
{
    if (state(now_ms) == State::HalfOpen) {
        _state = State::HalfOpen;
        _probeInFlight = true;
    }
}

double
CircuitBreaker::failureRate() const
{
    if (_count == 0)
        return 0.0;
    std::size_t failures = 0;
    for (std::size_t i = 0; i < _count; ++i)
        failures += static_cast<std::size_t>(_outcomes[i]);
    return static_cast<double>(failures) / static_cast<double>(_count);
}

bool
CircuitBreaker::record(bool ok, double end_ms)
{
    if (_state == State::HalfOpen) {
        // Probe verdict: one attempt decides re-admission.
        _probeInFlight = false;
        if (ok) {
            reset();
            return false;
        }
        _state = State::Open;
        _openedAtMs = end_ms;
        _lastTripMs = end_ms;
        ++_trips;
        return true;
    }

    _outcomes[_head] = ok ? 0 : 1;
    _head = (_head + 1) % _cfg.window;
    if (_count < _cfg.window)
        ++_count;

    if (_state == State::Closed && _count >= _cfg.minSamples &&
        failureRate() >= _cfg.failureThreshold) {
        _state = State::Open;
        _openedAtMs = end_ms;
        _lastTripMs = end_ms;
        ++_trips;
        return true;
    }
    return false;
}

void
CircuitBreaker::reset()
{
    _outcomes.assign(_cfg.window, 0);
    _head = 0;
    _count = 0;
    _state = State::Closed;
    _lastTripMs = -1.0;
    _probeInFlight = false;
}

} // namespace dlrmopt::serve
