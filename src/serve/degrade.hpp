/**
 * @file
 * Graceful-degradation policy for the serving layer.
 *
 * Tracks a sliding-window p95 over served-request latencies and walks
 * a ladder of degradation tiers when the tail approaches the SLA.
 * Precision drops before work does: quantized tiers serve *every*
 * admitted sample at reduced precision (bounded accuracy loss) before
 * any tier starts shrinking batches or shedding requests outright:
 *
 *   tier 0  fp32, full batch, prefetching on, MP-HT stage overlap
 *   tier 1  bf16 embedding bags (half the bag bandwidth; MLPs fp32)
 *   tier 2  int8 embedding bags + u8·s8 MLP engine
 *   tier 3  + batch shrunk to half (sheds work per request)
 *   tier 4  + software-prefetch autotuning disabled (fixed kernel, no
 *             tuning overhead or mistuned-prefetch cache pollution)
 *   tier 5  + Sequential execution scheme (no cross-thread stage
 *             handoff; the most predictable path)
 *
 * Escalation happens when the window p95 exceeds the high-water
 * fraction of the SLA; de-escalation when it stays below the
 * low-water fraction for a full cooldown window (hysteresis, so the
 * policy cannot flap each sample).
 */

#ifndef DLRMOPT_SERVE_DEGRADE_HPP
#define DLRMOPT_SERVE_DEGRADE_HPP

#include <cstddef>
#include <vector>

#include "core/quant.hpp"
#include "core/scheme.hpp"

namespace dlrmopt::serve
{

/**
 * Fixed-capacity sliding window answering p95 queries over the most
 * recent samples. O(window) per query via nth_element on a scratch
 * copy — windows are small (tens of samples), so this beats
 * maintaining ordered structures.
 */
class WindowedP95
{
  public:
    explicit WindowedP95(std::size_t window = 64);

    void add(double latency_ms);

    std::size_t count() const { return _buf.size(); }
    bool full() const { return _buf.size() == _window; }

    /** p95 (nearest-rank) of the window; 0 when empty. */
    double p95() const;

  private:
    std::size_t _window;
    std::size_t _next = 0; //!< ring cursor
    std::vector<double> _buf;
};

/** What a degradation tier changes about request execution. */
struct DegradeState
{
    int tier = 0;
    double batchFraction = 1.0; //!< fraction of samples actually run
    bool prefetchEnabled = true;
    core::Scheme scheme = core::Scheme::MpHt;

    /**
     * Inference precision the tier executes at. Quantized tiers run
     * the fused-dequant bags over the model's attached quantized
     * store (graceful fp32 fallback when none is attached) and, for
     * Int8, the u8·s8 packed MLP engine.
     */
    core::EmbDtype dtype = core::EmbDtype::Fp32;

    /**
     * Virtual-clock service-time multiplier relative to tier 0, used
     * by the deterministic admission/latency accounting when pricing
     * runs off the single base ServiceModel. All-in: it folds the
     * precision speedup *and* the batch/knob claw-backs together.
     */
    double serviceFactor = 1.0;

    /**
     * The non-precision residual of serviceFactor (batch shrink,
     * prefetch, scheme). serviceFactor == knobFactor * the dtype
     * speedup, so pricing that swaps in a measured per-dtype
     * ServiceModel (ServerConfig::dtypeServiceEnabled) multiplies by
     * knobFactor alone and never double-counts the precision win.
     */
    double knobFactor = 1.0;
};

/** Degradation thresholds. */
struct DegradeConfig
{
    bool enabled = false;
    std::size_t window = 64;    //!< sliding-window size (samples)
    double highFraction = 0.9;  //!< escalate when p95 > high * SLA
    double lowFraction = 0.5;   //!< de-escalate when p95 < low * SLA
    std::size_t cooldown = 64;  //!< min samples between tier changes
};

/**
 * Sliding-window-driven tier controller. Feed it each served
 * request's latency; read state() before executing the next request.
 */
class DegradationPolicy
{
  public:
    DegradationPolicy(const DegradeConfig& cfg, double sla_ms);

    /** Records a served-request latency and updates the tier. */
    void observe(double latency_ms);

    int tier() const { return _tier; }

    /** Execution knobs for the current tier. */
    DegradeState state() const { return stateForTier(_tier); }

    /** Knobs for an explicit tier in [0, maxTier()]. */
    static DegradeState stateForTier(int tier);

    static int maxTier() { return 5; }

    std::size_t escalations() const { return _escalations; }

  private:
    DegradeConfig _cfg;
    double _slaMs;
    WindowedP95 _win;
    int _tier = 0;
    std::size_t _sinceChange = 0;
    std::size_t _calmStreak = 0;
    std::size_t _escalations = 0;
};

} // namespace dlrmopt::serve

#endif // DLRMOPT_SERVE_DEGRADE_HPP
