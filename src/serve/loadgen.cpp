#include "serve/loadgen.hpp"

#include <cmath>
#include <stdexcept>

#include "core/types.hpp"

namespace dlrmopt::serve
{

PoissonLoadGen::PoissonLoadGen(double mean_interarrival_ms,
                               std::uint64_t seed)
    : _meanMs(mean_interarrival_ms), _seed(seed)
{
    // Negated comparison so NaN (for which every comparison is false)
    // is rejected too, not just zero and negative values.
    if (!(mean_interarrival_ms > 0.0) ||
        !std::isfinite(mean_interarrival_ms)) {
        throw std::invalid_argument(
            "PoissonLoadGen: mean inter-arrival must be a positive "
            "finite number of milliseconds");
    }
}

std::vector<double>
PoissonLoadGen::arrivals(std::size_t n) const
{
    std::vector<double> out;
    out.reserve(n);
    double t = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        // Inverse-CDF exponential draw; clamp u away from 0 so
        // -log(u) stays finite.
        const double u = std::max(
            toUnitInterval(mix64(_seed ^ (i * 0x9e3779b97f4a7c15ull))),
            1e-12);
        t += -std::log(u) * _meanMs;
        out.push_back(t);
    }
    return out;
}

} // namespace dlrmopt::serve
