#include "serve/loadgen.hpp"

#include <cmath>
#include <stdexcept>

#include "core/types.hpp"

namespace dlrmopt::serve
{

PoissonLoadGen::PoissonLoadGen(double mean_interarrival_ms,
                               std::uint64_t seed)
    : _meanMs(mean_interarrival_ms), _seed(seed)
{
    // Negated comparison so NaN (for which every comparison is false)
    // is rejected too, not just zero and negative values.
    if (!(mean_interarrival_ms > 0.0) ||
        !std::isfinite(mean_interarrival_ms)) {
        throw std::invalid_argument(
            "PoissonLoadGen: mean inter-arrival must be a positive "
            "finite number of milliseconds");
    }
}

std::vector<double>
PoissonLoadGen::arrivals(std::size_t n) const
{
    std::vector<double> out;
    out.reserve(n);
    double t = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        // Inverse-CDF exponential draw; clamp u away from 0 so
        // -log(u) stays finite.
        const double u = std::max(
            toUnitInterval(mix64(_seed ^ (i * 0x9e3779b97f4a7c15ull))),
            1e-12);
        t += -std::log(u) * _meanMs;
        out.push_back(t);
    }
    return out;
}

DiurnalLoadGen::DiurnalLoadGen(double mean_interarrival_ms,
                               double amplitude, double period_ms,
                               double phase, std::uint64_t seed)
    : _baseRate(1.0 / mean_interarrival_ms), _amplitude(amplitude),
      _periodMs(period_ms), _phase(phase), _seed(seed)
{
    if (!(mean_interarrival_ms > 0.0) ||
        !std::isfinite(mean_interarrival_ms)) {
        throw std::invalid_argument(
            "DiurnalLoadGen: mean inter-arrival must be a positive "
            "finite number of milliseconds");
    }
    if (!(amplitude >= 0.0) || !(amplitude < 1.0)) {
        throw std::invalid_argument(
            "DiurnalLoadGen: amplitude must lie in [0, 1)");
    }
    if (!(period_ms > 0.0) || !std::isfinite(period_ms)) {
        throw std::invalid_argument(
            "DiurnalLoadGen: period must be positive and finite");
    }
    if (!std::isfinite(phase)) {
        throw std::invalid_argument(
            "DiurnalLoadGen: phase must be finite");
    }
}

double
DiurnalLoadGen::rateAt(double t_ms) const
{
    constexpr double two_pi = 6.283185307179586476925286766559;
    return _baseRate *
           (1.0 + _amplitude *
                      std::sin(two_pi * (t_ms / _periodMs + _phase)));
}

std::vector<double>
DiurnalLoadGen::arrivals(std::size_t n) const
{
    // Thinning: homogeneous candidates at the peak rate, each
    // accepted with probability rate(t)/peakRate. Two independent
    // counter-based draws per candidate keep the stream a pure
    // function of (params, seed).
    std::vector<double> out;
    out.reserve(n);
    const double peak = _baseRate * (1.0 + _amplitude);
    double t = 0.0;
    std::uint64_t i = 0;
    while (out.size() < n) {
        const double u1 = std::max(
            toUnitInterval(
                mix64(_seed ^ (i * 0x9e3779b97f4a7c15ull + 1))),
            1e-12);
        t += -std::log(u1) / peak;
        const double u2 = toUnitInterval(
            mix64(_seed ^ (i * 0x9e3779b97f4a7c15ull + 2)));
        ++i;
        if (u2 * peak <= rateAt(t))
            out.push_back(t);
    }
    return out;
}

std::vector<double>
DiurnalLoadGen::arrivalsUntil(double horizon_ms) const
{
    std::vector<double> out;
    const double peak = _baseRate * (1.0 + _amplitude);
    double t = 0.0;
    std::uint64_t i = 0;
    for (;;) {
        const double u1 = std::max(
            toUnitInterval(
                mix64(_seed ^ (i * 0x9e3779b97f4a7c15ull + 1))),
            1e-12);
        t += -std::log(u1) / peak;
        if (t >= horizon_ms)
            break;
        const double u2 = toUnitInterval(
            mix64(_seed ^ (i * 0x9e3779b97f4a7c15ull + 2)));
        ++i;
        if (u2 * peak <= rateAt(t))
            out.push_back(t);
    }
    return out;
}

} // namespace dlrmopt::serve
