#include "serve/tenant.hpp"

#include <cmath>
#include <stdexcept>

namespace dlrmopt::serve
{

void
TenantConfig::validate() const
{
    if (name.empty()) {
        throw std::invalid_argument(
            "TenantConfig: tenant needs a name");
    }
    if (!(weight > 0.0) || !std::isfinite(weight)) {
        throw std::invalid_argument(
            "TenantConfig: weight must be positive and finite");
    }
    if (!(slaMs >= 0.0) || !std::isfinite(slaMs)) {
        throw std::invalid_argument(
            "TenantConfig: slaMs must be >= 0 and finite (0 = model "
            "class default)");
    }
    service.validate();
    if (model.tables == 0 || model.rows == 0 || model.dim == 0) {
        throw std::invalid_argument(
            "TenantConfig: model must describe at least one table "
            "with rows and dim");
    }
}

std::size_t
TenantRegistry::add(TenantConfig cfg)
{
    cfg.validate();
    for (const TenantConfig& t : _tenants) {
        if (t.name == cfg.name) {
            throw std::invalid_argument(
                "TenantRegistry: duplicate tenant name '" + cfg.name +
                "'");
        }
    }
    _tenants.push_back(std::move(cfg));
    return _tenants.size() - 1;
}

std::size_t
TenantRegistry::idOf(const std::string& name) const
{
    for (std::size_t i = 0; i < _tenants.size(); ++i) {
        if (_tenants[i].name == name)
            return i;
    }
    throw std::out_of_range("TenantRegistry: unknown tenant '" + name +
                            "'");
}

std::vector<double>
TenantRegistry::weights() const
{
    std::vector<double> w;
    w.reserve(_tenants.size());
    for (const TenantConfig& t : _tenants)
        w.push_back(t.weight);
    return w;
}

} // namespace dlrmopt::serve
