/**
 * @file
 * Zero-downtime versioned live reload: staged canary rollout with
 * shadow validation and automatic rollback.
 *
 * A retrained model version arrives either as an in-memory build (a
 * fresh weight seed) or as a crash-consistent snapshot file
 * (core::ModelSnapshot). The ReloadManager moves a tenant's fleet
 * from its current version to the new one without dropping a request
 * and without ever mixing versions inside a batch:
 *
 *   Loading            load/build off the serving threads (the
 *                      virtual clock charges loadMs; dispatches keep
 *                      flowing on the old version). IoError, a
 *                      config mismatch, or a scripted bad_alloc ends
 *                      the reload as Failed — the old version never
 *                      stopped serving.
 *   shadow validation  at load-ready time the new version must pass:
 *                      clean block checksums, N replayed requests
 *                      whose predictions stay finite in [0, 1] and
 *                      drift from the old version's by no more than
 *                      the dtype-aware budget.
 *   Canary             exactly one Up instance is pinned to the new
 *                      version for canaryWindowMs while the manager
 *                      compares its served p95 against the rest of
 *                      the fleet's.
 *   RollingOut         the remaining instances swap in batches of
 *                      rolloutConcurrency, stageHoldMs apart, with an
 *                      integrity re-check between stages.
 *   Committed          the version is published to the tenant's
 *                      VersionedModel (the old one retires when its
 *                      in-flight pins drain) and the background
 *                      scrubber is retargeted at the new store.
 *   RolledBack         any canary/rollout trigger (corrupt block,
 *                      p95 regression) restores every pin to the old
 *                      version.
 *
 * The manager is driven from the fleet's single-threaded virtual-
 * clock loop (advanceTo / observeLatency / notifyRestart); it is not
 * itself thread-safe. Everything is deterministic in (events, config,
 * fault seed), so reload chaos sessions replay bit-identically.
 */

#ifndef DLRMOPT_SERVE_RELOAD_HPP
#define DLRMOPT_SERVE_RELOAD_HPP

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/quant.hpp"
#include "core/sparse_input.hpp"
#include "core/tensor.hpp"
#include "core/versioned.hpp"
#include "serve/degrade.hpp"
#include "serve/fault_schedule.hpp"
#include "serve/scrub.hpp"

namespace dlrmopt::serve
{

/** Staged-rollout knobs. */
struct ReloadConfig
{
    /** Virtual ms the load/build of a new version occupies before the
     *  canary can start (charged off the serving threads). */
    double loadMs = 5.0;

    /** Requests replayed through old and new versions during shadow
     *  validation. */
    std::size_t shadowRequests = 16;

    /** Mean |new - old| prediction drift allowed for a same-precision
     *  reload. Generous by default: a genuine retrain moves
     *  predictions; the budget guards against a *broken* model, with
     *  the finite-range and checksum gates doing the sharp work. */
    double shadowDriftBudget = 0.25;

    /** Extra drift allowed per bf16 side of the comparison. */
    double shadowDriftExtraBf16 = 0.03;

    /** Extra drift allowed per int8 side of the comparison. */
    double shadowDriftExtraInt8 = 0.08;

    /** Virtual ms the canary serves alone before evaluation. */
    double canaryWindowMs = 50.0;

    /** Minimum served samples on BOTH sides (canary and rest-of-
     *  fleet) before the p95 comparison is trusted; with fewer, the
     *  latency gate abstains (integrity gates still apply). */
    std::size_t canaryMinSamples = 8;

    /** Canary p95 above this multiple of the rest-of-fleet p95 rolls
     *  the reload back. */
    double maxP95RegressionFactor = 1.5;

    /** Instances swapped per rollout stage after the canary. */
    std::size_t rolloutConcurrency = 1;

    /** Virtual ms between rollout stages. */
    double stageHoldMs = 10.0;

    /** @throws std::invalid_argument on a non-positive/non-finite
     *          duration or budget, zero rollout concurrency, or a
     *          regression factor below 1. */
    void validate() const;
};

/** One scripted "push this version" order. */
struct ReloadEvent
{
    double atMs = 0.0;       //!< virtual time the push arrives
    std::size_t tenant = 0;  //!< target tenant index

    /** Version id to publish; must advance past the tenant's current
     *  version or the reload fails. */
    std::uint64_t newVersion = 2;

    /** When set, the version is loaded from this snapshot file
     *  (ModelSnapshot::load, config-checked against the tenant).
     *  When empty, the version is built in-memory from weightSeed. */
    std::string snapshotPath;

    /// @name In-memory build parameters (snapshotPath empty)
    /// @{
    std::uint64_t weightSeed = 0;
    core::EmbDtype dtype = core::EmbDtype::Fp32;
    std::size_t blockRows = 256;
    /// @}

    /** When nonzero, the reload only proceeds if the tenant's current
     *  version id equals this (compare-and-swap semantics for
     *  pipelines that race pushes). */
    std::uint64_t expectedVersion = 0;
};

/** Where a finished reload ended up. */
enum class ReloadState
{
    Idle,
    Loading,
    Canary,
    RollingOut,
    Committed,
    RolledBack,
    Failed
};

/** The name of a ReloadState ("canary", "committed", ...). */
const char *reloadStateName(ReloadState s);

/** Audit record of one finished reload. */
struct ReloadOutcome
{
    std::size_t tenant = 0;
    std::uint64_t version = 0;
    ReloadState finalState = ReloadState::Failed;
    std::string detail;      //!< failure/rollback reason, empty on commit
    double startedMs = 0.0;
    double finishedMs = 0.0;
    std::size_t shadowed = 0;      //!< requests replayed in validation
    std::size_t instanceSwaps = 0; //!< pin swaps performed (incl. undone)
};

/**
 * Drives every scripted reload of one fleet session and owns the
 * per-(instance, tenant) version pins the dispatch path reads.
 * Constructed per session over the fleet's per-tenant VersionedModel
 * holders; pins start at each holder's current version.
 */
class ReloadManager
{
  public:
    /**
     * @param holders One VersionedModel per tenant (borrowed; must
     *        outlive the manager).
     * @param instances Fleet instance-slot count.
     *
     * @throws std::invalid_argument when cfg fails validate(), an
     *         event targets an out-of-range tenant, a timestamp is
     *         negative or non-finite, or a version id is zero.
     */
    ReloadManager(const ReloadConfig& cfg,
                  std::vector<ReloadEvent> events,
                  std::vector<core::VersionedModel *> holders,
                  std::size_t instances);

    /** Wires tenant @p k's background scrubber for commit-time
     *  retargeting (optional; borrowed). */
    void attachScrubber(std::size_t tenant, EmbeddingScrubber *scrub);

    /**
     * Wires instance @p instance's hot tier for tenant @p k
     * (optional; borrowed). Until a rollout commits, dispatches
     * pinned to the incoming version bypass the tier on their own
     * (HotTierCache::matches fails against the new store); at commit
     * the manager retargets every attached tier at the published
     * store, re-pinning the resident hot set with the new version's
     * bytes — the cache is warm from the first post-commit dispatch.
     */
    void attachHotTier(std::size_t instance, std::size_t tenant,
                       core::HotTierCache *tier);

    /**
     * Wires tenant @p k's workload as the shadow-validation replay
     * source: request r replays (*batches)[r % batches->size()]
     * against the first batchSize rows of @p dense. Without a source
     * the canonical probe batch is replayed instead. Both borrowed.
     */
    void attachShadow(std::size_t tenant, const core::Tensor *dense,
                      const std::vector<core::SparseBatch> *batches);

    /** Wires the fault schedule whose phase injector (instance 0's,
     *  at each reload's start time) scripts persistence faults per
     *  reload operation (optional; borrowed). */
    void attachFaults(const FaultSchedule *schedule);

    /**
     * Advances every pending/active reload to virtual time @p now.
     * @p instanceUp flags which instance slots can take a canary.
     * Cascading transitions (a long jump past load-ready, canary end,
     * and every rollout stage) all run in one call.
     */
    void advanceTo(double now, const std::vector<char>& instanceUp);

    /** Feeds one served-request latency into the active canary
     *  comparison (no-op outside a canary window). */
    void observeLatency(std::size_t instance, std::size_t tenant,
                        double latency_ms);

    /** Re-pins a restarted instance to every tenant's *committed*
     *  version — a replica that crashed mid-rollout comes back on the
     *  version of record, and the commit/rollback step re-reconciles
     *  it with the fleet. */
    void notifyRestart(std::size_t instance);

    /** Mirrors a host-level stored-bit upset into any *incoming*
     *  (not-yet-committed) version's store the coordinates fit in —
     *  scripted corruption must be able to hit a version mid-rollout,
     *  which is exactly what the integrity gates exist to catch. */
    void applyBitFlip(std::size_t table, std::size_t row,
                      std::size_t bit);

    /** The version instance @p i currently serves for tenant @p k.
     *  Dispatches copy this pin once and execute entirely on it. */
    std::shared_ptr<const core::ModelVersion>
    pinned(std::size_t instance, std::size_t tenant) const
    {
        return _pins[instance][tenant];
    }

    /** True while any tenant's reload is in flight. */
    bool active() const;

    /// @name Session accounting
    /// @{
    const std::vector<ReloadOutcome>& outcomes() const
    {
        return _outcomes;
    }

    std::size_t started() const { return _started; }
    std::size_t committed() const { return _committed; }
    std::size_t rolledBack() const { return _rolledBack; }
    std::size_t failed() const { return _failed; }
    std::size_t shadowedRequests() const { return _shadowed; }
    std::size_t instanceSwaps() const { return _swaps; }
    /// @}

  private:
    struct Active
    {
        ReloadState state = ReloadState::Idle;
        ReloadEvent ev;
        std::shared_ptr<const core::ModelVersion> prev;
        std::shared_ptr<const core::ModelVersion> next;
        double startMs = 0.0;
        double readyMs = 0.0;
        double canaryEndMs = 0.0;
        double nextStageMs = 0.0;
        std::size_t canaryInst = 0;
        std::vector<char> swapped;
        WindowedP95 canaryWin{64};
        WindowedP95 fleetWin{64};
        std::size_t shadowed = 0;
        std::size_t swaps = 0;
    };

    /** Starts tenant @p k's next pending event when due. */
    bool maybeStart(std::size_t k, double now);

    /** Runs one state transition for tenant @p k when due. */
    bool step(std::size_t k, double now,
              const std::vector<char>& instanceUp);

    /** Shadow validation verdict; empty string = pass. */
    std::string shadowValidate(std::size_t k, Active& a);

    void setAllPins(std::size_t k,
                    const std::shared_ptr<const core::ModelVersion>& v);

    void finish(std::size_t k, ReloadState state, double at,
                const std::string& detail);

    ReloadConfig _cfg;
    std::vector<ReloadEvent> _events; //!< sorted by (atMs, tenant)
    std::vector<core::VersionedModel *> _holders;
    std::size_t _instances;

    /** [instance][tenant] serving pins. */
    std::vector<std::vector<std::shared_ptr<const core::ModelVersion>>>
        _pins;

    std::vector<std::vector<std::size_t>> _pending; //!< event idx per tenant
    std::vector<std::size_t> _cursor;               //!< per tenant
    std::vector<Active> _active;                    //!< per tenant
    std::vector<double> _lastDoneMs;                //!< per tenant

    std::vector<EmbeddingScrubber *> _scrubbers;
    /** [instance][tenant] hot tiers to retarget at commit. */
    std::vector<std::vector<core::HotTierCache *>> _tiers;
    std::vector<const core::Tensor *> _shadowDense;
    std::vector<const std::vector<core::SparseBatch> *> _shadowBatches;
    const FaultSchedule *_faults = nullptr;

    std::vector<ReloadOutcome> _outcomes;
    std::size_t _started = 0;
    std::size_t _committed = 0;
    std::size_t _rolledBack = 0;
    std::size_t _failed = 0;
    std::size_t _shadowed = 0;
    std::size_t _swaps = 0;
};

} // namespace dlrmopt::serve

#endif // DLRMOPT_SERVE_RELOAD_HPP
