#include "serve/queue_sim.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>
#include <vector>

namespace dlrmopt::serve
{

QueueSimResult
simulateQueue(const std::vector<double>& arrivals, double service_ms,
              std::size_t servers)
{
    return simulateQueue(
        arrivals, std::vector<double>(arrivals.size(), service_ms),
        servers);
}

QueueSimResult
simulateQueue(const std::vector<double>& arrivals,
              const std::vector<double>& service_ms, std::size_t servers)
{
    if (servers == 0)
        throw std::invalid_argument("need at least one server");
    if (service_ms.size() != arrivals.size())
        throw std::invalid_argument("one service time per arrival");

    // Min-heap of server-free timestamps.
    std::priority_queue<double, std::vector<double>,
                        std::greater<double>>
        free_at;
    for (std::size_t s = 0; s < servers; ++s)
        free_at.push(0.0);

    QueueSimResult res;
    double busy = 0.0;
    double makespan = 0.0;
    for (std::size_t i = 0; i < arrivals.size(); ++i) {
        const double earliest = free_at.top();
        free_at.pop();
        const double start = std::max(earliest, arrivals[i]);
        const double end = start + service_ms[i];
        free_at.push(end);
        res.latency.add(end - arrivals[i]);
        busy += service_ms[i];
        makespan = std::max(makespan, end);
    }
    if (makespan > 0.0) {
        res.serverUtilization =
            busy / (makespan * static_cast<double>(servers));
    }
    return res;
}

} // namespace dlrmopt::serve
