#include "serve/queue_sim.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>
#include <vector>

namespace dlrmopt::serve
{

QueueSimResult
simulateQueue(const std::vector<double>& arrivals, double service_ms,
              std::size_t servers)
{
    return simulateQueue(
        arrivals, std::vector<double>(arrivals.size(), service_ms),
        servers);
}

QueueSimResult
simulateQueue(const std::vector<double>& arrivals,
              const std::vector<double>& service_ms, std::size_t servers)
{
    if (servers == 0)
        throw std::invalid_argument("need at least one server");
    if (service_ms.size() != arrivals.size())
        throw std::invalid_argument("one service time per arrival");

    // Min-heap of server-free timestamps.
    std::priority_queue<double, std::vector<double>,
                        std::greater<double>>
        free_at;
    for (std::size_t s = 0; s < servers; ++s)
        free_at.push(0.0);

    QueueSimResult res;
    double busy = 0.0;
    double makespan = 0.0;
    for (std::size_t i = 0; i < arrivals.size(); ++i) {
        const double earliest = free_at.top();
        free_at.pop();
        const double start = std::max(earliest, arrivals[i]);
        const double end = start + service_ms[i];
        free_at.push(end);
        res.latency.add(end - arrivals[i]);
        busy += service_ms[i];
        makespan = std::max(makespan, end);
    }
    if (makespan > 0.0) {
        res.serverUtilization =
            busy / (makespan * static_cast<double>(servers));
    }
    return res;
}

ServeStats
simulateQueueShedding(const std::vector<double>& arrivals,
                      double service_ms, std::size_t servers,
                      double sla_ms, bool admission)
{
    if (!(service_ms > 0.0))
        throw std::invalid_argument("service time must be positive");
    return simulateQueueShedding(arrivals,
                                 ServiceModel::constant(service_ms),
                                 {1}, servers, sla_ms, admission);
}

ServeStats
simulateQueueShedding(const std::vector<double>& arrivals,
                      const ServiceModel& service,
                      const std::vector<std::size_t>& batch_sizes,
                      std::size_t servers, double sla_ms,
                      bool admission)
{
    if (servers == 0)
        throw std::invalid_argument("need at least one server");
    if (batch_sizes.empty())
        throw std::invalid_argument("need at least one batch size");
    service.validate();
    if (!(sla_ms > 0.0))
        throw std::invalid_argument("SLA must be positive");

    // One slot per server; scanning a small vector keeps the
    // earliest-free tie-break (lowest index) identical to the real
    // server's, so both paths shed the same requests.
    std::vector<double> free_at(servers, 0.0);

    ServeStats st;
    st.arrived = arrivals.size();
    double busy = 0.0;
    double makespan = 0.0;
    for (std::size_t r = 0; r < arrivals.size(); ++r) {
        const double t = arrivals[r];
        const double service_ms =
            service.serviceMs(batch_sizes[r % batch_sizes.size()]);
        std::size_t s = 0;
        for (std::size_t i = 1; i < servers; ++i) {
            if (free_at[i] < free_at[s])
                s = i;
        }
        const double start = std::max(free_at[s], t);
        if (admission && (start - t) + service_ms > sla_ms) {
            ++st.shed;
            continue;
        }
        const double end = start + service_ms;
        free_at[s] = end;
        ++st.served;
        ++st.dispatches;
        st.latency.add(end - t);
        busy += service_ms;
        makespan = std::max(makespan, end);
    }
    st.makespanMs = makespan;
    if (makespan > 0.0) {
        st.serverUtilization =
            busy / (makespan * static_cast<double>(servers));
    }
    return st;
}

} // namespace dlrmopt::serve
