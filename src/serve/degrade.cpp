#include "serve/degrade.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dlrmopt::serve
{

WindowedP95::WindowedP95(std::size_t window) : _window(window)
{
    if (window == 0)
        throw std::invalid_argument("WindowedP95: window must be >= 1");
    _buf.reserve(window);
}

void
WindowedP95::add(double latency_ms)
{
    if (_buf.size() < _window) {
        _buf.push_back(latency_ms);
        return;
    }
    _buf[_next] = latency_ms;
    _next = (_next + 1) % _window;
}

double
WindowedP95::p95() const
{
    if (_buf.empty())
        return 0.0;
    std::vector<double> scratch = _buf;
    // Nearest-rank p95, matching LatencyStats::percentile.
    const std::size_t rank = static_cast<std::size_t>(
        std::ceil(0.95 * static_cast<double>(scratch.size())));
    const std::size_t k = rank == 0 ? 0 : rank - 1;
    std::nth_element(scratch.begin(),
                     scratch.begin() + static_cast<std::ptrdiff_t>(k),
                     scratch.end());
    return scratch[k];
}

DegradeState
DegradationPolicy::stateForTier(int tier)
{
    // Precision speedups the ladder assumes when pricing runs off the
    // single base ServiceModel: bf16 bags halve the dominant
    // embedding-bandwidth term, int8 also accelerates the MLPs.
    constexpr double kBf16Speedup = 0.85;
    constexpr double kInt8Speedup = 0.75;

    DegradeState s;
    s.tier = tier;
    switch (tier) {
      case 0:
        break;
      case 1: // precision drops before any work is shed
        s.dtype = core::EmbDtype::Bf16;
        s.knobFactor = 1.0;
        break;
      case 2:
        s.dtype = core::EmbDtype::Int8;
        s.knobFactor = 1.0;
        break;
      case 3:
        s.dtype = core::EmbDtype::Int8;
        s.batchFraction = 0.5;
        s.knobFactor = 0.60;
        break;
      case 4:
        s.dtype = core::EmbDtype::Int8;
        s.batchFraction = 0.5;
        s.prefetchEnabled = false;
        s.knobFactor = 0.55;
        break;
      default: // tier 5 and anything beyond
        s.tier = 5;
        s.dtype = core::EmbDtype::Int8;
        s.batchFraction = 0.5;
        s.prefetchEnabled = false;
        s.scheme = core::Scheme::Baseline; // sequential stage order
        s.knobFactor = 0.50;
        break;
    }
    const double dtype_speedup =
        s.dtype == core::EmbDtype::Bf16   ? kBf16Speedup
        : s.dtype == core::EmbDtype::Int8 ? kInt8Speedup
                                          : 1.0;
    s.serviceFactor = s.knobFactor * dtype_speedup;
    return s;
}

DegradationPolicy::DegradationPolicy(const DegradeConfig& cfg,
                                     double sla_ms)
    : _cfg(cfg), _slaMs(sla_ms), _win(cfg.window)
{
    if (!(sla_ms > 0.0))
        throw std::invalid_argument(
            "DegradationPolicy: SLA must be positive");
    if (!(cfg.lowFraction < cfg.highFraction))
        throw std::invalid_argument(
            "DegradationPolicy: lowFraction must be < highFraction");
}

void
DegradationPolicy::observe(double latency_ms)
{
    _win.add(latency_ms);
    if (!_cfg.enabled)
        return;
    ++_sinceChange;

    const double p95 = _win.p95();
    if (p95 < _cfg.lowFraction * _slaMs)
        ++_calmStreak;
    else
        _calmStreak = 0;

    // Hysteresis: act only after a full cooldown since the last tier
    // change, and require the window to have real content.
    if (_sinceChange < _cfg.cooldown || _win.count() < _cfg.window / 2)
        return;

    if (p95 > _cfg.highFraction * _slaMs && _tier < maxTier()) {
        ++_tier;
        ++_escalations;
        _sinceChange = 0;
        _calmStreak = 0;
    } else if (_calmStreak >= _cfg.cooldown && _tier > 0) {
        --_tier;
        _sinceChange = 0;
        _calmStreak = 0;
    }
}

} // namespace dlrmopt::serve
