/**
 * @file
 * Time-varying fault schedules: scripted chaos over the virtual clock.
 *
 * A single FaultConfig models a *stationary* failure environment. Real
 * clusters fail in episodes — a crash storm here, a corruption burst
 * there, a core that throttles for a minute and recovers. A
 * FaultSchedule scripts that as
 *
 *  - piecewise FaultConfig *phases*: from each phase's startMs onward
 *    (until a later phase supersedes it) the phase's injector decides
 *    task faults for the targeted instance (or all instances);
 *  - instance *lifecycle events*: scripted crash/recover timestamps
 *    that drive the Server Up -> Draining -> Down -> WarmRestart
 *    state machine from the Router's event loop;
 *  - stored-row *bit-flip events*: scripted silent corruption of one
 *    (table, row, bit) site in the shared EmbeddingStore, for the
 *    integrity/quarantine path.
 *
 * Everything keys off the same deterministic virtual clock as the
 * serving loops, so a chaos session replays bit-identically under a
 * fixed seed. chaosScenario() builds the three named timelines the
 * resilience bench and `dlrmopt chaos` replay.
 */

#ifndef DLRMOPT_SERVE_FAULT_SCHEDULE_HPP
#define DLRMOPT_SERVE_FAULT_SCHEDULE_HPP

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "serve/fault.hpp"

namespace dlrmopt::serve
{

/** One piecewise fault regime, active from startMs until superseded
 *  by a later phase targeting the same scope. */
struct FaultPhase
{
    double startMs = 0.0;
    int instance = -1;   //!< target instance, -1 = every instance
    FaultConfig config;
};

/** A scripted instance crash or recovery. */
struct LifecycleEvent
{
    enum class Kind
    {
        Crash,  //!< instance begins draining, then goes Down
        Recover //!< instance warm-restarts, Up after probation
    };

    double atMs = 0.0;
    std::size_t instance = 0;
    Kind kind = Kind::Crash;
};

/** A scripted silent bit flip of one stored embedding payload bit. */
struct BitFlipEvent
{
    double atMs = 0.0;
    std::size_t table = 0;
    std::size_t row = 0;
    std::size_t bit = 0;
};

/**
 * An immutable scripted fault timeline. Owns one FaultInjector per
 * phase (injectors hold atomic hit counters, so phases are stored
 * behind unique_ptr and the schedule is move-only).
 */
class FaultSchedule
{
  public:
    FaultSchedule() = default;

    /**
     * @param phases Fault regimes; sorted internally by startMs.
     * @param lifecycle Crash/recover script; sorted internally.
     * @param bitFlips Corruption script; sorted internally.
     *
     * @throws std::invalid_argument when any phase config fails
     *         FaultConfig::validate() or any timestamp is negative or
     *         non-finite.
     */
    FaultSchedule(std::vector<FaultPhase> phases,
                  std::vector<LifecycleEvent> lifecycle,
                  std::vector<BitFlipEvent> bitFlips);

    FaultSchedule(FaultSchedule&&) = default;
    FaultSchedule& operator=(FaultSchedule&&) = default;

    /**
     * Cross-checks the script against a cluster shape: every event's
     * instance must be < @p instances, and each instance's lifecycle
     * events must alternate Crash/Recover starting with Crash (an
     * instance cannot crash twice without recovering, nor recover
     * without having crashed).
     *
     * @throws std::invalid_argument on any violation.
     */
    void validate(std::size_t instances) const;

    /**
     * The injector governing @p instance at virtual time @p now_ms:
     * the phase with the latest startMs <= now_ms targeting this
     * instance, an instance-specific phase beating a global one that
     * starts at the same time. Null when no phase applies (callers
     * fall back to their static injector).
     */
    const FaultInjector *injectorAt(double now_ms, std::size_t instance)
        const;

    /** Lifecycle script, ascending atMs. */
    const std::vector<LifecycleEvent>& lifecycleEvents() const
    {
        return _lifecycle;
    }

    /** Corruption script, ascending atMs. */
    const std::vector<BitFlipEvent>& bitFlipEvents() const
    {
        return _bitFlips;
    }

    std::size_t numPhases() const { return _phases.size(); }

    /** True when replaying this schedule mutates stored embedding
     *  rows (scripted bit-flip events, or any phase with a positive
     *  bitFlipRate) — such schedules need a mutable store handle. */
    bool corruptsStore() const;

    bool
    empty() const
    {
        return _phases.empty() && _lifecycle.empty() && _bitFlips.empty();
    }

    /** Sum of injected faults across every phase injector. */
    std::uint64_t injectedTaskFaults() const;

    /**
     * Builds one of the named chaos timelines over a session of
     * @p session_ms across @p instances instances:
     *
     *  - "crash-storm": a staggered wave of crashes in the first half
     *    of the session, each recovering after a scripted outage;
     *  - "rolling-corruption": a mid-session phase whose bitFlipRate
     *    silently flips stored bits, plus one scripted early flip;
     *  - "flapping-straggler": instance 0 alternates between healthy
     *    and a throwing 8x straggler regime every eighth of the
     *    session.
     *
     * @throws std::invalid_argument on an unknown name or fewer than
     *         2 instances.
     */
    static FaultSchedule chaosScenario(const std::string& name,
                                       std::size_t instances,
                                       double session_ms,
                                       std::uint64_t seed);

    /** The scenario names chaosScenario() accepts. */
    static const std::vector<std::string>& scenarioNames();

  private:
    struct Phase
    {
        double startMs;
        int instance;
        std::unique_ptr<FaultInjector> injector;
    };

    std::vector<Phase> _phases;          //!< ascending startMs
    std::vector<LifecycleEvent> _lifecycle; //!< ascending atMs
    std::vector<BitFlipEvent> _bitFlips; //!< ascending atMs
};

} // namespace dlrmopt::serve

#endif // DLRMOPT_SERVE_FAULT_SCHEDULE_HPP
