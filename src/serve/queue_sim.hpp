/**
 * @file
 * Discrete-event FCFS multi-server queueing simulator.
 *
 * Models the serving layer of Sec. 6.5: requests (batches) arrive
 * from the Poisson load generator, each core is a server, and a
 * request's latency is its queueing delay plus the per-batch
 * inference time produced by the platform evaluator. Faster
 * inference both shortens service and drains queues, which is why
 * the paper's optimizations extend the SLA-compliant arrival-rate
 * region (Fig. 17).
 */

#ifndef DLRMOPT_SERVE_QUEUE_SIM_HPP
#define DLRMOPT_SERVE_QUEUE_SIM_HPP

#include <cstddef>
#include <vector>

#include "serve/latency_stats.hpp"
#include "serve/serve_stats.hpp"
#include "serve/service_model.hpp"

namespace dlrmopt::serve
{

/** Results of one queueing simulation. */
struct QueueSimResult
{
    LatencyStats latency;      //!< end-to-end request latencies (ms)
    double serverUtilization = 0.0; //!< busy time / total time
};

/**
 * Simulates an FCFS queue with @p servers identical servers.
 *
 * @param arrivals Request arrival timestamps (ms), ascending.
 * @param service_ms Deterministic per-request service time.
 * @param servers Number of parallel servers (cores).
 */
QueueSimResult simulateQueue(const std::vector<double>& arrivals,
                             double service_ms, std::size_t servers);

/**
 * Variant with per-request service times (e.g. drawn from measured
 * batch-latency jitter).
 */
QueueSimResult simulateQueue(const std::vector<double>& arrivals,
                             const std::vector<double>& service_ms,
                             std::size_t servers);

/**
 * Shedding-aware FCFS queue: the simulated twin of the real server's
 * admission control (serve/server.hpp). A request whose projected
 * wait plus service already exceeds @p sla_ms is rejected on arrival
 * and counted in ServeStats::shed; latency percentiles cover served
 * requests only, so they are comparable with the real serving path.
 *
 * @param arrivals Request arrival timestamps (ms), ascending.
 * @param service_ms Deterministic per-request service time.
 * @param servers Number of parallel servers (cores).
 * @param sla_ms Per-request deadline driving admission.
 * @param admission Disable to get plain FCFS behaviour with
 *        ServeStats-shaped reporting (shed stays 0).
 *
 * @throws std::invalid_argument on zero servers or a non-positive
 *         SLA/service time.
 */
ServeStats simulateQueueShedding(const std::vector<double>& arrivals,
                                 double service_ms,
                                 std::size_t servers, double sla_ms,
                                 bool admission = true);

/**
 * Batch-size-aware variant: request i carries
 * batch_sizes[i % batch_sizes.size()] samples and is serviced in
 * service.serviceMs(samples) — the simulated twin of a Server
 * configured with the same ServiceModel. With
 * ServiceModel::constant(ms) and any batch sizes this reproduces the
 * scalar overload exactly.
 *
 * @throws std::invalid_argument on zero servers, empty batch sizes,
 *         a non-positive SLA, or an invalid service model.
 */
ServeStats simulateQueueShedding(const std::vector<double>& arrivals,
                                 const ServiceModel& service,
                                 const std::vector<std::size_t>&
                                     batch_sizes,
                                 std::size_t servers, double sla_ms,
                                 bool admission = true);

} // namespace dlrmopt::serve

#endif // DLRMOPT_SERVE_QUEUE_SIM_HPP
