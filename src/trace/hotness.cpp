#include "trace/hotness.hpp"

#include <algorithm>
#include <cmath>

namespace dlrmopt::traces
{

std::string
hotnessName(Hotness h)
{
    switch (h) {
      case Hotness::OneItem:
        return "one-item";
      case Hotness::High:
        return "High Hot";
      case Hotness::Medium:
        return "Medium Hot";
      case Hotness::Low:
        return "Low Hot";
      case Hotness::Random:
        return "random";
    }
    return "unknown";
}

double
targetUniqueFraction(Hotness h)
{
    switch (h) {
      case Hotness::OneItem:
        return 0.0;
      case Hotness::High:
        return 0.03;
      case Hotness::Medium:
        return 0.24;
      case Hotness::Low:
        return 0.60;
      case Hotness::Random:
        return 1.0;
    }
    return 1.0;
}

double
calibrateUniformFraction(double target_unique, std::size_t draws,
                         std::size_t rows, std::size_t hot_set)
{
    const double n = static_cast<double>(draws);
    const double r = static_cast<double>(rows);
    const double distinct_needed =
        target_unique * n - static_cast<double>(hot_set);
    if (distinct_needed <= 0.0)
        return 0.0;
    // u*n = R*(1 - exp(-q*n/R))  =>  q = -ln(1 - u*n/R) * R/n
    const double x = distinct_needed / r;
    if (x >= 1.0)
        return 1.0;
    const double q = -std::log(1.0 - x) * r / n;
    return std::clamp(q, 0.0, 1.0);
}

} // namespace dlrmopt::traces
