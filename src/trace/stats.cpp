#include "trace/stats.hpp"

#include <algorithm>
#include <functional>
#include <unordered_map>

namespace dlrmopt::traces
{

double
AccessStats::topKShare(std::size_t k) const
{
    if (totalAccesses == 0)
        return 0.0;
    std::uint64_t acc = 0;
    const std::size_t n = std::min(k, sortedCounts.size());
    for (std::size_t i = 0; i < n; ++i)
        acc += sortedCounts[i];
    return static_cast<double>(acc) / static_cast<double>(totalAccesses);
}

AccessStats
computeAccessStats(const std::vector<RowIndex>& stream)
{
    AccessStats st;
    std::unordered_map<RowIndex, std::uint64_t> counts;
    counts.reserve(stream.size());
    for (RowIndex idx : stream)
        ++counts[idx];
    st.totalAccesses = stream.size();
    st.sortedCounts.reserve(counts.size());
    for (const auto& [idx, c] : counts)
        st.sortedCounts.push_back(c);
    std::sort(st.sortedCounts.begin(), st.sortedCounts.end(),
              std::greater<>());
    return st;
}

} // namespace dlrmopt::traces
