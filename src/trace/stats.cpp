#include "trace/stats.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <stdexcept>
#include <string>
#include <unordered_map>

namespace dlrmopt::traces
{

double
AccessStats::topKShare(std::size_t k) const
{
    if (totalAccesses == 0)
        return 0.0;
    std::uint64_t acc = 0;
    const std::size_t n = std::min(k, sortedCounts.size());
    for (std::size_t i = 0; i < n; ++i)
        acc += sortedCounts[i];
    return static_cast<double>(acc) / static_cast<double>(totalAccesses);
}

AccessStats
computeAccessStats(const std::vector<RowIndex>& stream)
{
    AccessStats st;
    std::unordered_map<RowIndex, std::uint64_t> counts;
    counts.reserve(stream.size());
    for (RowIndex idx : stream)
        ++counts[idx];
    st.totalAccesses = stream.size();
    st.sortedCounts.reserve(counts.size());
    for (const auto& [idx, c] : counts)
        st.sortedCounts.push_back(c);
    std::sort(st.sortedCounts.begin(), st.sortedCounts.end(),
              std::greater<>());
    return st;
}

AccessAccumulator::AccessAccumulator(std::size_t tables,
                                     std::size_t rows)
    : _tables(tables), _rows(rows)
{
    if (tables == 0 || rows == 0) {
        throw std::invalid_argument(
            "AccessAccumulator: need tables and rows >= 1");
    }
    _counts.assign(tables * rows, 0);
}

void
AccessAccumulator::observe(std::size_t table, RowIndex row,
                           std::uint64_t n)
{
    if (table >= _tables || row < 0 ||
        static_cast<std::uint64_t>(row) >=
            static_cast<std::uint64_t>(_rows)) {
        throw std::out_of_range(
            "AccessAccumulator: (" + std::to_string(table) + ", " +
            std::to_string(row) + ") out of range");
    }
    _counts[table * _rows + static_cast<std::size_t>(row)] += n;
    _total += n;
}

void
AccessAccumulator::observeBatch(const core::SparseBatch& batch)
{
    if (batch.numTables() > _tables) {
        throw std::out_of_range(
            "AccessAccumulator: batch has more tables than the "
            "accumulator");
    }
    for (std::size_t t = 0; t < batch.numTables(); ++t) {
        for (RowIndex idx : batch.indices[t])
            observe(t, idx);
    }
}

std::uint64_t
AccessAccumulator::count(std::size_t table, RowIndex row) const
{
    if (table >= _tables || row < 0 ||
        static_cast<std::uint64_t>(row) >=
            static_cast<std::uint64_t>(_rows)) {
        throw std::out_of_range(
            "AccessAccumulator: (" + std::to_string(table) + ", " +
            std::to_string(row) + ") out of range");
    }
    return _counts[table * _rows + static_cast<std::size_t>(row)];
}

AccessStats
AccessAccumulator::tableStats(std::size_t t) const
{
    if (t >= _tables) {
        throw std::out_of_range(
            "AccessAccumulator: table " + std::to_string(t) +
            " out of range");
    }
    AccessStats st;
    for (std::size_t r = 0; r < _rows; ++r) {
        const std::uint64_t c = _counts[t * _rows + r];
        if (c != 0) {
            st.sortedCounts.push_back(c);
            st.totalAccesses += c;
        }
    }
    std::sort(st.sortedCounts.begin(), st.sortedCounts.end(),
              std::greater<>());
    return st;
}

std::vector<std::pair<std::size_t, RowIndex>>
AccessAccumulator::hottest(std::size_t k) const
{
    struct Cand
    {
        std::uint64_t count;
        std::size_t table;
        std::size_t row;
    };
    std::vector<Cand> cands;
    for (std::size_t t = 0; t < _tables; ++t) {
        for (std::size_t r = 0; r < _rows; ++r) {
            const std::uint64_t c = _counts[t * _rows + r];
            if (c != 0)
                cands.push_back(Cand{c, t, r});
        }
    }
    const auto hotter = [](const Cand& a, const Cand& b) {
        if (a.count != b.count)
            return a.count > b.count;
        if (a.table != b.table)
            return a.table < b.table;
        return a.row < b.row;
    };
    const std::size_t n = std::min(k, cands.size());
    std::partial_sort(cands.begin(),
                      cands.begin() + static_cast<std::ptrdiff_t>(n),
                      cands.end(), hotter);
    std::vector<std::pair<std::size_t, RowIndex>> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        out.emplace_back(cands[i].table,
                         static_cast<RowIndex>(cands[i].row));
    }
    return out;
}

void
AccessAccumulator::decay(double factor)
{
    if (!(factor >= 0.0) || !(factor <= 1.0)) {
        throw std::invalid_argument(
            "AccessAccumulator: decay factor must be in [0, 1]");
    }
    _total = 0;
    for (std::uint64_t& c : _counts) {
        c = static_cast<std::uint64_t>(
            std::floor(static_cast<double>(c) * factor));
        _total += c;
    }
}

void
AccessAccumulator::reset()
{
    std::fill(_counts.begin(), _counts.end(), 0);
    _total = 0;
}

} // namespace dlrmopt::traces
