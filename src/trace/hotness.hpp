/**
 * @file
 * Dataset hotness classes and calibration.
 *
 * The paper (Sec. 5) reduces Meta's production embedding-lookup
 * traces to three hotness classes characterized by their fraction of
 * unique item ids: Low = 60%, Medium = 24%, High = 3% unique. Two
 * synthetic extremes bound the spectrum (Sec. 3.1): "one-item" (every
 * lookup hits the same row) and "random" (uniform over all rows).
 *
 * Our generator reproduces a target unique fraction with a mixture
 * distribution: each draw is uniform over all rows with probability
 * q, and Zipf-distributed over a small scattered hot set otherwise.
 * calibrateUniformFraction() solves q analytically from the target.
 */

#ifndef DLRMOPT_TRACE_HOTNESS_HPP
#define DLRMOPT_TRACE_HOTNESS_HPP

#include <cstddef>
#include <string>

namespace dlrmopt::traces
{

/** Input hotness classes used across the paper's evaluation. */
enum class Hotness
{
    OneItem, //!< Best case: all lookups hit one row (synthetic).
    High,    //!< Meta trace class, ~3% unique accesses.
    Medium,  //!< Meta trace class, ~24% unique accesses.
    Low,     //!< Meta trace class, ~60% unique accesses.
    Random,  //!< Worst case: uniform over all rows (synthetic).
};

/** Display name matching the paper ("High Hot", "one-item", ...). */
std::string hotnessName(Hotness h);

/**
 * Target unique-access fraction for a hotness class (Sec. 5).
 * OneItem returns ~0 and Random returns 1.0 (the asymptotic extremes).
 */
double targetUniqueFraction(Hotness h);

/**
 * Solves for the mixture's uniform-draw probability q such that the
 * expected unique fraction over a draw window matches the target.
 *
 * With n draws over R rows where each draw is uniform with
 * probability q, the expected distinct count of the uniform component
 * is R * (1 - exp(-q*n/R)); the hot component contributes at most
 * hot_set distinct rows. Setting
 *     u * n = R * (1 - exp(-q*n/R)) + hot_set
 * and solving for q gives the calibrated mixture.
 *
 * @param target_unique Desired unique fraction u in (0, 1].
 * @param draws Number of index draws n in the window.
 * @param rows Table row count R.
 * @param hot_set Hot-set size.
 * @return q clamped to [0, 1].
 */
double calibrateUniformFraction(double target_unique, std::size_t draws,
                                std::size_t rows, std::size_t hot_set);

} // namespace dlrmopt::traces

#endif // DLRMOPT_TRACE_HOTNESS_HPP
