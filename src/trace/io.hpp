/**
 * @file
 * Binary serialization of sparse-input traces.
 *
 * Lets a materialized trace (e.g. a batch window exported from the
 * generator, or an externally collected dataset in the same layout as
 * Meta's dlrm_datasets offsets/indices tensors) be stored and reloaded
 * without regeneration.
 */

#ifndef DLRMOPT_TRACE_IO_HPP
#define DLRMOPT_TRACE_IO_HPP

#include <string>
#include <vector>

#include "core/sparse_input.hpp"

namespace dlrmopt::traces
{

/**
 * Writes a batch sequence to @p path in the dlrmopt binary trace
 * format (magic, version, counts, then per-table offset/index arrays).
 *
 * @throws std::runtime_error on I/O failure.
 */
void saveTrace(const std::string& path,
               const std::vector<core::SparseBatch>& batches);

/**
 * Reads a batch sequence previously written by saveTrace().
 *
 * @throws std::runtime_error on I/O failure or malformed contents.
 */
std::vector<core::SparseBatch> loadTrace(const std::string& path);

} // namespace dlrmopt::traces

#endif // DLRMOPT_TRACE_IO_HPP
