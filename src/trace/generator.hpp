/**
 * @file
 * Deterministic synthetic embedding-lookup trace generator.
 *
 * Produces the index access pattern of Algorithm 1 of the paper: for
 * each batch, for each table, batch_size samples of lookups_per_sample
 * indices each. Index draws follow the calibrated hotness mixture of
 * trace/hotness.hpp. Generation is counter-based (stateless), so any
 * batch can be produced independently and the whole trace never has
 * to be materialized — essential for full-size models whose traces
 * run to hundreds of MB.
 */

#ifndef DLRMOPT_TRACE_GENERATOR_HPP
#define DLRMOPT_TRACE_GENERATOR_HPP

#include <cstdint>
#include <vector>

#include "core/model_config.hpp"
#include "core/sparse_input.hpp"
#include "trace/hotness.hpp"

namespace dlrmopt::traces
{

/** Parameters of a synthetic trace. */
struct TraceConfig
{
    std::size_t rows = 0;       //!< rows per table
    std::size_t tables = 0;     //!< number of embedding tables
    std::size_t lookups = 0;    //!< lookups per sample per table
    std::size_t batchSize = core::paperBatchSize;
    std::size_t numBatches = core::paperNumBatches; //!< calibration window
    Hotness hotness = Hotness::Medium;
    std::uint64_t seed = 1;
    std::size_t hotSetSize = 1024;  //!< rows in the Zipf hot set
    double zipfAlpha = 1.05;        //!< hot-set skew exponent

    /** Builds a TraceConfig for a Table 2 model. */
    static TraceConfig
    forModel(const core::ModelConfig& m, Hotness h, std::uint64_t seed = 1)
    {
        TraceConfig c;
        c.rows = m.rows;
        c.tables = m.tables;
        c.lookups = m.lookups;
        c.hotness = h;
        c.seed = seed;
        return c;
    }

    /** Index draws per table over the calibration window. */
    std::size_t
    drawsPerTable() const
    {
        return numBatches * batchSize * lookups;
    }
};

/**
 * Counter-based trace generator. Thread-safe after construction: all
 * query methods are const and stateless.
 */
class TraceGenerator
{
  public:
    explicit TraceGenerator(const TraceConfig& cfg);

    const TraceConfig& config() const { return _cfg; }

    /** Calibrated probability that a draw is uniform over all rows. */
    double uniformFraction() const { return _q; }

    /**
     * The index drawn for lookup number @p counter of table @p table.
     * Deterministic in (seed, table, counter).
     */
    RowIndex drawIndex(std::size_t table,
                             std::uint64_t counter) const;

    /**
     * Materializes one batch of sparse inputs across all tables.
     * Lookup counters continue across batches so reuse across batches
     * (Sec. 3.1.2 "inter-batch") emerges naturally.
     *
     * @param batch_id Which batch to produce (any order, any subset).
     */
    core::SparseBatch batch(std::size_t batch_id) const;

    /**
     * Materializes the per-table flat index stream for a range of
     * batches, in the order the embedding stage would issue them
     * (used by the reuse-distance and cache-simulation substrates).
     */
    std::vector<RowIndex> tableStream(std::size_t table,
                                            std::size_t first_batch,
                                            std::size_t num_batches) const;

  private:
    /** Maps a hot-set rank to its scattered row id. */
    RowIndex hotRow(std::size_t table, std::size_t rank) const;

    TraceConfig _cfg;
    double _q = 1.0;                //!< calibrated uniform fraction
    std::vector<double> _zipfCdf;   //!< CDF over hot-set ranks
};

} // namespace dlrmopt::traces

#endif // DLRMOPT_TRACE_GENERATOR_HPP
