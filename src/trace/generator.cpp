#include "trace/generator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dlrmopt::traces
{

namespace
{

constexpr std::uint64_t tableSalt = 0xa24baed4963ee407ull;
constexpr std::uint64_t counterSalt = 0x9fb21c651e98df25ull;
constexpr std::uint64_t mixSalt = 0xd6e8feb86659fd93ull;

} // namespace

TraceGenerator::TraceGenerator(const TraceConfig& cfg)
    : _cfg(cfg)
{
    if (cfg.rows == 0 || cfg.tables == 0 || cfg.lookups == 0 ||
        cfg.batchSize == 0) {
        throw std::invalid_argument("TraceConfig has a zero dimension");
    }

    switch (cfg.hotness) {
      case Hotness::OneItem:
        _q = 0.0;
        break;
      case Hotness::Random:
        _q = 1.0;
        break;
      default:
        _q = calibrateUniformFraction(targetUniqueFraction(cfg.hotness),
                                      cfg.drawsPerTable(), cfg.rows,
                                      cfg.hotSetSize);
        break;
    }

    if (cfg.hotness != Hotness::OneItem && cfg.hotness != Hotness::Random) {
        // Zipf CDF over hot-set ranks: P(rank k) ~ 1 / (k+1)^alpha.
        _zipfCdf.resize(cfg.hotSetSize);
        double acc = 0.0;
        for (std::size_t k = 0; k < cfg.hotSetSize; ++k) {
            acc += 1.0 / std::pow(static_cast<double>(k + 1),
                                  cfg.zipfAlpha);
            _zipfCdf[k] = acc;
        }
        for (double& v : _zipfCdf)
            v /= acc;
    }
}

RowIndex
TraceGenerator::hotRow(std::size_t table, std::size_t rank) const
{
    // Scatter hot rows over the table so hot lines are not spatially
    // clustered (matches the production traces' behaviour).
    const std::uint64_t h =
        mix64(_cfg.seed ^ (table * tableSalt) ^ (rank * mixSalt) ^
              0x5851f42d4c957f2dull);
    return static_cast<RowIndex>(h % _cfg.rows);
}

RowIndex
TraceGenerator::drawIndex(std::size_t table, std::uint64_t counter) const
{
    if (_cfg.hotness == Hotness::OneItem)
        return hotRow(table, 0);

    const std::uint64_t word =
        mix64(_cfg.seed ^ (table * tableSalt) ^ (counter * counterSalt));

    if (_cfg.hotness == Hotness::Random)
        return static_cast<RowIndex>(word % _cfg.rows);

    const double u = toUnitInterval(word);
    if (u < _q) {
        // Uniform component: re-mix so the selector and the row are
        // independent.
        const std::uint64_t w2 = mix64(word ^ mixSalt);
        return static_cast<RowIndex>(w2 % _cfg.rows);
    }

    // Hot component: invert the Zipf CDF with a fresh uniform draw.
    const double v = toUnitInterval(mix64(word + 1));
    const auto it =
        std::lower_bound(_zipfCdf.begin(), _zipfCdf.end(), v);
    const std::size_t rank = static_cast<std::size_t>(
        std::distance(_zipfCdf.begin(), it));
    return hotRow(table, std::min(rank, _cfg.hotSetSize - 1));
}

core::SparseBatch
TraceGenerator::batch(std::size_t batch_id) const
{
    core::SparseBatch b;
    b.batchSize = _cfg.batchSize;
    b.indices.resize(_cfg.tables);
    b.offsets.resize(_cfg.tables);

    const std::size_t per_batch = _cfg.batchSize * _cfg.lookups;
    for (std::size_t t = 0; t < _cfg.tables; ++t) {
        auto& idx = b.indices[t];
        auto& off = b.offsets[t];
        idx.resize(per_batch);
        off.resize(_cfg.batchSize + 1);
        const std::uint64_t base =
            static_cast<std::uint64_t>(batch_id) * per_batch;
        for (std::size_t i = 0; i < per_batch; ++i)
            idx[i] = drawIndex(t, base + i);
        for (std::size_t s = 0; s <= _cfg.batchSize; ++s)
            off[s] = static_cast<RowIndex>(s * _cfg.lookups);
    }
    return b;
}

std::vector<RowIndex>
TraceGenerator::tableStream(std::size_t table, std::size_t first_batch,
                            std::size_t num_batches) const
{
    const std::size_t per_batch = _cfg.batchSize * _cfg.lookups;
    std::vector<RowIndex> out;
    out.reserve(per_batch * num_batches);
    for (std::size_t b = first_batch; b < first_batch + num_batches; ++b) {
        const std::uint64_t base =
            static_cast<std::uint64_t>(b) * per_batch;
        for (std::size_t i = 0; i < per_batch; ++i)
            out.push_back(drawIndex(table, base + i));
    }
    return out;
}

} // namespace dlrmopt::traces
