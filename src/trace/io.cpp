#include "trace/io.hpp"

#include <cstdint>
#include <fstream>
#include <stdexcept>

namespace dlrmopt::traces
{

namespace
{

constexpr std::uint64_t traceMagic = 0x444c524d54524331ull; // "DLRMTRC1"

template <typename T>
void
writePod(std::ofstream& os, const T& v)
{
    os.write(reinterpret_cast<const char *>(&v), sizeof(T));
}

template <typename T>
T
readPod(std::ifstream& is)
{
    T v{};
    is.read(reinterpret_cast<char *>(&v), sizeof(T));
    if (!is)
        throw std::runtime_error("trace file truncated");
    return v;
}

template <typename T>
void
writeVec(std::ofstream& os, const std::vector<T>& v)
{
    writePod<std::uint64_t>(os, v.size());
    os.write(reinterpret_cast<const char *>(v.data()),
             static_cast<std::streamsize>(v.size() * sizeof(T)));
}

template <typename T>
std::vector<T>
readVec(std::ifstream& is)
{
    const auto n = readPod<std::uint64_t>(is);
    // Sanity bound: refuse absurd sizes rather than bad_alloc.
    if (n > (1ull << 34))
        throw std::runtime_error("trace vector size implausible");
    std::vector<T> v(n);
    is.read(reinterpret_cast<char *>(v.data()),
            static_cast<std::streamsize>(n * sizeof(T)));
    if (!is)
        throw std::runtime_error("trace file truncated");
    return v;
}

/**
 * Structural validation of a freshly deserialized batch. The byte
 * reads above only guarantee the right number of bytes arrived;
 * malformed offset arrays would otherwise flow into embedding_bag as
 * out-of-bounds reads.
 */
void
validateBatch(const core::SparseBatch& b, std::uint64_t batch_id)
{
    const auto fail = [batch_id](const std::string& why) {
        throw std::runtime_error("trace batch " +
                                 std::to_string(batch_id) +
                                 " malformed: " + why);
    };
    if (b.batchSize == 0)
        fail("zero batch size");
    if (b.batchSize > (1ull << 24))
        fail("batch size implausible");
    if (b.numTables() == 0)
        fail("zero tables");
    for (std::size_t t = 0; t < b.numTables(); ++t) {
        const auto& off = b.offsets[t];
        if (off.size() != b.batchSize + 1)
            fail("offsets length != batch size + 1");
        if (off.front() != 0)
            fail("offsets do not start at 0");
        for (std::size_t i = 0; i + 1 < off.size(); ++i) {
            if (off[i] > off[i + 1])
                fail("offsets not monotone");
        }
        if (static_cast<std::size_t>(off.back()) != b.indices[t].size())
            fail("offsets do not cover the index array");
        for (const RowIndex idx : b.indices[t]) {
            if (idx < 0)
                fail("negative lookup index");
        }
    }
}

} // namespace

void
saveTrace(const std::string& path,
          const std::vector<core::SparseBatch>& batches)
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        throw std::runtime_error("cannot open " + path + " for writing");
    writePod(os, traceMagic);
    writePod<std::uint64_t>(os, batches.size());
    for (const auto& b : batches) {
        writePod<std::uint64_t>(os, b.batchSize);
        writePod<std::uint64_t>(os, b.numTables());
        for (std::size_t t = 0; t < b.numTables(); ++t) {
            writeVec(os, b.offsets[t]);
            writeVec(os, b.indices[t]);
        }
    }
    if (!os)
        throw std::runtime_error("write failed for " + path);
}

std::vector<core::SparseBatch>
loadTrace(const std::string& path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        throw std::runtime_error("cannot open " + path);
    if (readPod<std::uint64_t>(is) != traceMagic)
        throw std::runtime_error(path + " is not a dlrmopt trace");
    const auto num_batches = readPod<std::uint64_t>(is);
    std::vector<core::SparseBatch> batches;
    batches.reserve(num_batches);
    for (std::uint64_t i = 0; i < num_batches; ++i) {
        core::SparseBatch b;
        b.batchSize = readPod<std::uint64_t>(is);
        const auto tables = readPod<std::uint64_t>(is);
        if (tables > (1ull << 20))
            throw std::runtime_error("trace table count implausible");
        b.offsets.resize(tables);
        b.indices.resize(tables);
        for (std::uint64_t t = 0; t < tables; ++t) {
            b.offsets[t] = readVec<RowIndex>(is);
            b.indices[t] = readVec<RowIndex>(is);
        }
        validateBatch(b, i);
        batches.push_back(std::move(b));
    }
    return batches;
}

} // namespace dlrmopt::traces
