/**
 * @file
 * Access-count statistics over index traces (Sec. 3.1.1, Fig. 5).
 */

#ifndef DLRMOPT_TRACE_STATS_HPP
#define DLRMOPT_TRACE_STATS_HPP

#include <cstdint>
#include <utility>
#include <vector>

#include "core/sparse_input.hpp"
#include "core/types.hpp"

namespace dlrmopt::traces
{

/**
 * Per-row access-count summary for one table's index stream.
 */
struct AccessStats
{
    /** Access count per touched row, sorted descending (Fig. 5). */
    std::vector<std::uint64_t> sortedCounts;

    std::uint64_t totalAccesses = 0;

    std::size_t uniqueRows() const { return sortedCounts.size(); }

    /** Fraction of accessed ids that are unique (Sec. 5's metric). */
    double
    uniqueFraction() const
    {
        return totalAccesses
            ? static_cast<double>(uniqueRows()) /
                  static_cast<double>(totalAccesses)
            : 0.0;
    }

    /**
     * Share of all accesses captured by the @p k hottest rows — the
     * "hot rows dominate" metric prior NMP/caching work relies on.
     */
    double topKShare(std::size_t k) const;
};

/**
 * Computes access statistics over an index stream.
 */
AccessStats computeAccessStats(const std::vector<RowIndex>& stream);

/**
 * Incremental per-(table, row) access-count accumulator fed from
 * *served* batches — the online flavor of computeAccessStats, and the
 * measurement feeding hot-tier admission (core::HotTierCache keeps
 * its own counters on the serving path; this accumulator is the
 * offline/tooling view: feed it a session's batches, then read per-
 * table Fig. 5 stats or the globally hottest rows to size and warm a
 * tier before serving).
 *
 * Dense fixed geometry (tables x rows of uint64), so observation is
 * a single array increment — cheap enough to ride a dispatch loop.
 * Not thread-safe; one accumulator per observing thread.
 */
class AccessAccumulator
{
  public:
    /** @throws std::invalid_argument on zero tables or rows. */
    AccessAccumulator(std::size_t tables, std::size_t rows);

    /** Counts @p n accesses of (@p table, @p row).
     *  @throws std::out_of_range on out-of-range coordinates. */
    void observe(std::size_t table, RowIndex row, std::uint64_t n = 1);

    /** Counts every lookup index of @p batch (table t's stream is
     *  batch.indices[t]).
     *  @throws std::out_of_range when the batch has more tables than
     *          the accumulator or an index is out of range. */
    void observeBatch(const core::SparseBatch& batch);

    std::size_t numTables() const { return _tables; }
    std::size_t rows() const { return _rows; }

    std::uint64_t count(std::size_t table, RowIndex row) const;
    std::uint64_t totalAccesses() const { return _total; }

    /** Snapshot of table @p t's Fig. 5 stats (sorted counts over the
     *  rows touched so far). */
    AccessStats tableStats(std::size_t t) const;

    /**
     * The @p k globally hottest (table, row) pairs, count descending
     * with (table, row) ascending as the deterministic tie-break —
     * exactly the admission order core::HotTierCache promotes in, so
     * replaying these into HotTierCache::recordAccess pre-warms the
     * tier with the set an online epoch would have picked.
     */
    std::vector<std::pair<std::size_t, RowIndex>>
    hottest(std::size_t k) const;

    /** Halves-style exponential decay: every count is scaled by
     *  @p factor in [0, 1] (ages out a rotated hot set, mirroring the
     *  tier's per-epoch decay).
     *  @throws std::invalid_argument on factor outside [0, 1]. */
    void decay(double factor);

    void reset();

  private:
    std::size_t _tables;
    std::size_t _rows;
    std::vector<std::uint64_t> _counts; //!< [table * rows + row]
    std::uint64_t _total = 0;
};

} // namespace dlrmopt::traces

#endif // DLRMOPT_TRACE_STATS_HPP
