/**
 * @file
 * Access-count statistics over index traces (Sec. 3.1.1, Fig. 5).
 */

#ifndef DLRMOPT_TRACE_STATS_HPP
#define DLRMOPT_TRACE_STATS_HPP

#include <cstdint>
#include <vector>

#include "core/types.hpp"

namespace dlrmopt::traces
{

/**
 * Per-row access-count summary for one table's index stream.
 */
struct AccessStats
{
    /** Access count per touched row, sorted descending (Fig. 5). */
    std::vector<std::uint64_t> sortedCounts;

    std::uint64_t totalAccesses = 0;

    std::size_t uniqueRows() const { return sortedCounts.size(); }

    /** Fraction of accessed ids that are unique (Sec. 5's metric). */
    double
    uniqueFraction() const
    {
        return totalAccesses
            ? static_cast<double>(uniqueRows()) /
                  static_cast<double>(totalAccesses)
            : 0.0;
    }

    /**
     * Share of all accesses captured by the @p k hottest rows — the
     * "hot rows dominate" metric prior NMP/caching work relies on.
     */
    double topKShare(std::size_t k) const;
};

/**
 * Computes access statistics over an index stream.
 */
AccessStats computeAccessStats(const std::vector<RowIndex>& stream);

} // namespace dlrmopt::traces

#endif // DLRMOPT_TRACE_STATS_HPP
