#include "sched/ht_thread_pool.hpp"

#include <stdexcept>
#include <utility>

namespace dlrmopt::sched
{

HtThreadPool::HtThreadPool(const Topology& topo, bool pin)
{
    const std::size_t cores = topo.numPhysicalCores();
    if (cores == 0)
        throw std::invalid_argument("topology has no cores");

    _queues.reserve(cores);
    for (std::size_t c = 0; c < cores; ++c)
        _queues.push_back(std::make_unique<CoreQueue>());

    for (std::size_t c = 0; c < cores; ++c) {
        for (int cpu : topo.siblings(c)) {
            _workers.emplace_back(&HtThreadPool::workerLoop, this, c,
                                  pin ? cpu : -1);
        }
    }
}

HtThreadPool::~HtThreadPool()
{
    _stop.store(true);
    for (auto& q : _queues) {
        std::lock_guard<std::mutex> lk(q->mtx);
        q->cv.notify_all();
    }
    for (auto& w : _workers) {
        if (w.joinable())
            w.join();
    }
    // Workers drain their queues before exiting, so normally nothing
    // is left. If anything does remain (a worker wedged mid-task),
    // settle the futures so submitters blocked on get() are released
    // rather than deadlocked on a broken promise.
    for (auto& q : _queues) {
        for (auto& e : q->tasks) {
            e.prom.set_exception(std::make_exception_ptr(
                std::runtime_error("HtThreadPool shut down before "
                                   "task ran")));
        }
        q->tasks.clear();
    }
}

std::future<void>
HtThreadPool::submit(std::size_t core, Task task)
{
    if (core >= _queues.size())
        throw std::out_of_range("no such core in pool");
    Entry e;
    e.fn = std::move(task);
    auto fut = e.prom.get_future();
    _pending.fetch_add(1);
    {
        std::lock_guard<std::mutex> lk(_queues[core]->mtx);
        _queues[core]->tasks.push_back(std::move(e));
    }
    _queues[core]->cv.notify_one();
    return fut;
}

std::future<void>
HtThreadPool::submitAny(Task task)
{
    // Pick the shortest queue; round-robin breaks ties so successive
    // batches spread across cores like the paper's batch-per-core
    // mapping (Sec. 3.2).
    std::size_t best = _rr.fetch_add(1) % _queues.size();
    std::size_t best_len = SIZE_MAX;
    for (std::size_t i = 0; i < _queues.size(); ++i) {
        const std::size_t c = (best + i) % _queues.size();
        std::lock_guard<std::mutex> lk(_queues[c]->mtx);
        const std::size_t len =
            _queues[c]->tasks.size() + _queues[c]->inflight;
        if (len < best_len) {
            best_len = len;
            best = c;
            if (len == 0)
                break;
        }
    }
    return submit(best, std::move(task));
}

void
HtThreadPool::waitIdle()
{
    std::unique_lock<std::mutex> lk(_idleMtx);
    _idleCv.wait(lk, [this] { return _pending.load() == 0; });
}

CoreHealth
HtThreadPool::health(std::size_t core) const
{
    if (core >= _queues.size())
        throw std::out_of_range("no such core in pool");
    CoreHealth h;
    h.completed = _queues[core]->completed.load();
    h.failed = _queues[core]->failed.load();
    return h;
}

std::uint64_t
HtThreadPool::totalFailed() const
{
    std::uint64_t n = 0;
    for (const auto& q : _queues)
        n += q->failed.load();
    return n;
}

void
HtThreadPool::workerLoop(std::size_t core, int cpu)
{
    if (cpu >= 0)
        pinThreadToCpu(cpu);

    CoreQueue& q = *_queues[core];
    while (true) {
        Entry e;
        {
            std::unique_lock<std::mutex> lk(q.mtx);
            q.cv.wait(lk, [&] {
                return _stop.load() || !q.tasks.empty();
            });
            if (q.tasks.empty()) {
                if (_stop.load())
                    return;
                continue;
            }
            e = std::move(q.tasks.front());
            q.tasks.pop_front();
            ++q.inflight;
        }

        // Bookkeeping must survive *any* exit path of the task —
        // otherwise a throwing task leaves inflight/pending stuck and
        // waitIdle()/the destructor deadlock on a poisoned queue.
        struct Bookkeeper
        {
            HtThreadPool *pool;
            CoreQueue *q;

            ~Bookkeeper()
            {
                {
                    std::lock_guard<std::mutex> lk(q->mtx);
                    --q->inflight;
                }
                if (pool->_pending.fetch_sub(1) == 1) {
                    std::lock_guard<std::mutex> lk(pool->_idleMtx);
                    pool->_idleCv.notify_all();
                }
            }
        } book{this, &q};

        try {
            e.fn();
            e.prom.set_value();
            q.completed.fetch_add(1);
        } catch (...) {
            q.failed.fetch_add(1);
            try {
                e.prom.set_exception(std::current_exception());
            } catch (...) {
                // Future already abandoned; nothing to report to.
            }
        }
    }
}

} // namespace dlrmopt::sched
