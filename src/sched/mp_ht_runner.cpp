#include "sched/mp_ht_runner.hpp"

#include <chrono>
#include <future>

namespace dlrmopt::sched
{

MpHtRunner::MpHtRunner(const core::DlrmModel& model, const Topology& topo,
                       const core::PrefetchSpec& pf, bool pin)
    : _model(model), _pf(pf), _pool(topo, pin)
{
}

MpHtRunStats
MpHtRunner::run(const core::Tensor& dense,
                const std::vector<core::SparseBatch>& batches,
                std::vector<std::vector<float>> *predictions)
{
    using Clock = std::chrono::steady_clock;
    const std::size_t cores = _pool.numCores();
    if (predictions)
        predictions->assign(batches.size(), {});

    // One workspace per in-flight batch: the bottom-MLP task and the
    // embedding task of the same batch write disjoint buffers, and
    // consecutive batches on one core never alias each other's
    // workspace (a per-core workspace would race once the sibling
    // starts the next batch's bottom-MLP early).
    std::vector<core::DlrmWorkspace> ws(batches.size());

    const auto t0 = Clock::now();
    std::vector<std::future<void>> done;
    done.reserve(batches.size() * 2);

    for (std::size_t b = 0; b < batches.size(); ++b) {
        const std::size_t core_id = b % cores;
        const auto& sparse = batches[b];
        core::DlrmWorkspace& w = ws[b];

        // Stage task 1: bottom MLP on one hyperthread of core_id. On
        // failure the promise must still be settled, or the sibling
        // stage task below would wait on it forever.
        auto bottom_done = std::make_shared<std::promise<void>>();
        auto bottom_fut = bottom_done->get_future().share();
        done.push_back(
            _pool.submit(core_id, [this, &dense, &w, bottom_done] {
                try {
                    _model.bottomForward(dense, w.bottomOut);
                    bottom_done->set_value();
                } catch (...) {
                    bottom_done->set_exception(
                        std::current_exception());
                    throw;
                }
            }));

        // Stage task 2: embedding on the sibling, then the join +
        // interaction + top MLP on whichever thread gets here.
        done.push_back(_pool.submit(
            core_id,
            [this, &sparse, &w, bottom_fut, predictions, b] {
                _model.embeddingForward(sparse, w.embOut, _pf);
                bottom_fut.get(); // both stage outputs ready (or rethrow)
                _model.interactionForward(w.bottomOut, w.embOut,
                                          sparse.batchSize,
                                          w.interOut);
                _model.topForward(w.interOut, w.pred);
                if (predictions) {
                    (*predictions)[b].assign(
                        w.pred.data(),
                        w.pred.data() + w.pred.size());
                }
            }));
    }
    // Wait for every task before propagating any failure: the tasks
    // reference the local workspaces, so unwinding early would free
    // buffers still being written by in-flight siblings.
    for (auto& f : done)
        f.wait();
    for (auto& f : done)
        f.get();

    MpHtRunStats st;
    st.batches = batches.size();
    st.totalMs = std::chrono::duration<double, std::milli>(
                     Clock::now() - t0)
                     .count();
    return st;
}

} // namespace dlrmopt::sched
