#include "sched/topology.hpp"

#include <pthread.h>
#include <sched.h>

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>

namespace dlrmopt::sched
{

namespace
{

/**
 * Parses a sysfs cpulist string like "0-3,8,10-11" into ids.
 */
std::vector<int>
parseCpuList(const std::string& s)
{
    std::vector<int> out;
    std::stringstream ss(s);
    std::string tok;
    while (std::getline(ss, tok, ',')) {
        const auto dash = tok.find('-');
        if (dash == std::string::npos) {
            if (!tok.empty())
                out.push_back(std::stoi(tok));
        } else {
            const int lo = std::stoi(tok.substr(0, dash));
            const int hi = std::stoi(tok.substr(dash + 1));
            for (int c = lo; c <= hi; ++c)
                out.push_back(c);
        }
    }
    return out;
}

} // namespace

Topology
Topology::detect()
{
    const unsigned n = std::max(1u, std::thread::hardware_concurrency());

    // Group logical CPUs by their thread_siblings_list contents.
    std::map<std::string, std::vector<int>> groups;
    bool sysfs_ok = true;
    for (unsigned cpu = 0; cpu < n; ++cpu) {
        std::ifstream f("/sys/devices/system/cpu/cpu" +
                        std::to_string(cpu) +
                        "/topology/thread_siblings_list");
        std::string list;
        if (!f || !std::getline(f, list)) {
            sysfs_ok = false;
            break;
        }
        groups[list].push_back(static_cast<int>(cpu));
    }

    Topology t;
    if (sysfs_ok && !groups.empty()) {
        for (auto& [list, cpus] : groups) {
            // Prefer the canonical sibling order from sysfs itself.
            std::vector<int> sib = parseCpuList(list);
            if (sib.empty())
                sib = cpus;
            std::sort(sib.begin(), sib.end());
            t._cores.push_back(std::move(sib));
        }
        std::sort(t._cores.begin(), t._cores.end());
        return t;
    }

    // Fallback: assume one thread per core.
    for (unsigned cpu = 0; cpu < n; ++cpu)
        t._cores.push_back({static_cast<int>(cpu)});
    return t;
}

std::vector<Topology>
Topology::partition(std::size_t n) const
{
    if (n == 0 || n > _cores.size()) {
        throw std::invalid_argument(
            "Topology::partition: need 1.." +
            std::to_string(_cores.size()) + " groups, got " +
            std::to_string(n));
    }
    std::vector<Topology> groups(n);
    const std::size_t base = _cores.size() / n;
    const std::size_t extra = _cores.size() % n;
    std::size_t next = 0;
    for (std::size_t g = 0; g < n; ++g) {
        const std::size_t take = base + (g < extra ? 1 : 0);
        for (std::size_t c = 0; c < take; ++c)
            groups[g]._cores.push_back(_cores[next++]);
    }
    return groups;
}

PipelineSplit
Topology::pipelineSplit() const
{
    if (_cores.size() < 2) {
        throw std::invalid_argument(
            "Topology::pipelineSplit: need at least 2 physical cores, "
            "have " +
            std::to_string(_cores.size()));
    }
    auto groups = partition(2);
    return PipelineSplit{std::move(groups[0]), std::move(groups[1])};
}

Topology
Topology::synthetic(std::size_t cores, std::size_t threads_per_core)
{
    Topology t;
    int next = 0;
    for (std::size_t c = 0; c < cores; ++c) {
        std::vector<int> sib;
        for (std::size_t s = 0; s < threads_per_core; ++s)
            sib.push_back(next++);
        t._cores.push_back(std::move(sib));
    }
    return t;
}

bool
pinThreadToCpu(int cpu)
{
    cpu_set_t set;
    CPU_ZERO(&set);
    if (cpu < 0 || cpu >= CPU_SETSIZE)
        return false;
    CPU_SET(cpu, &set);
    return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
}

} // namespace dlrmopt::sched
