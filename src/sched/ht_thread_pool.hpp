/**
 * @file
 * Hyperthreading-aware thread pool.
 *
 * Reimplements the paper's PyTorch thread-pool modification (Sec.
 * 4.3): instead of one global task queue that any worker may steal
 * from, each *physical core* owns a private task queue served only by
 * the worker threads pinned to that core's hyperthreads. An inference
 * instance submitted to core c therefore always runs on core c, and
 * the two colocated stage tasks (embedding + bottom-MLP) land on
 * sibling hyperthreads.
 *
 * The pool is exception-safe by design: a task that throws settles
 * the submitter's future with the exception and bumps the core's
 * failure counter — workers never die and the pool stays usable, which
 * the fault-tolerant serving layer (src/serve/server.hpp) relies on to
 * turn injected task faults into retries instead of crashes.
 */

#ifndef DLRMOPT_SCHED_HT_THREAD_POOL_HPP
#define DLRMOPT_SCHED_HT_THREAD_POOL_HPP

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "sched/topology.hpp"

namespace dlrmopt::sched
{

/** Task outcome counters for one physical core's queue. */
struct CoreHealth
{
    std::uint64_t completed = 0; //!< tasks that ran to completion
    std::uint64_t failed = 0;    //!< tasks that exited via exception

    std::uint64_t total() const { return completed + failed; }
};

/**
 * Thread pool with one task queue per physical core and one worker
 * per hyperthread. Tasks are bound to a core and never migrate.
 */
class HtThreadPool
{
  public:
    using Task = std::function<void()>;

    /**
     * Spawns workers for every hyperthread in @p topo and pins them
     * (best effort) to their logical CPU.
     *
     * @param topo Core/sibling layout to build the pool on.
     * @param pin Attempt CPU affinity pinning when true.
     */
    explicit HtThreadPool(const Topology& topo, bool pin = true);

    /**
     * Drains queues and joins all workers. Safe even when tasks threw
     * or a worker was wedged mid-task: queued-but-unexecuted tasks get
     * their futures settled with a "pool shut down" error instead of
     * being silently dropped.
     */
    ~HtThreadPool();

    HtThreadPool(const HtThreadPool&) = delete;
    HtThreadPool& operator=(const HtThreadPool&) = delete;

    std::size_t numCores() const { return _queues.size(); }
    std::size_t numWorkers() const { return _workers.size(); }

    /**
     * Enqueues @p task on physical core @p core's private queue.
     *
     * @return Future completed when the task finishes. A task that
     *         throws settles the future with that exception (the
     *         worker survives and keeps serving its queue).
     */
    std::future<void> submit(std::size_t core, Task task);

    /**
     * Enqueues on the least-loaded core (round-robin tiebreak). Used
     * for data-parallel batch dispatch where any core will do.
     */
    std::future<void> submitAny(Task task);

    /** Blocks until every queue is empty and every worker is idle. */
    void waitIdle();

    /** Task outcome counters for core @p core (snapshot). */
    CoreHealth health(std::size_t core) const;

    /** Sum of failure counters across all cores. */
    std::uint64_t totalFailed() const;

  private:
    /** A queued task and the promise its submitter observes. */
    struct Entry
    {
        Task fn;
        std::promise<void> prom;
    };

    struct CoreQueue
    {
        std::mutex mtx;
        std::condition_variable cv;
        std::deque<Entry> tasks;
        std::size_t inflight = 0; //!< tasks popped but not finished
        std::atomic<std::uint64_t> completed{0};
        std::atomic<std::uint64_t> failed{0};
    };

    void workerLoop(std::size_t core, int cpu);

    std::vector<std::unique_ptr<CoreQueue>> _queues;
    std::vector<std::thread> _workers;
    std::atomic<bool> _stop{false};
    std::atomic<std::size_t> _rr{0};

    std::mutex _idleMtx;
    std::condition_variable _idleCv;
    std::atomic<std::size_t> _pending{0};
};

} // namespace dlrmopt::sched

#endif // DLRMOPT_SCHED_HT_THREAD_POOL_HPP
