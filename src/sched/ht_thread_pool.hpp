/**
 * @file
 * Hyperthreading-aware thread pool.
 *
 * Reimplements the paper's PyTorch thread-pool modification (Sec.
 * 4.3): instead of one global task queue that any worker may steal
 * from, each *physical core* owns a private task queue served only by
 * the worker threads pinned to that core's hyperthreads. An inference
 * instance submitted to core c therefore always runs on core c, and
 * the two colocated stage tasks (embedding + bottom-MLP) land on
 * sibling hyperthreads.
 */

#ifndef DLRMOPT_SCHED_HT_THREAD_POOL_HPP
#define DLRMOPT_SCHED_HT_THREAD_POOL_HPP

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "sched/topology.hpp"

namespace dlrmopt::sched
{

/**
 * Thread pool with one task queue per physical core and one worker
 * per hyperthread. Tasks are bound to a core and never migrate.
 */
class HtThreadPool
{
  public:
    using Task = std::function<void()>;

    /**
     * Spawns workers for every hyperthread in @p topo and pins them
     * (best effort) to their logical CPU.
     *
     * @param topo Core/sibling layout to build the pool on.
     * @param pin Attempt CPU affinity pinning when true.
     */
    explicit HtThreadPool(const Topology& topo, bool pin = true);

    /** Drains queues and joins all workers. */
    ~HtThreadPool();

    HtThreadPool(const HtThreadPool&) = delete;
    HtThreadPool& operator=(const HtThreadPool&) = delete;

    std::size_t numCores() const { return _queues.size(); }
    std::size_t numWorkers() const { return _workers.size(); }

    /**
     * Enqueues @p task on physical core @p core's private queue.
     *
     * @return Future completed when the task finishes (exceptions are
     *         propagated through the future).
     */
    std::future<void> submit(std::size_t core, Task task);

    /**
     * Enqueues on the least-loaded core (round-robin tiebreak). Used
     * for data-parallel batch dispatch where any core will do.
     */
    std::future<void> submitAny(Task task);

    /** Blocks until every queue is empty and every worker is idle. */
    void waitIdle();

  private:
    struct CoreQueue
    {
        std::mutex mtx;
        std::condition_variable cv;
        std::deque<std::packaged_task<void()>> tasks;
        std::size_t inflight = 0; //!< tasks popped but not finished
    };

    void workerLoop(std::size_t core, int cpu);

    std::vector<std::unique_ptr<CoreQueue>> _queues;
    std::vector<std::thread> _workers;
    std::atomic<bool> _stop{false};
    std::atomic<std::size_t> _rr{0};

    std::mutex _idleMtx;
    std::condition_variable _idleCv;
    std::atomic<std::size_t> _pending{0};
};

} // namespace dlrmopt::sched

#endif // DLRMOPT_SCHED_HT_THREAD_POOL_HPP
