/**
 * @file
 * CPU topology discovery: which logical CPUs are SMT siblings on the
 * same physical core.
 *
 * The paper's MP-HT design (Sec. 4.3) requires pinning the embedding
 * thread and the bottom-MLP thread to the two hyperthreads of one
 * physical core, and its thread-pool change gives each physical core
 * a private task queue. Both need the sibling map provided here.
 */

#ifndef DLRMOPT_SCHED_TOPOLOGY_HPP
#define DLRMOPT_SCHED_TOPOLOGY_HPP

#include <cstddef>
#include <vector>

namespace dlrmopt::sched
{

struct PipelineSplit;

/**
 * Grouping of logical CPUs by physical core.
 */
class Topology
{
  public:
    /** Logical CPU ids belonging to physical core @p core. */
    const std::vector<int>&
    siblings(std::size_t core) const
    {
        return _cores[core];
    }

    std::size_t numPhysicalCores() const { return _cores.size(); }

    std::size_t
    numLogicalCpus() const
    {
        std::size_t n = 0;
        for (const auto& c : _cores)
            n += c.size();
        return n;
    }

    /** True when at least one core exposes two or more hyperthreads. */
    bool
    smtAvailable() const
    {
        for (const auto& c : _cores) {
            if (c.size() >= 2)
                return true;
        }
        return false;
    }

    /**
     * Reads the host topology from sysfs
     * (cpuN/topology/thread_siblings_list). Falls back to one logical
     * CPU per core using the online CPU count when sysfs is absent.
     */
    static Topology detect();

    /**
     * Splits the physical cores into @p n disjoint contiguous groups
     * of near-equal size (the first cores % n groups get one extra
     * core). Each group is a standalone Topology suitable for one
     * serving instance, so a Router over N instances can give every
     * instance its own private core set with no sharing.
     *
     * @throws std::invalid_argument when n is zero or exceeds
     *         numPhysicalCores().
     */
    std::vector<Topology> partition(std::size_t n) const;

    /**
     * Builds a synthetic topology (used in tests and on hosts without
     * SMT to exercise the HT-aware code paths).
     *
     * @param cores Number of physical cores.
     * @param threads_per_core Hyperthreads per core.
     */
    static Topology synthetic(std::size_t cores,
                              std::size_t threads_per_core);

    /**
     * Gather/compute core-group split for the stage-pipelined serving
     * dispatch: the memory-bound embedding-gather stage and the
     * compute-bound interaction+MLP stage run on disjoint core groups
     * so dispatch k+1's gather overlaps dispatch k's compute. The
     * gather group comes first (and takes the extra core when the
     * count is odd — the gather stage is the bandwidth-bound one the
     * paper shows dominating at-scale serving).
     *
     * @throws std::invalid_argument when fewer than two physical
     *         cores are available (no disjoint groups to overlap on).
     */
    PipelineSplit pipelineSplit() const;

  private:
    std::vector<std::vector<int>> _cores;
};

/** Disjoint core groups for the stage-pipelined serving dispatch. */
struct PipelineSplit
{
    Topology gather;  //!< cores for the embedding-gather stage
    Topology compute; //!< cores for the interaction+MLP stage
};

/**
 * Pins the calling thread to logical CPU @p cpu.
 *
 * @retval true on success; false when affinity cannot be set (e.g.
 *         synthetic topologies or restricted containers), which is
 *         harmless — threads then float.
 */
bool pinThreadToCpu(int cpu);

} // namespace dlrmopt::sched

#endif // DLRMOPT_SCHED_TOPOLOGY_HPP
