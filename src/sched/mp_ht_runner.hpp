/**
 * @file
 * MP-HT batch runner: the paper's Sec. 4.3 deployment layout on real
 * hardware. Each physical core owns one inference instance; within a
 * core, the embedding stage runs on one hyperthread while the
 * bottom-MLP runs on the sibling (via the per-core task queues of
 * HtThreadPool), then interaction + top-MLP complete the batch.
 *
 * On machines without SMT the runner still works — each "sibling"
 * pair degenerates to one worker and the stages serialize — so the
 * same code path is testable everywhere.
 */

#ifndef DLRMOPT_SCHED_MP_HT_RUNNER_HPP
#define DLRMOPT_SCHED_MP_HT_RUNNER_HPP

#include <cstddef>
#include <vector>

#include "core/dlrm.hpp"
#include "core/scheme.hpp"
#include "sched/ht_thread_pool.hpp"

namespace dlrmopt::sched
{

/** Aggregate results of a runner invocation. */
struct MpHtRunStats
{
    std::size_t batches = 0;
    double totalMs = 0.0; //!< wall-clock for the whole batch stream

    double
    avgBatchMs() const
    {
        return batches
            ? totalMs / static_cast<double>(batches)
            : 0.0;
    }
};

/**
 * Runs DLRM inference batches across physical cores with the MP-HT
 * stage colocation.
 */
class MpHtRunner
{
  public:
    /**
     * @param model Model to serve (not owned; must outlive runner).
     * @param topo Core topology; one inference instance per physical
     *        core, stages colocated on its hyperthreads.
     * @param pf Prefetch spec for the embedding stage (Integrated
     *        scheme when enabled; MP-HT-only when default).
     * @param pin Pin workers to their logical CPUs (best effort).
     */
    MpHtRunner(const core::DlrmModel& model, const Topology& topo,
               const core::PrefetchSpec& pf = {}, bool pin = true);

    /**
     * Processes all batches; batch b is dispatched to physical core
     * b % cores. Blocks until every batch completes.
     *
     * @param dense Dense features shared across batches.
     * @param batches Sparse inputs.
     * @param predictions Optional out-param: CTR predictions per
     *        batch (resized to match).
     *
     * @throws Rethrows the first stage-task failure (e.g.
     *         core::IndexError from a poisoned batch) — but only
     *         after every in-flight task has finished, so workspaces
     *         are never freed under a running sibling.
     */
    MpHtRunStats run(const core::Tensor& dense,
                     const std::vector<core::SparseBatch>& batches,
                     std::vector<std::vector<float>> *predictions =
                         nullptr);

  private:
    const core::DlrmModel& _model;
    core::PrefetchSpec _pf;
    HtThreadPool _pool;
};

} // namespace dlrmopt::sched

#endif // DLRMOPT_SCHED_MP_HT_RUNNER_HPP
