#include "core/mlp.hpp"

#include <cassert>
#include <stdexcept>
#include <string>

#include "core/gemm.hpp"

namespace dlrmopt::core
{

Mlp::Mlp(const std::vector<std::size_t>& dims, std::uint64_t seed)
    : _dims(dims)
{
    if (dims.size() < 2)
        throw std::invalid_argument("Mlp needs at least input+one layer");
    for (std::size_t l = 0; l + 1 < dims.size(); ++l) {
        Tensor w(dims[l + 1], dims[l]);
        // Scale roughly like Xavier init so activations stay bounded.
        float scale = 1.0f / static_cast<float>(std::max<std::size_t>(
                                 1, dims[l] / 8 + 1));
        w.randomize(mix64(seed + l), scale);
        _weights.push_back(std::move(w));
        std::vector<float> b(dims[l + 1]);
        for (std::size_t i = 0; i < b.size(); ++i) {
            b[i] = static_cast<float>(
                       toUnitInterval(mix64(seed ^ (l * 131 + i))) - 0.5) *
                   0.02f;
        }
        _biases.push_back(std::move(b));
        _packed.emplace_back(_weights.back().data(), dims[l],
                             dims[l + 1]);
        _packedInt8.emplace_back(_weights.back().data(), dims[l],
                                 dims[l + 1]);
    }
}

Mlp::Mlp(const std::vector<std::size_t>& dims,
         std::vector<Tensor> weights,
         std::vector<std::vector<float>> biases)
    : _dims(dims), _weights(std::move(weights)),
      _biases(std::move(biases))
{
    if (dims.size() < 2)
        throw std::invalid_argument("Mlp needs at least input+one layer");
    const std::size_t layers = dims.size() - 1;
    if (_weights.size() != layers || _biases.size() != layers) {
        throw std::invalid_argument(
            "Mlp: adopted parameter count does not match the size "
            "list");
    }
    for (std::size_t l = 0; l < layers; ++l) {
        if (_weights[l].rows() != dims[l + 1] ||
            _weights[l].cols() != dims[l] ||
            _biases[l].size() != dims[l + 1]) {
            throw std::invalid_argument(
                "Mlp: adopted layer " + std::to_string(l) +
                " has the wrong shape");
        }
        _packed.emplace_back(_weights[l].data(), dims[l], dims[l + 1]);
        _packedInt8.emplace_back(_weights[l].data(), dims[l],
                                 dims[l + 1]);
    }
}

std::size_t
Mlp::packedBytes() const
{
    std::size_t n = 0;
    for (const auto& p : _packed)
        n += p.bytes();
    return n;
}

std::size_t
Mlp::maxPaddedK() const
{
    std::size_t n = 0;
    for (const auto& p : _packedInt8)
        n = std::max(n, p.paddedK());
    return n;
}

double
Mlp::flopsPerSample() const
{
    double f = 0.0;
    for (std::size_t l = 0; l + 1 < _dims.size(); ++l)
        f += 2.0 * static_cast<double>(_dims[l]) *
             static_cast<double>(_dims[l + 1]);
    return f;
}

void
Mlp::forward(const Tensor& in, Tensor& out) const
{
    assert(in.cols() == inputDim());
    const std::size_t batch = in.rows();

    Tensor scratch_a = in;  // current activations
    Tensor scratch_b;
    for (std::size_t l = 0; l < _weights.size(); ++l) {
        const bool last = (l + 1 == _weights.size());
        const std::size_t od = _dims[l + 1];
        Tensor& dst = last ? out : scratch_b;
        dst.reshape(batch, od);
        denseLayerForwardPacked(scratch_a.data(), batch, _packed[l],
                                _biases[l].data(), dst.data(), !last);
        if (!last)
            std::swap(scratch_a, scratch_b);
    }
}

void
Mlp::forward(const Tensor& in, Tensor& out, Tensor& scratch_a,
             Tensor& scratch_b) const
{
    assert(in.cols() == inputDim());
    const std::size_t batch = in.rows();

    const float *src = in.data();
    for (std::size_t l = 0; l < _weights.size(); ++l) {
        const bool last = (l + 1 == _weights.size());
        const std::size_t od = _dims[l + 1];
        Tensor& dst = last ? out : (l % 2 == 0 ? scratch_a : scratch_b);
        dst.reshape(batch, od);
        denseLayerForwardPacked(src, batch, _packed[l],
                                _biases[l].data(), dst.data(), !last);
        src = dst.data();
    }
}

void
Mlp::forwardInt8(const Tensor& in, Tensor& out) const
{
    Tensor scratch_a, scratch_b;
    std::vector<std::uint8_t> qscratch;
    forwardInt8(in, out, scratch_a, scratch_b, qscratch);
}

void
Mlp::forwardInt8(const Tensor& in, Tensor& out, Tensor& scratch_a,
                 Tensor& scratch_b,
                 std::vector<std::uint8_t>& qscratch) const
{
    assert(in.cols() == inputDim());
    const std::size_t batch = in.rows();

    const float *src = in.data();
    for (std::size_t l = 0; l < _weights.size(); ++l) {
        const bool last = (l + 1 == _weights.size());
        const std::size_t od = _dims[l + 1];
        Tensor& dst = last ? out : (l % 2 == 0 ? scratch_a : scratch_b);
        dst.reshape(batch, od);
        const PackedWeightsInt8& w = _packedInt8[l];
        qscratch.resize(batch * w.paddedK());
        const QuantParams qp = quantizeActivationsInt8(
            src, batch, w.inDim(), w.paddedK(), qscratch.data());
        denseLayerForwardPackedInt8(qscratch.data(), batch, w,
                                    _biases[l].data(), dst.data(),
                                    !last, qp.scale, qp.bias);
        src = dst.data();
    }
}

void
Mlp::forwardFromTransposed(const Tensor& in_t, Tensor& out,
                           Tensor& scratch_a, Tensor& scratch_b) const
{
    assert(in_t.rows() == inputDim());
    const std::size_t batch = in_t.cols();

    const float *src = nullptr;
    for (std::size_t l = 0; l < _weights.size(); ++l) {
        const bool last = (l + 1 == _weights.size());
        const std::size_t od = _dims[l + 1];
        Tensor& dst = last ? out : (l % 2 == 0 ? scratch_a : scratch_b);
        dst.reshape(batch, od);
        if (l == 0) {
            // First layer consumes the feature-major input through
            // the n-major engine; its output is row-major, so the
            // rest of the ping-pong is the standard path.
            denseLayerForwardPackedTrans(in_t.data(), batch,
                                         _packed[0], _biases[0].data(),
                                         dst.data(), !last);
        } else {
            denseLayerForwardPacked(src, batch, _packed[l],
                                    _biases[l].data(), dst.data(),
                                    !last);
        }
        src = dst.data();
    }
}

} // namespace dlrmopt::core
