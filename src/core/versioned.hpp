/**
 * @file
 * Epoch'd model versioning for zero-downtime live reload.
 *
 * A serving instance never serves "the model"; it serves *a pinned
 * version*. VersionedModel holds the current ModelVersion behind a
 * shared_ptr: a dispatch pins the version it starts on (one atomic
 * refcount bump) and completes entirely on it even if the fleet swaps
 * mid-flight — no batch ever mixes versions. Publishing a new version
 * moves the old one to a retiring list; a retired version's memory is
 * reclaimed only when its last pin drains (use_count falls to the
 * list's own reference), so a swap is wait-free for readers and
 * allocation-free on the serving path.
 *
 * Each ModelVersion carries a fingerprint folded from its version id,
 * weight seed, dtype, and the golden probe predictions; dispatch
 * paths assert it so "two instances silently serving different bytes
 * under one version id" is a loud failure, not a drift.
 */

#ifndef DLRMOPT_CORE_VERSIONED_HPP
#define DLRMOPT_CORE_VERSIONED_HPP

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "core/dlrm.hpp"
#include "core/embedding_store.hpp"
#include "core/model_config.hpp"

namespace dlrmopt::core
{

/**
 * One immutable published model version: the store, a full-view model
 * over it, and identity metadata. Instances share one ModelVersion
 * per (tenant, version id); replicas of the same seed are
 * bitwise-equal, so sharing the model view changes no prediction.
 */
struct ModelVersion
{
    /** Monotonic caller-assigned version id (1 = the boot version). */
    std::uint64_t version = 0;

    /** Seed the weights were built from (0 for snapshot loads whose
     *  seed metadata was 0). */
    std::uint64_t weightSeed = 0;

    ModelConfig cfg;

    /** Mutable handle for scrub/repair; serving reads are const. */
    std::shared_ptr<EmbeddingStore> store;

    /** Full view with this version's exact MLP weights. */
    std::shared_ptr<const DlrmModel> model;

    /** Identity fold over (version, seed, dtype, golden probe). */
    std::uint64_t fingerprint = 0;

    /**
     * Builds a version in-memory from a seed (the boot path and the
     * "push a retrained model" simulation): store + replica model +
     * fingerprint, all deterministic in (cfg, seed, dtype).
     */
    static std::shared_ptr<const ModelVersion>
    build(const ModelConfig& cfg, std::uint64_t version,
          std::uint64_t seed, EmbDtype dtype = EmbDtype::Fp32,
          std::size_t blockRows = 256);

    /**
     * Wraps already-materialized parts (a snapshot load) into a
     * published version.
     */
    static std::shared_ptr<const ModelVersion>
    adopt(const ModelConfig& cfg, std::uint64_t version,
          std::uint64_t seed, std::shared_ptr<EmbeddingStore> store,
          std::shared_ptr<const DlrmModel> model);
};

/**
 * The per-tenant version holder: one current version plus the
 * retiring tail. Thread-safe; current() is the only operation on the
 * serving path and costs one mutex acquire + one shared_ptr copy.
 */
class VersionedModel
{
  public:
    explicit VersionedModel(
        std::shared_ptr<const ModelVersion> initial);

    /** Pins and returns the current version. */
    std::shared_ptr<const ModelVersion> current() const;

    /** The current version id without pinning. */
    std::uint64_t currentVersion() const;

    /**
     * Atomically swaps @p next in as current; the previous version
     * joins the retiring list until its pins drain.
     *
     * @throws std::invalid_argument on a null version or a version id
     *         not strictly greater than the current one (ids are
     *         monotonic; a rollback *re-publishes* the old bytes
     *         under a fresh id rather than reusing a stale one).
     */
    void publish(std::shared_ptr<const ModelVersion> next);

    /**
     * Drops every retiring version whose last external pin has
     * drained (use_count() == 1: only the list itself). Called from
     * the fleet's virtual-clock loop after completed dispatches
     * release their pins. Returns how many versions were reclaimed.
     */
    std::size_t retireDrained();

    /** Retiring versions still pinned by in-flight work. */
    std::size_t retiringCount() const;

    /** Total publishes (excluding the initial version). */
    std::size_t published() const { return _published; }

    /** Total retiring versions fully reclaimed. */
    std::size_t retired() const { return _retired; }

  private:
    mutable std::mutex _mu;
    std::shared_ptr<const ModelVersion> _current;
    std::vector<std::shared_ptr<const ModelVersion>> _retiring;
    std::size_t _published = 0;
    std::size_t _retired = 0;
};

} // namespace dlrmopt::core

#endif // DLRMOPT_CORE_VERSIONED_HPP
