#include "core/tensor.hpp"

namespace dlrmopt::core
{

void
Tensor::randomize(std::uint64_t seed, float scale)
{
    for (std::size_t i = 0; i < _data.size(); ++i) {
        double u = toUnitInterval(mix64(seed ^ (i * 0x9e3779b97f4a7c15ull)));
        _data[i] = static_cast<float>((2.0 * u - 1.0) * scale);
    }
}

} // namespace dlrmopt::core
