/**
 * @file
 * Software-managed hot tier over the shared cold EmbeddingStore.
 *
 * The paper's access streams are heavily skewed (Sec. 3: 3/24/60%
 * unique fractions with small power-law hot sets), yet the flat bag
 * path pays the full DRAM gather cost for every row. A HotTierCache
 * pins verbatim copies of the hottest rows in one contiguous,
 * 64B-aligned buffer sized from a byte budget — the CPU analog of the
 * hot/cold near-memory split in UPMEM-DLRM — so the dominant fraction
 * of lookups lands in a few MB of LLC-resident memory instead of a
 * multi-GB scatter, and needs no software prefetch (the tier IS the
 * prefetch).
 *
 * Three properties the serving layer depends on:
 *
 *  - **Bitwise identity.** Rows are copied verbatim at the store's
 *    dtype (fp32 floats, bf16 patterns, fused int8 rows) and
 *    accumulated by the exact per-row kernels the cold bag dispatches
 *    to, in the same stream order — predictions are bit-for-bit
 *    identical with the tier on or off, at every EmbDtype and
 *    SimdLevel. The tier is purely a placement optimization.
 *
 *  - **Counted admission, epoch'd promotion.** Every served lookup
 *    bumps a per-row access counter (relaxed atomics — the fast path
 *    takes a shared lock only). On an epoch boundary (a lookup-count
 *    trigger, or an explicit call) the top rows by count are promoted
 *    and stale residents demoted, with counters decayed so the tier
 *    tracks hot-set drift mid-session instead of fossilizing the
 *    first hour's hot set.
 *
 *  - **Tiered integrity.** The tier is one more DRAM-resident copy,
 *    so it checksums like the cold store: per-block FNV-1a sums over
 *    the pinned slots, verify/scrub/repair/quarantine. A corrupt tier
 *    block is quarantined (probes fall through to the intact cold
 *    row — still the right bytes) and repaired by re-copying from the
 *    cold store; zero wrong predictions, same guarantee as cold-store
 *    corruption.
 */

#ifndef DLRMOPT_CORE_HOT_TIER_HPP
#define DLRMOPT_CORE_HOT_TIER_HPP

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <vector>

#include "core/embedding_store.hpp"

namespace dlrmopt::core
{

/** Hot-tier sizing, admission, and integrity knobs. */
struct HotTierConfig
{
    /**
     * Byte budget for the pinned slot buffer. Capacity in rows is
     * budgetBytes / slot stride (the stored row size rounded up to a
     * 64 B line). 0 disables the tier: bags pass straight through to
     * the cold store.
     */
    std::size_t budgetBytes = 0;

    /**
     * Served lookups between automatic promotion/demotion epochs.
     * 0 means epochs run only when endEpoch() is called explicitly.
     */
    std::size_t epochLookups = 0;

    /**
     * Multiplicative access-counter decay applied at each epoch
     * boundary, in [0, 1): 0 forgets everything each epoch, values
     * near 1 remember long histories (and adapt slowly to drift).
     */
    double decay = 0.5;

    /** Minimum accesses in the current epoch window for a row to be
     *  considered for promotion (keeps one-hit wonders out). */
    std::uint32_t minAccesses = 2;

    /** Pinned slots per tier checksum block (mirrors the cold store's
     *  blockRows; the last block may be short). */
    std::size_t blockRows = 64;

    /**
     * Verify the tier blocks a bag's resident lookups touch before
     * accumulating — the tier-side mirror of the Router's
     * IntegrityConfig verify-touched path. A corrupt block is
     * quarantined and repaired from the cold store before any byte of
     * it is served, so even an unscrubbed flip causes zero wrong
     * predictions (at a per-bag verification cost).
     */
    bool verifyTouched = false;

    /** @throws std::invalid_argument on decay outside [0, 1), zero
     *          blockRows, or zero minAccesses. */
    void validate() const;
};

/** Counter snapshot (cumulative since construction). */
struct HotTierStats
{
    std::uint64_t hits = 0;        //!< lookups served from the tier
    std::uint64_t misses = 0;      //!< lookups that fell through
    std::uint64_t promotions = 0;  //!< rows newly pinned at an epoch
    std::uint64_t demotions = 0;   //!< rows evicted at an epoch
    std::uint64_t epochs = 0;      //!< promotion/demotion passes run

    std::uint64_t blocksScrubbed = 0;
    std::uint64_t corruptionsFound = 0;
    std::uint64_t blocksRepaired = 0;
    std::uint64_t blocksQuarantined = 0;

    std::size_t residentRows = 0;  //!< currently pinned rows
    std::size_t capacityRows = 0;  //!< budget in rows
    std::size_t residentBytes = 0; //!< pinned payload bytes

    double
    hitRate() const
    {
        const std::uint64_t n = hits + misses;
        return n == 0 ? 0.0
                      : static_cast<double>(hits) / static_cast<double>(n);
    }

    double
    occupancy() const
    {
        return capacityRows == 0
                   ? 0.0
                   : static_cast<double>(residentRows) /
                         static_cast<double>(capacityRows);
    }
};

/**
 * Per-instance replicated hot tier over one shared EmbeddingStore.
 *
 * Thread model: bag() and the read-only queries take a shared lock
 * (any number of serving threads probe concurrently; counters are
 * relaxed atomics). Epoch rebuilds, scrubbing, repair, retargeting,
 * and fault injection take the exclusive lock — promotion/demotion is
 * a stop-the-world swap, never a torn read.
 */
class HotTierCache
{
  public:
    /**
     * Builds an (initially empty) tier over @p cold. All tables of
     * the store share one slot buffer; rows from any table compete
     * for the same budget by access count.
     *
     * @throws std::invalid_argument when cfg fails validate() or the
     *         store is null.
     */
    HotTierCache(std::shared_ptr<const EmbeddingStore> cold,
                 const HotTierConfig& cfg);

    const HotTierConfig& config() const { return _cfg; }

    /** The cold store this tier currently fronts. */
    const std::shared_ptr<const EmbeddingStore>& coldStore() const
    {
        return _cold;
    }

    EmbDtype dtype() const { return _dtype; }

    /** Budget in pinned rows (budgetBytes / slotStride()). */
    std::size_t capacityRows() const { return _capacity; }

    /** Bytes one pinned slot occupies: storedRowBytes() rounded up to
     *  a 64 B cache line, so every slot starts line-aligned. */
    std::size_t slotStride() const { return _stride; }

    /**
     * True when this tier fronts exactly @p store — the guard every
     * execution path checks before probing. A dispatch pinned to a
     * different model version (canary, mid-rollout) fails the match
     * and gathers from its own store; the tier serves only the
     * version it was built (or last retargeted) against.
     */
    bool
    matches(const EmbeddingStore& store) const
    {
        return &store == _cold.get();
    }

    /**
     * Tiered embedding_bag over table @p table: bitwise-identical
     * output to coldStore()->table(table).bag(...), serving resident
     * rows from the pinned buffer. Every lookup bumps the row's
     * access counter. Software prefetch is issued only for lookups
     * that will fall through to the cold store — resident rows need
     * none (the prefetch-free fast path). May trigger an automatic
     * epoch when cfg.epochLookups is set.
     *
     * @throws IndexError exactly as the cold bag would.
     */
    void bag(std::size_t table, const RowIndex *indices,
             const RowIndex *offsets, std::size_t samples, float *out,
             const PrefetchSpec& pf = {});

    /**
     * Feeds @p n accesses of (table, row) into the admission counters
     * without serving — offline warmup from a trace before the first
     * epoch, or replaying hotness stats into a fresh tier.
     *
     * @throws std::invalid_argument on an out-of-range table/row.
     */
    void recordAccess(std::size_t table, RowIndex row,
                      std::uint32_t n = 1);

    /** True when (table, row) is currently pinned. */
    bool isResident(std::size_t table, RowIndex row) const;

    /** Current admission-counter value of (table, row). */
    std::uint32_t accessCount(std::size_t table, RowIndex row) const;

    /**
     * Runs one promotion/demotion epoch now: pins the top
     * capacityRows() rows by access count (those with at least
     * cfg.minAccesses), evicts the rest, copies bytes verbatim from
     * the cold store, rebuilds tier checksums, clears quarantines,
     * and decays every counter by cfg.decay.
     */
    void endEpoch();

    /// @name Tier integrity (mirrors the cold store's block API)
    /// @{

    /** Checksum blocks covering the slot buffer
     *  (ceil(capacityRows / cfg.blockRows)). */
    std::size_t numBlocks() const { return _numBlocks; }

    /** Tier block holding pinned slot @p slot. */
    std::size_t blockOfSlot(std::size_t slot) const
    {
        return slot / _cfg.blockRows;
    }

    /** True when block @p b's pinned bytes match its checksum. */
    bool verifyBlock(std::size_t b) const;

    /** Every tier block whose bytes no longer checksum. */
    std::vector<std::size_t> findCorruptBlocks() const;

    /**
     * Silently flips one stored-payload bit of the *pinned copy* of
     * (table, row) — the cold store is untouched, which is exactly
     * the hazard the tier adds. Returns false (no flip) when the row
     * is not resident.
     *
     * @throws std::invalid_argument on out-of-range table/row/bit.
     */
    bool flipBit(std::size_t table, RowIndex row, std::size_t bit);

    /** Marks block @p b quarantined: probes into it fall through to
     *  the cold store until it is repaired. */
    void quarantineBlock(std::size_t b);

    /** True when block @p b is quarantined. */
    bool blockQuarantined(std::size_t b) const;

    /**
     * Re-copies every pinned row of block @p b from the cold store,
     * recomputes its checksum, and lifts its quarantine. Unlike
     * cold-store repair (which regenerates from the build seed), tier
     * repair always has a source of truth one tier down.
     */
    void repairBlock(std::size_t b);

    /**
     * Verifies the next @p maxBlocks tier blocks of a round-robin
     * sweep (the scrubber's tick). A corrupt block is quarantined,
     * repaired from the cold store, and counted. Returns blocks
     * verified.
     */
    std::size_t scrubTick(std::size_t maxBlocks);

    /// @}

    /**
     * Re-pins the tier against a different store — the live-reload
     * commit / warm-restart path. The resident set and admission
     * counters carry over; every pinned row is re-copied verbatim
     * from @p cold and checksums rebuilt, so the tier serves the
     * *new* version's bytes from the first post-swap dispatch.
     *
     * Returns false (tier untouched) when @p cold's geometry or
     * dtype mismatches the tier's — e.g. a reload that changes
     * precision. The tier then keeps pointing at the old store, so
     * matches() fails against the new one and every dispatch falls
     * through to the cold path until a compatible retarget.
     *
     * @throws std::invalid_argument on a null store.
     */
    bool retarget(std::shared_ptr<const EmbeddingStore> cold);

    /** Drops every pinned row and zeroes the admission counters (a
     *  cold restart of the tier). Cumulative stats are kept. */
    void reset();

    HotTierStats stats() const;

  private:
    /** Row's flat index into _slotOf / _meta. */
    std::size_t
    flat(std::size_t table, std::size_t row) const
    {
        return table * _rows + row;
    }

    std::uint64_t computeBlockSum(std::size_t b) const;
    void repairBlockLocked(std::size_t b);
    void setBlockPtrsLocked(std::size_t b, bool present);
    void runEpochLocked();
    void maybeEndEpoch(std::size_t lookups);

    HotTierConfig _cfg;
    std::shared_ptr<const EmbeddingStore> _cold;
    std::size_t _tables;
    std::size_t _rows;
    EmbDtype _dtype;
    std::size_t _rowBytes;  //!< stored bytes per row (payload)
    std::size_t _stride;    //!< slot bytes (row rounded to 64 B)
    std::size_t _capacity;  //!< slots in the buffer
    std::size_t _numBlocks; //!< checksum blocks over the buffer

    mutable std::shared_mutex _mu;

    /** One contiguous, 64B-aligned pinned buffer for every slot. */
    std::vector<std::uint8_t, AlignedAllocator<std::uint8_t>> _slots;

    struct SlotRef
    {
        std::uint32_t table;
        std::uint32_t row;
    };
    std::vector<SlotRef> _slotRef;      //!< [slot] -> pinned row
    std::size_t _resident = 0;          //!< occupied slot count
    std::vector<std::int32_t> _slotOf;  //!< [table*rows] -> slot or -1

    /**
     * Per-row probe metadata in one 16-byte record: the pinned-bytes
     * pointer (null when the row is not resident *or* its block is
     * quarantined — the quarantine test is folded into the pointer at
     * every transition, all of which hold the exclusive lock) next to
     * the admission counter, deliberately on the same cache line so a
     * bag lookup's probe and counter bump touch one line, not two
     * scattered arrays.
     */
    struct RowMeta
    {
        const std::uint8_t *ptr = nullptr;
        std::atomic<std::uint32_t> count{0};
    };
    std::unique_ptr<RowMeta[]> _meta; //!< [table*rows]
    std::vector<std::uint64_t> _blockSums;
    std::vector<unsigned char> _blockBad; //!< quarantine flags
    std::size_t _scrubCursor = 0;

    std::atomic<std::uint64_t> _sinceEpoch{0};

    std::atomic<std::uint64_t> _hits{0};
    std::atomic<std::uint64_t> _misses{0};
    std::uint64_t _promotions = 0; //!< guarded by _mu (exclusive)
    std::uint64_t _demotions = 0;
    std::uint64_t _epochs = 0;
    std::uint64_t _scrubbed = 0;
    std::uint64_t _corruptions = 0;
    std::uint64_t _repaired = 0;
    std::uint64_t _quarantined = 0;
};

} // namespace dlrmopt::core

#endif // DLRMOPT_CORE_HOT_TIER_HPP
