/**
 * @file
 * Crash-consistent model snapshots: durable save/load of a full DLRM
 * version (config + dtype-aware embedding payloads + MLP weights +
 * integrity checksums).
 *
 * Production recommendation models are retrained and re-pushed
 * continuously; the serving fleet must be able to persist a version,
 * reload it after a crash, and hot-swap it under traffic. The file
 * format is defensively versioned and checksummed at three levels:
 *
 *   HEADER   magic, format version, model version, weight seed,
 *            dtype, blockRows, serialized ModelConfig, probe count,
 *            header FNV-1a
 *   TABLES   per table: build seed, payload byte count, the stored
 *            payload at the table's dtype (fp32 floats / bf16
 *            patterns / fused int8 rows incl. scale+bias tails), and
 *            the per-block FNV-1a checksums of the saved bytes
 *   MLPS     bottom+top size lists, fp32 layer weights and biases,
 *            section FNV-1a
 *   PROBE    golden predictions of the canonical probe batch at the
 *            snapshot's dtype (shadow validation replays these)
 *   FOOTER   whole-file FNV-1a + end magic
 *
 * Writes go through a temp file + fsync + atomic rename (+ directory
 * fsync), so a torn write never becomes visible under the target
 * path: readers see either the complete old file or the complete new
 * one. Loads reject truncated, bit-flipped, or config-mismatched
 * files with actionable core::IoErrors, and rebuild the store's
 * in-memory block checksums from the loaded bytes (cross-checked
 * against the file's recorded checksums).
 */

#ifndef DLRMOPT_CORE_SNAPSHOT_HPP
#define DLRMOPT_CORE_SNAPSHOT_HPP

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/dlrm.hpp"
#include "core/embedding_store.hpp"
#include "core/model_config.hpp"
#include "core/quant.hpp"
#include "core/sparse_input.hpp"
#include "core/tensor.hpp"

namespace dlrmopt::core
{

/**
 * Scripted persistence faults for the chaos harness. All fields
 * default to "no fault"; a FaultInjector derives deterministic
 * instances from its seed.
 */
struct SnapshotFaults
{
    /** Crash after @p tornBytes bytes of the temp file are written,
     *  before the atomic rename: the target path is never touched
     *  (the torn temp file is left behind, exactly like a real
     *  crash). save() returns false. */
    bool tornWrite = false;
    std::size_t tornBytes = 0;

    /** Post-publish storage corruption: XOR @p flipMask into the byte
     *  at @p flipByteOffset (taken modulo the file size) of the
     *  published file. */
    bool flipBit = false;
    std::size_t flipByteOffset = 0;
    std::uint8_t flipMask = 1;

    /** Throw std::bad_alloc mid-load, after the header parses —
     *  models an allocation failure while materializing multi-GB
     *  tables. */
    bool loadBadAlloc = false;
};

/** Parsed + verified snapshot metadata (no payloads materialized). */
struct SnapshotInfo
{
    std::uint32_t formatVersion = 0;
    std::uint64_t modelVersion = 0; //!< caller-assigned version id
    std::uint64_t weightSeed = 0;   //!< metadata recorded at save
    EmbDtype dtype = EmbDtype::Fp32;
    std::size_t blockRows = 0;
    ModelConfig cfg;
    std::size_t fileBytes = 0;
    std::size_t blocksPerTable = 0;
    /** Recorded per-block checksums, [table][block] row-major. */
    std::vector<std::uint64_t> blockChecksums;
    std::size_t probeCount = 0;
};

/** A fully materialized snapshot: store, model view, golden probe. */
struct LoadedSnapshot
{
    SnapshotInfo info;

    /** Mutable handle (scrub/repair keep working on a loaded store;
     *  table build seeds are restored from the file). */
    std::shared_ptr<EmbeddingStore> store;

    /** Full view over @p store with the snapshot's exact MLP weights. */
    std::shared_ptr<const DlrmModel> model;

    /** Golden predictions of the canonical probe batch, computed at
     *  save time at the snapshot's dtype. A loaded model must
     *  reproduce them bitwise. */
    std::vector<float> probePredictions;
};

/**
 * Versioned binary model snapshots. All functions are stateless;
 * everything is keyed off the file contents.
 */
class ModelSnapshot
{
  public:
    /** Current file format version. */
    static constexpr std::uint32_t kFormatVersion = 1;

    /** Samples in the canonical probe batch. */
    static constexpr std::size_t kProbeBatch = 8;

    /**
     * Serializes @p model (config, primary store payloads at their
     * stored dtype, MLP weights, golden probe predictions) and
     * publishes it at @p path via temp file + fsync + atomic rename.
     *
     * @param modelVersion Caller-assigned version id (monotonic in a
     *        reload pipeline).
     * @param weightSeed Seed metadata recorded for bookkeeping.
     * @param faults Optional scripted persistence faults.
     * @return true when the file was published; false when a scripted
     *         torn write "crashed" before the rename (the target path
     *         is untouched).
     *
     * @throws IoError on a real filesystem failure.
     * @throws std::invalid_argument on a shard view (snapshots hold
     *         whole models).
     */
    static bool save(const std::string& path, const DlrmModel& model,
                     std::uint64_t modelVersion,
                     std::uint64_t weightSeed = 0,
                     const SnapshotFaults *faults = nullptr);

    /**
     * Parses and fully verifies the file (magic, format version,
     * whole-file checksum, section structure, per-block checksums
     * against the stored payload bytes, MLP section checksum) without
     * materializing a store or model.
     *
     * @throws IoError naming the failing section/offset.
     */
    static SnapshotInfo verifyFile(const std::string& path);

    /**
     * Loads and materializes a snapshot: adopts the table payloads
     * into a mutable EmbeddingStore (block checksums rebuilt from the
     * loaded bytes and cross-checked against the file's recorded
     * values), rebuilds both MLPs from the saved fp32 weights, and
     * returns the golden probe predictions.
     *
     * @param expect When non-null, the loaded config must match
     *        (name, class, geometry, MLP size lists) or the load is
     *        rejected — the "config-mismatched file" guard for a
     *        fleet that knows which tenant it is reloading.
     * @param faults Optional scripted load faults (bad_alloc).
     *
     * @throws IoError on any integrity/config violation; the caller's
     *         current version keeps serving.
     * @throws std::bad_alloc when scripted (or real).
     */
    static LoadedSnapshot load(const std::string& path,
                               const ModelConfig *expect = nullptr,
                               const SnapshotFaults *faults = nullptr);

    /**
     * The canonical probe batch for @p cfg: a fixed-seed dense block
     * and sparse lookups, a pure function of the config (NOT of the
     * version), so any two versions of the same architecture are
     * comparable on it.
     */
    static void makeProbeBatch(const ModelConfig& cfg, Tensor& dense,
                               SparseBatch& sparse);

    /**
     * Predictions of @p model on the canonical probe batch, computed
     * at the primary store's dtype (the precision this snapshot
     * serves). Bitwise deterministic.
     */
    static std::vector<float> probePredictions(const DlrmModel& model);
};

} // namespace dlrmopt::core

#endif // DLRMOPT_CORE_SNAPSHOT_HPP
