#include "core/hot_tier.hpp"

#include "core/errors.hpp"
#include "core/simd.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <mutex>
#include <stdexcept>
#include <string>

namespace dlrmopt::core
{

namespace
{

/** FNV-1a 64 fold, resumable across spans (slot payloads chain into
 *  one per-block sum). */
inline std::uint64_t
fnv1a(const void *data, std::size_t len, std::uint64_t h)
{
    const auto *p = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < len; ++i) {
        h ^= p[i];
        h *= 1099511628211ULL;
    }
    return h;
}

constexpr std::uint64_t fnvOffsetBasis = 14695981039346656037ULL;

} // namespace

void
HotTierConfig::validate() const
{
    if (!(decay >= 0.0) || decay >= 1.0 || !std::isfinite(decay)) {
        throw std::invalid_argument(
            "HotTierConfig: decay must be in [0, 1), got " +
            std::to_string(decay));
    }
    if (blockRows == 0) {
        throw std::invalid_argument(
            "HotTierConfig: blockRows must be >= 1");
    }
    if (minAccesses == 0) {
        throw std::invalid_argument(
            "HotTierConfig: minAccesses must be >= 1 (0 would admit "
            "rows that were never seen)");
    }
}

HotTierCache::HotTierCache(std::shared_ptr<const EmbeddingStore> cold,
                           const HotTierConfig& cfg)
    : _cfg(cfg), _cold(std::move(cold))
{
    _cfg.validate();
    if (!_cold) {
        throw std::invalid_argument(
            "HotTierCache: cold store must not be null");
    }
    _tables = _cold->numTables();
    _rows = _cold->rows();
    _dtype = _cold->dtype();
    _rowBytes = _cold->table(0).storedRowBytes();
    _stride = (_rowBytes + cachelineBytes - 1) / cachelineBytes *
              cachelineBytes;
    _capacity = std::min(_cfg.budgetBytes / _stride, _tables * _rows);
    _numBlocks = (_capacity + _cfg.blockRows - 1) / _cfg.blockRows;

    _slots.resize(_capacity * _stride);
    _slotRef.resize(_capacity, SlotRef{0, 0});
    _slotOf.assign(_tables * _rows, -1);
    _blockSums.assign(_numBlocks, fnvOffsetBasis);
    _blockBad.assign(_numBlocks, 0);
    _meta = std::make_unique<RowMeta[]>(_tables * _rows);
}

void
HotTierCache::bag(std::size_t table, const RowIndex *indices,
                  const RowIndex *offsets, std::size_t samples,
                  float *out, const PrefetchSpec& pf)
{
    const EmbeddingTable& tbl = _cold->table(table);
    const std::size_t total = static_cast<std::size_t>(offsets[samples]);
    if (_capacity == 0) {
        // Disabled tier: pure pass-through (whole-sample quantized
        // kernels included), no admission accounting.
        tbl.bag(indices, offsets, samples, out, pf);
        _misses.fetch_add(total, std::memory_order_relaxed);
        return;
    }

    if (_cfg.verifyTouched) {
        // Verify the tier blocks this bag's resident lookups touch
        // before serving a byte of them (the tier-side mirror of the
        // Router's verify-touched integrity path). Corrupt blocks are
        // quarantined and repaired from the cold store, then the scan
        // re-runs — bounded by the block count, in practice one retry.
        for (;;) {
            std::vector<std::size_t> bad;
            {
                std::shared_lock<std::shared_mutex> lk(_mu);
                const std::int32_t *slot_of =
                    _slotOf.data() + table * _rows;
                std::vector<std::size_t> touched;
                for (std::size_t s = 0; s < total; ++s) {
                    if (static_cast<std::uint64_t>(indices[s]) >=
                        static_cast<std::uint64_t>(_rows))
                        continue; // the main loop throws on it
                    const std::int32_t slot =
                        slot_of[static_cast<std::size_t>(indices[s])];
                    if (slot >= 0)
                        touched.push_back(
                            blockOfSlot(static_cast<std::size_t>(slot)));
                }
                std::sort(touched.begin(), touched.end());
                touched.erase(
                    std::unique(touched.begin(), touched.end()),
                    touched.end());
                for (std::size_t b : touched) {
                    if (!_blockBad[b] &&
                        computeBlockSum(b) != _blockSums[b])
                        bad.push_back(b);
                }
            }
            if (bad.empty())
                break;
            std::unique_lock<std::shared_mutex> lk(_mu);
            for (std::size_t b : bad) {
                if (computeBlockSum(b) == _blockSums[b])
                    continue; // repaired by a concurrent pass
                ++_corruptions;
                if (!_blockBad[b]) {
                    _blockBad[b] = 1;
                    ++_quarantined;
                }
                repairBlockLocked(b);
            }
        }
    }

    std::uint64_t local_hits = 0, local_misses = 0;
    {
        std::shared_lock<std::shared_mutex> lk(_mu);
        RowMeta *meta = _meta.get() + table * _rows;
        const bool do_pf = pf.enabled();
        // Same byte-constant look-ahead scaling as the cold bag
        // (embedding.cpp): quantized rows are shorter, so the
        // distance stretches to keep the prefetch ahead in bytes.
        const std::size_t pf_dist = do_pf
            ? static_cast<std::size_t>(pf.distance) *
                  (32 / embDtypeBits(_dtype))
            : 0;

        std::vector<const std::uint8_t *> row_ptrs;
        for (std::size_t i = 0; i < samples; ++i) {
            float *out_ptr = out + i * tbl.dim();
            const std::size_t begin =
                static_cast<std::size_t>(offsets[i]);
            const std::size_t end =
                static_cast<std::size_t>(offsets[i + 1]);
            const std::size_t n = end - begin;
            row_ptrs.resize(n);
            // Phase 1: resolve every lookup to pinned-or-cold bytes.
            // The resolution walk doubles as look-ahead — cold rows
            // get their prefetch issued here, well before phase 2
            // gathers them.
            for (std::size_t s = begin; s < end; ++s) {
                if (static_cast<std::uint64_t>(indices[s]) >=
                    static_cast<std::uint64_t>(_rows)) {
                    throw IndexError(
                        "embedding_bag: index " +
                        std::to_string(indices[s]) +
                        " out of range [0, " + std::to_string(_rows) +
                        ") at lookup " + std::to_string(s));
                }
                const std::size_t idx =
                    static_cast<std::size_t>(indices[s]);
                RowMeta& m = meta[idx];
                // Plain relaxed load+store, not fetch_add: a lock'd
                // RMW per lookup costs more than the probe it feeds.
                // Concurrent bags may lose increments, which only
                // perturbs a heuristic — admission needs row *ranks*,
                // not exact counts.
                m.count.store(m.count.load(std::memory_order_relaxed) +
                                  1,
                              std::memory_order_relaxed);
                // One load, one branch: the pointer already folds in
                // the resident and block-clean tests, and shares the
                // counter's cache line. A pinned row is contiguous,
                // line-aligned, almost certainly cache-resident — no
                // prefetch needed.
                const std::uint8_t *row = m.ptr;
                if (row != nullptr) {
                    ++local_hits;
                } else {
                    row = static_cast<const std::uint8_t *>(
                        tbl.rowBytes(indices[s]));
                    ++local_misses;
                }
                if (do_pf && s + pf_dist < total) {
                    // Look ahead exactly like the cold bag, but only
                    // pull lines for rows that will actually gather
                    // cold — a resident future row costs nothing.
                    const RowIndex ni = indices[s + pf_dist];
                    if (static_cast<std::uint64_t>(ni) <
                            static_cast<std::uint64_t>(_rows) &&
                        meta[static_cast<std::size_t>(ni)].ptr ==
                            nullptr)
                        prefetchRowBytes(tbl.rowBytes(ni), pf.lines,
                                         _rowBytes, pf.locality);
                }
                row_ptrs[s - begin] = row;
            }
            // Phase 2: register-blocked walk over the resolved
            // pointers — pool in registers, store out once. The
            // per-lane chain matches the per-row kernels, so hitting
            // this path never changes an output bit.
            bool pooled = false;
            switch (_dtype) {
              case EmbDtype::Bf16:
                pooled = bagSamplePtrsBf16(out_ptr, row_ptrs.data(), n,
                                           tbl.dim());
                break;
              case EmbDtype::Int8:
                pooled = bagSamplePtrsInt8(out_ptr, row_ptrs.data(), n,
                                           tbl.dim());
                break;
              default:
                pooled = bagSamplePtrsF32(out_ptr, row_ptrs.data(), n,
                                          tbl.dim());
                break;
            }
            if (pooled)
                continue;
            // No specialized kernel for this level/shape: per-row
            // fused-dequant accumulate, the exact chain the cold bag's
            // fallback dispatches to, over verbatim row bytes.
            std::memset(out_ptr, 0, tbl.dim() * sizeof(float));
            for (std::size_t s = 0; s < n; ++s) {
                const std::uint8_t *row = row_ptrs[s];
                switch (_dtype) {
                  case EmbDtype::Bf16:
                    accumulateRowBf16(
                        out_ptr,
                        reinterpret_cast<const std::uint16_t *>(row),
                        tbl.dim());
                    break;
                  case EmbDtype::Int8: {
                    float scale, bias;
                    std::memcpy(&scale, row + tbl.dim(),
                                sizeof(float));
                    std::memcpy(&bias, row + tbl.dim() + sizeof(float),
                                sizeof(float));
                    accumulateRowInt8(out_ptr, row, scale, bias,
                                      tbl.dim());
                    break;
                  }
                  default:
                    accumulateRow(
                        out_ptr,
                        reinterpret_cast<const float *>(row),
                        tbl.dim());
                    break;
                }
            }
        }
    }
    _hits.fetch_add(local_hits, std::memory_order_relaxed);
    _misses.fetch_add(local_misses, std::memory_order_relaxed);
    maybeEndEpoch(total);
}

void
HotTierCache::recordAccess(std::size_t table, RowIndex row,
                           std::uint32_t n)
{
    if (table >= _tables ||
        static_cast<std::uint64_t>(row) >=
            static_cast<std::uint64_t>(_rows)) {
        throw std::invalid_argument(
            "HotTierCache::recordAccess: (" + std::to_string(table) +
            ", " + std::to_string(row) + ") out of range");
    }
    _meta[flat(table, static_cast<std::size_t>(row))].count.fetch_add(
        n, std::memory_order_relaxed);
}

bool
HotTierCache::isResident(std::size_t table, RowIndex row) const
{
    if (table >= _tables ||
        static_cast<std::uint64_t>(row) >=
            static_cast<std::uint64_t>(_rows))
        return false;
    std::shared_lock<std::shared_mutex> lk(_mu);
    return _slotOf[flat(table, static_cast<std::size_t>(row))] >= 0;
}

std::uint32_t
HotTierCache::accessCount(std::size_t table, RowIndex row) const
{
    if (table >= _tables ||
        static_cast<std::uint64_t>(row) >=
            static_cast<std::uint64_t>(_rows))
        return 0;
    return _meta[flat(table, static_cast<std::size_t>(row))]
        .count.load(std::memory_order_relaxed);
}

void
HotTierCache::maybeEndEpoch(std::size_t lookups)
{
    if (_cfg.epochLookups == 0 || _capacity == 0)
        return;
    const std::uint64_t prev =
        _sinceEpoch.fetch_add(lookups, std::memory_order_relaxed);
    // Only the call that crosses the threshold triggers the epoch, so
    // concurrent bags do not pile up back-to-back rebuilds.
    if (prev < _cfg.epochLookups &&
        prev + lookups >= _cfg.epochLookups)
        endEpoch();
}

void
HotTierCache::endEpoch()
{
    std::unique_lock<std::shared_mutex> lk(_mu);
    runEpochLocked();
}

void
HotTierCache::runEpochLocked()
{
    struct Cand
    {
        std::uint32_t count;
        std::uint32_t table;
        std::uint32_t row;
    };
    const std::size_t n = _tables * _rows;
    std::vector<Cand> cand;
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint32_t c =
            _meta[i].count.load(std::memory_order_relaxed);
        if (c >= _cfg.minAccesses)
            cand.push_back({c, static_cast<std::uint32_t>(i / _rows),
                            static_cast<std::uint32_t>(i % _rows)});
    }
    // Strict-weak order with a (table, row) tie-break: the selected
    // set is a pure function of the counters, never of scan luck.
    auto hotter = [](const Cand& a, const Cand& b) {
        if (a.count != b.count)
            return a.count > b.count;
        if (a.table != b.table)
            return a.table < b.table;
        return a.row < b.row;
    };
    if (cand.size() > _capacity) {
        std::nth_element(cand.begin(),
                         cand.begin() +
                             static_cast<std::ptrdiff_t>(_capacity),
                         cand.end(), hotter);
        cand.resize(_capacity);
    }
    std::sort(cand.begin(), cand.end(), hotter);

    std::size_t survivors = 0;
    for (const Cand& c : cand) {
        if (_slotOf[flat(c.table, c.row)] >= 0)
            ++survivors;
    }
    _promotions += cand.size() - survivors;
    _demotions += _resident - survivors;

    for (std::size_t j = 0; j < _resident; ++j) {
        const std::size_t f =
            flat(_slotRef[j].table, _slotRef[j].row);
        _slotOf[f] = -1;
        _meta[f].ptr = nullptr;
    }
    for (std::size_t j = 0; j < cand.size(); ++j) {
        const Cand& c = cand[j];
        std::uint8_t *dst = _slots.data() + j * _stride;
        std::memcpy(dst,
                    _cold->table(c.table).rowBytes(
                        static_cast<RowIndex>(c.row)),
                    _rowBytes);
        if (_stride > _rowBytes)
            std::memset(dst + _rowBytes, 0, _stride - _rowBytes);
        _slotRef[j] = SlotRef{c.table, c.row};
        _slotOf[flat(c.table, c.row)] =
            static_cast<std::int32_t>(j);
        _meta[flat(c.table, c.row)].ptr = dst;
    }
    _resident = cand.size();
    for (std::size_t b = 0; b < _numBlocks; ++b) {
        _blockSums[b] = computeBlockSum(b);
        _blockBad[b] = 0;
    }
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint32_t c =
            _meta[i].count.load(std::memory_order_relaxed);
        _meta[i].count.store(
            static_cast<std::uint32_t>(static_cast<double>(c) *
                                       _cfg.decay),
            std::memory_order_relaxed);
    }
    ++_epochs;
    _sinceEpoch.store(0, std::memory_order_relaxed);
}

std::uint64_t
HotTierCache::computeBlockSum(std::size_t b) const
{
    const std::size_t first = b * _cfg.blockRows;
    const std::size_t last =
        std::min(first + _cfg.blockRows, _resident);
    std::uint64_t h = fnvOffsetBasis;
    for (std::size_t j = first; j < last; ++j)
        h = fnv1a(_slots.data() + j * _stride, _rowBytes, h);
    return h;
}

bool
HotTierCache::verifyBlock(std::size_t b) const
{
    std::shared_lock<std::shared_mutex> lk(_mu);
    return computeBlockSum(b) == _blockSums[b];
}

std::vector<std::size_t>
HotTierCache::findCorruptBlocks() const
{
    std::shared_lock<std::shared_mutex> lk(_mu);
    std::vector<std::size_t> bad;
    for (std::size_t b = 0; b < _numBlocks; ++b) {
        if (computeBlockSum(b) != _blockSums[b])
            bad.push_back(b);
    }
    return bad;
}

bool
HotTierCache::flipBit(std::size_t table, RowIndex row, std::size_t bit)
{
    if (table >= _tables ||
        static_cast<std::uint64_t>(row) >=
            static_cast<std::uint64_t>(_rows)) {
        throw std::invalid_argument(
            "HotTierCache::flipBit: (" + std::to_string(table) + ", " +
            std::to_string(row) + ") out of range");
    }
    if (bit >= _rowBytes * 8) {
        throw std::invalid_argument(
            "HotTierCache::flipBit: bit " + std::to_string(bit) +
            " out of range [0, " + std::to_string(_rowBytes * 8) + ")");
    }
    std::unique_lock<std::shared_mutex> lk(_mu);
    const std::int32_t slot =
        _slotOf[flat(table, static_cast<std::size_t>(row))];
    if (slot < 0)
        return false;
    _slots[static_cast<std::size_t>(slot) * _stride + bit / 8] ^=
        static_cast<std::uint8_t>(1u << (bit % 8));
    return true;
}

void
HotTierCache::quarantineBlock(std::size_t b)
{
    if (b >= _numBlocks) {
        throw std::invalid_argument(
            "HotTierCache::quarantineBlock: block " +
            std::to_string(b) + " out of range");
    }
    std::unique_lock<std::shared_mutex> lk(_mu);
    if (!_blockBad[b]) {
        _blockBad[b] = 1;
        ++_quarantined;
        setBlockPtrsLocked(b, false);
    }
}

bool
HotTierCache::blockQuarantined(std::size_t b) const
{
    std::shared_lock<std::shared_mutex> lk(_mu);
    return b < _numBlocks && _blockBad[b] != 0;
}

void
HotTierCache::repairBlock(std::size_t b)
{
    if (b >= _numBlocks) {
        throw std::invalid_argument(
            "HotTierCache::repairBlock: block " + std::to_string(b) +
            " out of range");
    }
    std::unique_lock<std::shared_mutex> lk(_mu);
    repairBlockLocked(b);
}

void
HotTierCache::repairBlockLocked(std::size_t b)
{
    const std::size_t first = b * _cfg.blockRows;
    const std::size_t last =
        std::min(first + _cfg.blockRows, _resident);
    for (std::size_t j = first; j < last; ++j) {
        std::memcpy(_slots.data() + j * _stride,
                    _cold->table(_slotRef[j].table)
                        .rowBytes(static_cast<RowIndex>(
                            _slotRef[j].row)),
                    _rowBytes);
    }
    _blockSums[b] = computeBlockSum(b);
    _blockBad[b] = 0;
    setBlockPtrsLocked(b, true);
    ++_repaired;
}

void
HotTierCache::setBlockPtrsLocked(std::size_t b, bool present)
{
    const std::size_t first = b * _cfg.blockRows;
    const std::size_t last =
        std::min(first + _cfg.blockRows, _resident);
    for (std::size_t j = first; j < last; ++j) {
        _meta[flat(_slotRef[j].table, _slotRef[j].row)].ptr =
            present ? _slots.data() + j * _stride : nullptr;
    }
}

std::size_t
HotTierCache::scrubTick(std::size_t maxBlocks)
{
    std::unique_lock<std::shared_mutex> lk(_mu);
    if (_numBlocks == 0)
        return 0;
    std::size_t verified = 0;
    for (std::size_t i = 0; i < maxBlocks; ++i) {
        const std::size_t b = _scrubCursor;
        ++_scrubbed;
        ++verified;
        if (computeBlockSum(b) != _blockSums[b]) {
            ++_corruptions;
            if (!_blockBad[b]) {
                _blockBad[b] = 1;
                ++_quarantined;
            }
            repairBlockLocked(b);
        }
        _scrubCursor = (_scrubCursor + 1) % _numBlocks;
    }
    return verified;
}

bool
HotTierCache::retarget(std::shared_ptr<const EmbeddingStore> cold)
{
    if (!cold) {
        throw std::invalid_argument(
            "HotTierCache::retarget: store must not be null");
    }
    if (cold->numTables() != _tables || cold->rows() != _rows ||
        cold->dtype() != _dtype ||
        cold->table(0).storedRowBytes() != _rowBytes) {
        // A precision- or geometry-changing reload: leave the tier on
        // the old store, where matches() fails and dispatches bypass.
        return false;
    }
    std::unique_lock<std::shared_mutex> lk(_mu);
    _cold = std::move(cold);
    // Re-pin: same resident set and counters (the hot set does not
    // change because the version did), fresh verbatim bytes from the
    // new store, fresh checksums.
    for (std::size_t j = 0; j < _resident; ++j) {
        std::memcpy(_slots.data() + j * _stride,
                    _cold->table(_slotRef[j].table)
                        .rowBytes(static_cast<RowIndex>(
                            _slotRef[j].row)),
                    _rowBytes);
        // Re-enable rows a pre-swap quarantine had disabled: every
        // block is clean after the re-copy.
        _meta[flat(_slotRef[j].table, _slotRef[j].row)].ptr =
            _slots.data() + j * _stride;
    }
    for (std::size_t b = 0; b < _numBlocks; ++b) {
        _blockSums[b] = computeBlockSum(b);
        _blockBad[b] = 0;
    }
    return true;
}

void
HotTierCache::reset()
{
    std::unique_lock<std::shared_mutex> lk(_mu);
    for (std::size_t j = 0; j < _resident; ++j) {
        const std::size_t f =
            flat(_slotRef[j].table, _slotRef[j].row);
        _slotOf[f] = -1;
        _meta[f].ptr = nullptr;
    }
    _resident = 0;
    for (std::size_t b = 0; b < _numBlocks; ++b) {
        _blockSums[b] = fnvOffsetBasis;
        _blockBad[b] = 0;
    }
    const std::size_t n = _tables * _rows;
    for (std::size_t i = 0; i < n; ++i)
        _meta[i].count.store(0, std::memory_order_relaxed);
    _sinceEpoch.store(0, std::memory_order_relaxed);
}

HotTierStats
HotTierCache::stats() const
{
    std::shared_lock<std::shared_mutex> lk(_mu);
    HotTierStats s;
    s.hits = _hits.load(std::memory_order_relaxed);
    s.misses = _misses.load(std::memory_order_relaxed);
    s.promotions = _promotions;
    s.demotions = _demotions;
    s.epochs = _epochs;
    s.blocksScrubbed = _scrubbed;
    s.corruptionsFound = _corruptions;
    s.blocksRepaired = _repaired;
    s.blocksQuarantined = _quarantined;
    s.residentRows = _resident;
    s.capacityRows = _capacity;
    s.residentBytes = _resident * _rowBytes;
    return s;
}

} // namespace dlrmopt::core
