#include "core/simd.hpp"

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstring>

#if defined(__x86_64__) || defined(_M_X64)
#include <immintrin.h>
#define DLRMOPT_X86 1
#else
#define DLRMOPT_X86 0
#endif

namespace dlrmopt::core
{

namespace
{

#if DLRMOPT_X86
bool
cpuSupports(const char *feature)
{
    // __builtin_cpu_supports is a GCC/Clang builtin backed by cpuid.
    if (feature[0] == '5') // "512"
        return __builtin_cpu_supports("avx512f");
    return __builtin_cpu_supports("avx2");
}
#endif

std::atomic<SimdLevel> activeLevel{detectSimdLevel()};

std::atomic<bool> vnniActive{cpuHasAvx512Vnni()};

} // namespace

SimdLevel
detectSimdLevel()
{
#if DLRMOPT_X86
    if (cpuSupports("512"))
        return SimdLevel::Avx512;
    if (cpuSupports("avx2"))
        return SimdLevel::Avx2;
#endif
    return SimdLevel::Scalar;
}

bool
cpuHasAvx512Vnni()
{
#if DLRMOPT_X86
    return __builtin_cpu_supports("avx512f") &&
           __builtin_cpu_supports("avx512vnni");
#else
    return false;
#endif
}

bool
setVnniEnabled(bool enabled)
{
    const bool actual = enabled && cpuHasAvx512Vnni();
    vnniActive.store(actual, std::memory_order_relaxed);
    return actual;
}

bool
vnniEnabled()
{
    return vnniActive.load(std::memory_order_relaxed);
}

std::string
simdLevelName(SimdLevel level)
{
    switch (level) {
      case SimdLevel::Scalar:
        return "scalar";
      case SimdLevel::Avx2:
        return "AVX2";
      case SimdLevel::Avx512:
        return "AVX-512";
    }
    return "unknown";
}

std::size_t
simdVectorFloats(SimdLevel level)
{
    switch (level) {
      case SimdLevel::Avx512:
        return 16;
      case SimdLevel::Avx2:
        return 8;
      default:
        return 1;
    }
}

void
accumulateRowScalar(float *out, const float *row, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        out[i] += row[i];
}

#if DLRMOPT_X86 && defined(__AVX2__)
void
accumulateRowAvx2(float *out, const float *row, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256 a = _mm256_loadu_ps(out + i);
        const __m256 b = _mm256_loadu_ps(row + i);
        _mm256_storeu_ps(out + i, _mm256_add_ps(a, b));
    }
    for (; i < n; ++i)
        out[i] += row[i];
}
#else
void
accumulateRowAvx2(float *out, const float *row, std::size_t n)
{
    accumulateRowScalar(out, row, n);
}
#endif

#if DLRMOPT_X86 && defined(__AVX512F__)
void
accumulateRowAvx512(float *out, const float *row, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const __m512 a = _mm512_loadu_ps(out + i);
        const __m512 b = _mm512_loadu_ps(row + i);
        _mm512_storeu_ps(out + i, _mm512_add_ps(a, b));
    }
    if (i < n) {
        const __mmask16 mask =
            static_cast<__mmask16>((1u << (n - i)) - 1u);
        const __m512 a = _mm512_maskz_loadu_ps(mask, out + i);
        const __m512 b = _mm512_maskz_loadu_ps(mask, row + i);
        _mm512_mask_storeu_ps(out + i, mask, _mm512_add_ps(a, b));
    }
}
#else
void
accumulateRowAvx512(float *out, const float *row, std::size_t n)
{
    accumulateRowAvx2(out, row, n);
}
#endif

namespace
{

/** One bf16 accumulate element exactly as the vector lanes compute it
 *  (exact widen, IEEE fp32 add) — the tail mirror for both widths. */
inline void
bf16Lane(float *out, const std::uint16_t *row, std::size_t i)
{
    const std::uint32_t u = static_cast<std::uint32_t>(row[i]) << 16;
    float v;
    std::memcpy(&v, &u, sizeof(v));
    out[i] += v;
}

/** One int8 fused-dequant element exactly as the vector lanes compute
 *  it (exact u8 widen, fmadd with scale, add bias). */
inline void
int8Lane(float *out, const std::uint8_t *row, float scale, float bias,
         std::size_t i)
{
    const float q = static_cast<float>(row[i]);
    out[i] = std::fmaf(q, scale, out[i]) + bias;
}

} // namespace

void
accumulateRowBf16Scalar(float *out, const std::uint16_t *row,
                        std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        bf16Lane(out, row, i);
}

void
accumulateRowInt8Scalar(float *out, const std::uint8_t *row, float scale,
                        float bias, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        int8Lane(out, row, scale, bias, i);
}

#if DLRMOPT_X86 && defined(__AVX2__)
void
accumulateRowBf16Avx2(float *out, const std::uint16_t *row, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        // Zero-extend 8 stored u16 patterns and shift them back into
        // the upper halves: the exact fp32 bit patterns, no rounding.
        const __m128i h = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(row + i));
        const __m256i w =
            _mm256_slli_epi32(_mm256_cvtepu16_epi32(h), 16);
        const __m256 a = _mm256_loadu_ps(out + i);
        _mm256_storeu_ps(out + i,
                         _mm256_add_ps(a, _mm256_castsi256_ps(w)));
    }
    for (; i < n; ++i)
        bf16Lane(out, row, i);
}

void
accumulateRowInt8Avx2(float *out, const std::uint8_t *row, float scale,
                      float bias, std::size_t n)
{
    const __m256 vscale = _mm256_set1_ps(scale);
    const __m256 vbias = _mm256_set1_ps(bias);
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        // u8 codes widen exactly to fp32 (all values <= 255).
        const __m128i b = _mm_loadl_epi64(
            reinterpret_cast<const __m128i *>(row + i));
        const __m256 q =
            _mm256_cvtepi32_ps(_mm256_cvtepu8_epi32(b));
        const __m256 acc = _mm256_loadu_ps(out + i);
        const __m256 t = _mm256_fmadd_ps(q, vscale, acc);
        _mm256_storeu_ps(out + i, _mm256_add_ps(t, vbias));
    }
    for (; i < n; ++i)
        int8Lane(out, row, scale, bias, i);
}
#else
void
accumulateRowBf16Avx2(float *out, const std::uint16_t *row, std::size_t n)
{
    accumulateRowBf16Scalar(out, row, n);
}

void
accumulateRowInt8Avx2(float *out, const std::uint8_t *row, float scale,
                      float bias, std::size_t n)
{
    accumulateRowInt8Scalar(out, row, scale, bias, n);
}
#endif

#if DLRMOPT_X86 && defined(__AVX512F__)
void
accumulateRowBf16Avx512(float *out, const std::uint16_t *row,
                        std::size_t n)
{
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const __m256i h = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(row + i));
        const __m512i w =
            _mm512_slli_epi32(_mm512_cvtepu16_epi32(h), 16);
        const __m512 a = _mm512_loadu_ps(out + i);
        _mm512_storeu_ps(out + i,
                         _mm512_add_ps(a, _mm512_castsi512_ps(w)));
    }
    for (; i < n; ++i)
        bf16Lane(out, row, i);
}

void
accumulateRowInt8Avx512(float *out, const std::uint8_t *row, float scale,
                        float bias, std::size_t n)
{
    const __m512 vscale = _mm512_set1_ps(scale);
    const __m512 vbias = _mm512_set1_ps(bias);
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const __m128i b = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(row + i));
        const __m512 q =
            _mm512_cvtepi32_ps(_mm512_cvtepu8_epi32(b));
        const __m512 acc = _mm512_loadu_ps(out + i);
        const __m512 t = _mm512_fmadd_ps(q, vscale, acc);
        _mm512_storeu_ps(out + i, _mm512_add_ps(t, vbias));
    }
    for (; i < n; ++i)
        int8Lane(out, row, scale, bias, i);
}
#else
void
accumulateRowBf16Avx512(float *out, const std::uint16_t *row,
                        std::size_t n)
{
    accumulateRowBf16Avx2(out, row, n);
}

void
accumulateRowInt8Avx512(float *out, const std::uint8_t *row, float scale,
                        float bias, std::size_t n)
{
    accumulateRowInt8Avx2(out, row, scale, bias, n);
}
#endif

void
accumulateRowBf16(float *out, const std::uint16_t *row, std::size_t n)
{
    switch (activeLevel.load(std::memory_order_relaxed)) {
      case SimdLevel::Avx512:
        accumulateRowBf16Avx512(out, row, n);
        return;
      case SimdLevel::Avx2:
        accumulateRowBf16Avx2(out, row, n);
        return;
      default:
        accumulateRowBf16Scalar(out, row, n);
        return;
    }
}

void
accumulateRowInt8(float *out, const std::uint8_t *row, float scale,
                  float bias, std::size_t n)
{
    switch (activeLevel.load(std::memory_order_relaxed)) {
      case SimdLevel::Avx512:
        accumulateRowInt8Avx512(out, row, scale, bias, n);
        return;
      case SimdLevel::Avx2:
        accumulateRowInt8Avx2(out, row, scale, bias, n);
        return;
      default:
        accumulateRowInt8Scalar(out, row, scale, bias, n);
        return;
    }
}

namespace
{

/**
 * Prefetch @p lines cache lines of the row @p pfDist lookups ahead at
 * T0. Caller restricts the whole-sample path to locality == 3, so the
 * compile-time-constant hint requirement is satisfied here.
 */
inline void
bagSamplePrefetch(const void *base, std::size_t strideBytes,
                  const RowIndex *indices, std::size_t s,
                  std::size_t total, std::size_t pfDist, int pfLines)
{
    if (pfDist == 0 || s + pfDist >= total)
        return;
    const char *next =
        static_cast<const char *>(base) +
        static_cast<std::size_t>(indices[s + pfDist]) * strideBytes;
    for (int l = 0; l < pfLines; ++l)
        __builtin_prefetch(next + l * 64, 0, 3);
}

#if DLRMOPT_X86 && defined(__AVX512F__)

/**
 * Whole-sample bf16 bag at AVX-512: NB zmm accumulators hold the full
 * dim-wide partial sum across every row of the sample, then store
 * once. Per lane this is exactly accumulateRowBf16Avx512's chain
 * (zero-extend, shift, add in the same order), so the result is
 * bitwise-identical to the per-row path — the accumulator just lives
 * in registers instead of round-tripping through the output buffer.
 */
template <int NB>
void
bagSampleBf16Avx512Body(float *out, const std::uint16_t *base,
                        std::size_t dim, const RowIndex *indices,
                        std::size_t begin, std::size_t end,
                        std::size_t total, std::size_t pfDist,
                        int pfLines)
{
    __m512 acc[NB];
    for (int b = 0; b < NB; ++b)
        acc[b] = _mm512_setzero_ps();
    for (std::size_t s = begin; s < end; ++s) {
        bagSamplePrefetch(base, dim * sizeof(std::uint16_t), indices, s,
                          total, pfDist, pfLines);
        const std::uint16_t *row =
            base + static_cast<std::size_t>(indices[s]) * dim;
        for (int b = 0; b < NB; ++b) {
            const __m256i h = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(row + b * 16));
            const __m512i w =
                _mm512_slli_epi32(_mm512_cvtepu16_epi32(h), 16);
            acc[b] = _mm512_add_ps(acc[b], _mm512_castsi512_ps(w));
        }
    }
    for (int b = 0; b < NB; ++b)
        _mm512_storeu_ps(out + b * 16, acc[b]);
}

/** Whole-sample int8 bag at AVX-512 (see bf16 variant for the idea). */
template <int NB>
void
bagSampleInt8Avx512Body(float *out, const std::uint8_t *base,
                        std::size_t strideBytes, std::size_t dim,
                        const RowIndex *indices, std::size_t begin,
                        std::size_t end, std::size_t total,
                        std::size_t pfDist, int pfLines)
{
    __m512 acc[NB];
    for (int b = 0; b < NB; ++b)
        acc[b] = _mm512_setzero_ps();
    for (std::size_t s = begin; s < end; ++s) {
        bagSamplePrefetch(base, strideBytes, indices, s, total, pfDist,
                          pfLines);
        const std::uint8_t *row =
            base + static_cast<std::size_t>(indices[s]) * strideBytes;
        float scale, bias;
        std::memcpy(&scale, row + dim, sizeof(float));
        std::memcpy(&bias, row + dim + sizeof(float), sizeof(float));
        const __m512 vscale = _mm512_set1_ps(scale);
        const __m512 vbias = _mm512_set1_ps(bias);
        for (int b = 0; b < NB; ++b) {
            const __m128i q8 = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(row + b * 16));
            const __m512 q =
                _mm512_cvtepi32_ps(_mm512_cvtepu8_epi32(q8));
            const __m512 t = _mm512_fmadd_ps(q, vscale, acc[b]);
            acc[b] = _mm512_add_ps(t, vbias);
        }
    }
    for (int b = 0; b < NB; ++b)
        _mm512_storeu_ps(out + b * 16, acc[b]);
}

bool
bagSampleBf16Avx512(float *out, const std::uint16_t *base,
                    std::size_t dim, const RowIndex *indices,
                    std::size_t begin, std::size_t end,
                    std::size_t total, std::size_t pfDist, int pfLines)
{
    if (dim == 0 || dim % 16 != 0 || dim > 128)
        return false;
    switch (dim / 16) {
#define DLRMOPT_BAG_CASE(NB)                                           \
      case NB:                                                         \
        bagSampleBf16Avx512Body<NB>(out, base, dim, indices, begin,    \
                                    end, total, pfDist, pfLines);      \
        return true;
      DLRMOPT_BAG_CASE(1)
      DLRMOPT_BAG_CASE(2)
      DLRMOPT_BAG_CASE(3)
      DLRMOPT_BAG_CASE(4)
      DLRMOPT_BAG_CASE(5)
      DLRMOPT_BAG_CASE(6)
      DLRMOPT_BAG_CASE(7)
      DLRMOPT_BAG_CASE(8)
#undef DLRMOPT_BAG_CASE
    }
    return false;
}

bool
bagSampleInt8Avx512(float *out, const std::uint8_t *base,
                    std::size_t strideBytes, std::size_t dim,
                    const RowIndex *indices, std::size_t begin,
                    std::size_t end, std::size_t total,
                    std::size_t pfDist, int pfLines)
{
    if (dim == 0 || dim % 16 != 0 || dim > 128)
        return false;
    switch (dim / 16) {
#define DLRMOPT_BAG_CASE(NB)                                           \
      case NB:                                                         \
        bagSampleInt8Avx512Body<NB>(out, base, strideBytes, dim,       \
                                    indices, begin, end, total,        \
                                    pfDist, pfLines);                  \
        return true;
      DLRMOPT_BAG_CASE(1)
      DLRMOPT_BAG_CASE(2)
      DLRMOPT_BAG_CASE(3)
      DLRMOPT_BAG_CASE(4)
      DLRMOPT_BAG_CASE(5)
      DLRMOPT_BAG_CASE(6)
      DLRMOPT_BAG_CASE(7)
      DLRMOPT_BAG_CASE(8)
#undef DLRMOPT_BAG_CASE
    }
    return false;
}


/**
 * Pointer-walking whole-sample bags: identical register-blocked
 * accumulation to the bagSample* bodies above, but each row arrives
 * as a resolved pointer (hot-tier pinned copy or cold row) instead of
 * base + index * stride. No prefetch here — the resolver issued it
 * while walking the lookups.
 */
template <int NB>
void
bagSamplePtrsF32Avx512Body(float *out, const std::uint8_t *const *rows,
                           std::size_t n)
{
    __m512 acc[NB];
    for (int b = 0; b < NB; ++b)
        acc[b] = _mm512_setzero_ps();
    for (std::size_t s = 0; s < n; ++s) {
        const float *row = reinterpret_cast<const float *>(rows[s]);
        for (int b = 0; b < NB; ++b) {
            acc[b] = _mm512_add_ps(acc[b],
                                   _mm512_loadu_ps(row + b * 16));
        }
    }
    for (int b = 0; b < NB; ++b)
        _mm512_storeu_ps(out + b * 16, acc[b]);
}

template <int NB>
void
bagSamplePtrsBf16Avx512Body(float *out,
                            const std::uint8_t *const *rows,
                            std::size_t n)
{
    __m512 acc[NB];
    for (int b = 0; b < NB; ++b)
        acc[b] = _mm512_setzero_ps();
    for (std::size_t s = 0; s < n; ++s) {
        const std::uint16_t *row =
            reinterpret_cast<const std::uint16_t *>(rows[s]);
        for (int b = 0; b < NB; ++b) {
            const __m256i h = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(row + b * 16));
            const __m512i w =
                _mm512_slli_epi32(_mm512_cvtepu16_epi32(h), 16);
            acc[b] = _mm512_add_ps(acc[b], _mm512_castsi512_ps(w));
        }
    }
    for (int b = 0; b < NB; ++b)
        _mm512_storeu_ps(out + b * 16, acc[b]);
}

template <int NB>
void
bagSamplePtrsInt8Avx512Body(float *out,
                            const std::uint8_t *const *rows,
                            std::size_t dim, std::size_t n)
{
    __m512 acc[NB];
    for (int b = 0; b < NB; ++b)
        acc[b] = _mm512_setzero_ps();
    for (std::size_t s = 0; s < n; ++s) {
        const std::uint8_t *row = rows[s];
        float scale, bias;
        std::memcpy(&scale, row + dim, sizeof(float));
        std::memcpy(&bias, row + dim + sizeof(float), sizeof(float));
        const __m512 vscale = _mm512_set1_ps(scale);
        const __m512 vbias = _mm512_set1_ps(bias);
        for (int b = 0; b < NB; ++b) {
            const __m128i q8 = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(row + b * 16));
            const __m512 q =
                _mm512_cvtepi32_ps(_mm512_cvtepu8_epi32(q8));
            const __m512 t = _mm512_fmadd_ps(q, vscale, acc[b]);
            acc[b] = _mm512_add_ps(t, vbias);
        }
    }
    for (int b = 0; b < NB; ++b)
        _mm512_storeu_ps(out + b * 16, acc[b]);
}

bool
bagSamplePtrsF32Avx512(float *out, const std::uint8_t *const *rows,
                       std::size_t n, std::size_t dim)
{
    if (dim == 0 || dim % 16 != 0 || dim > 128)
        return false;
    switch (dim / 16) {
#define DLRMOPT_BAG_CASE(NB)                                           \
      case NB:                                                         \
        bagSamplePtrsF32Avx512Body<NB>(out, rows, n);                  \
        return true;
      DLRMOPT_BAG_CASE(1)
      DLRMOPT_BAG_CASE(2)
      DLRMOPT_BAG_CASE(3)
      DLRMOPT_BAG_CASE(4)
      DLRMOPT_BAG_CASE(5)
      DLRMOPT_BAG_CASE(6)
      DLRMOPT_BAG_CASE(7)
      DLRMOPT_BAG_CASE(8)
#undef DLRMOPT_BAG_CASE
    }
    return false;
}

bool
bagSamplePtrsBf16Avx512(float *out, const std::uint8_t *const *rows,
                        std::size_t n, std::size_t dim)
{
    if (dim == 0 || dim % 16 != 0 || dim > 128)
        return false;
    switch (dim / 16) {
#define DLRMOPT_BAG_CASE(NB)                                           \
      case NB:                                                         \
        bagSamplePtrsBf16Avx512Body<NB>(out, rows, n);                 \
        return true;
      DLRMOPT_BAG_CASE(1)
      DLRMOPT_BAG_CASE(2)
      DLRMOPT_BAG_CASE(3)
      DLRMOPT_BAG_CASE(4)
      DLRMOPT_BAG_CASE(5)
      DLRMOPT_BAG_CASE(6)
      DLRMOPT_BAG_CASE(7)
      DLRMOPT_BAG_CASE(8)
#undef DLRMOPT_BAG_CASE
    }
    return false;
}

bool
bagSamplePtrsInt8Avx512(float *out, const std::uint8_t *const *rows,
                        std::size_t n, std::size_t dim)
{
    if (dim == 0 || dim % 16 != 0 || dim > 128)
        return false;
    switch (dim / 16) {
#define DLRMOPT_BAG_CASE(NB)                                           \
      case NB:                                                         \
        bagSamplePtrsInt8Avx512Body<NB>(out, rows, dim, n);            \
        return true;
      DLRMOPT_BAG_CASE(1)
      DLRMOPT_BAG_CASE(2)
      DLRMOPT_BAG_CASE(3)
      DLRMOPT_BAG_CASE(4)
      DLRMOPT_BAG_CASE(5)
      DLRMOPT_BAG_CASE(6)
      DLRMOPT_BAG_CASE(7)
      DLRMOPT_BAG_CASE(8)
#undef DLRMOPT_BAG_CASE
    }
    return false;
}

#endif // AVX512F

#if DLRMOPT_X86 && defined(__AVX2__)

/** Whole-sample bf16 bag at AVX2: 8-lane mirror of the zmm variant. */
template <int NB>
void
bagSampleBf16Avx2Body(float *out, const std::uint16_t *base,
                      std::size_t dim, const RowIndex *indices,
                      std::size_t begin, std::size_t end,
                      std::size_t total, std::size_t pfDist,
                      int pfLines)
{
    __m256 acc[NB];
    for (int b = 0; b < NB; ++b)
        acc[b] = _mm256_setzero_ps();
    for (std::size_t s = begin; s < end; ++s) {
        bagSamplePrefetch(base, dim * sizeof(std::uint16_t), indices, s,
                          total, pfDist, pfLines);
        const std::uint16_t *row =
            base + static_cast<std::size_t>(indices[s]) * dim;
        for (int b = 0; b < NB; ++b) {
            const __m128i h = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(row + b * 8));
            const __m256i w =
                _mm256_slli_epi32(_mm256_cvtepu16_epi32(h), 16);
            acc[b] = _mm256_add_ps(acc[b], _mm256_castsi256_ps(w));
        }
    }
    for (int b = 0; b < NB; ++b)
        _mm256_storeu_ps(out + b * 8, acc[b]);
}

/** Whole-sample int8 bag at AVX2: 8-lane mirror of the zmm variant. */
template <int NB>
void
bagSampleInt8Avx2Body(float *out, const std::uint8_t *base,
                      std::size_t strideBytes, std::size_t dim,
                      const RowIndex *indices, std::size_t begin,
                      std::size_t end, std::size_t total,
                      std::size_t pfDist, int pfLines)
{
    __m256 acc[NB];
    for (int b = 0; b < NB; ++b)
        acc[b] = _mm256_setzero_ps();
    for (std::size_t s = begin; s < end; ++s) {
        bagSamplePrefetch(base, strideBytes, indices, s, total, pfDist,
                          pfLines);
        const std::uint8_t *row =
            base + static_cast<std::size_t>(indices[s]) * strideBytes;
        float scale, bias;
        std::memcpy(&scale, row + dim, sizeof(float));
        std::memcpy(&bias, row + dim + sizeof(float), sizeof(float));
        const __m256 vscale = _mm256_set1_ps(scale);
        const __m256 vbias = _mm256_set1_ps(bias);
        for (int b = 0; b < NB; ++b) {
            const __m128i q8 = _mm_loadl_epi64(
                reinterpret_cast<const __m128i *>(row + b * 8));
            const __m256 q =
                _mm256_cvtepi32_ps(_mm256_cvtepu8_epi32(q8));
            const __m256 t = _mm256_fmadd_ps(q, vscale, acc[b]);
            acc[b] = _mm256_add_ps(t, vbias);
        }
    }
    for (int b = 0; b < NB; ++b)
        _mm256_storeu_ps(out + b * 8, acc[b]);
}

bool
bagSampleBf16Avx2(float *out, const std::uint16_t *base,
                  std::size_t dim, const RowIndex *indices,
                  std::size_t begin, std::size_t end, std::size_t total,
                  std::size_t pfDist, int pfLines)
{
    if (dim == 0 || dim % 8 != 0 || dim > 64)
        return false;
    switch (dim / 8) {
#define DLRMOPT_BAG_CASE(NB)                                           \
      case NB:                                                         \
        bagSampleBf16Avx2Body<NB>(out, base, dim, indices, begin, end, \
                                  total, pfDist, pfLines);             \
        return true;
      DLRMOPT_BAG_CASE(1)
      DLRMOPT_BAG_CASE(2)
      DLRMOPT_BAG_CASE(3)
      DLRMOPT_BAG_CASE(4)
      DLRMOPT_BAG_CASE(5)
      DLRMOPT_BAG_CASE(6)
      DLRMOPT_BAG_CASE(7)
      DLRMOPT_BAG_CASE(8)
#undef DLRMOPT_BAG_CASE
    }
    return false;
}

bool
bagSampleInt8Avx2(float *out, const std::uint8_t *base,
                  std::size_t strideBytes, std::size_t dim,
                  const RowIndex *indices, std::size_t begin,
                  std::size_t end, std::size_t total,
                  std::size_t pfDist, int pfLines)
{
    if (dim == 0 || dim % 8 != 0 || dim > 64)
        return false;
    switch (dim / 8) {
#define DLRMOPT_BAG_CASE(NB)                                           \
      case NB:                                                         \
        bagSampleInt8Avx2Body<NB>(out, base, strideBytes, dim,         \
                                  indices, begin, end, total, pfDist,  \
                                  pfLines);                            \
        return true;
      DLRMOPT_BAG_CASE(1)
      DLRMOPT_BAG_CASE(2)
      DLRMOPT_BAG_CASE(3)
      DLRMOPT_BAG_CASE(4)
      DLRMOPT_BAG_CASE(5)
      DLRMOPT_BAG_CASE(6)
      DLRMOPT_BAG_CASE(7)
      DLRMOPT_BAG_CASE(8)
#undef DLRMOPT_BAG_CASE
    }
    return false;
}


/** Pointer-walking whole-sample bags at AVX2 (see the zmm variants). */
template <int NB>
void
bagSamplePtrsF32Avx2Body(float *out, const std::uint8_t *const *rows,
                         std::size_t n)
{
    __m256 acc[NB];
    for (int b = 0; b < NB; ++b)
        acc[b] = _mm256_setzero_ps();
    for (std::size_t s = 0; s < n; ++s) {
        const float *row = reinterpret_cast<const float *>(rows[s]);
        for (int b = 0; b < NB; ++b) {
            acc[b] = _mm256_add_ps(acc[b],
                                   _mm256_loadu_ps(row + b * 8));
        }
    }
    for (int b = 0; b < NB; ++b)
        _mm256_storeu_ps(out + b * 8, acc[b]);
}

template <int NB>
void
bagSamplePtrsBf16Avx2Body(float *out, const std::uint8_t *const *rows,
                          std::size_t n)
{
    __m256 acc[NB];
    for (int b = 0; b < NB; ++b)
        acc[b] = _mm256_setzero_ps();
    for (std::size_t s = 0; s < n; ++s) {
        const std::uint16_t *row =
            reinterpret_cast<const std::uint16_t *>(rows[s]);
        for (int b = 0; b < NB; ++b) {
            const __m128i h = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(row + b * 8));
            const __m256i w =
                _mm256_slli_epi32(_mm256_cvtepu16_epi32(h), 16);
            acc[b] = _mm256_add_ps(acc[b], _mm256_castsi256_ps(w));
        }
    }
    for (int b = 0; b < NB; ++b)
        _mm256_storeu_ps(out + b * 8, acc[b]);
}

template <int NB>
void
bagSamplePtrsInt8Avx2Body(float *out, const std::uint8_t *const *rows,
                          std::size_t dim, std::size_t n)
{
    __m256 acc[NB];
    for (int b = 0; b < NB; ++b)
        acc[b] = _mm256_setzero_ps();
    for (std::size_t s = 0; s < n; ++s) {
        const std::uint8_t *row = rows[s];
        float scale, bias;
        std::memcpy(&scale, row + dim, sizeof(float));
        std::memcpy(&bias, row + dim + sizeof(float), sizeof(float));
        const __m256 vscale = _mm256_set1_ps(scale);
        const __m256 vbias = _mm256_set1_ps(bias);
        for (int b = 0; b < NB; ++b) {
            const __m128i q8 = _mm_loadl_epi64(
                reinterpret_cast<const __m128i *>(row + b * 8));
            const __m256 q =
                _mm256_cvtepi32_ps(_mm256_cvtepu8_epi32(q8));
            const __m256 t = _mm256_fmadd_ps(q, vscale, acc[b]);
            acc[b] = _mm256_add_ps(t, vbias);
        }
    }
    for (int b = 0; b < NB; ++b)
        _mm256_storeu_ps(out + b * 8, acc[b]);
}

bool
bagSamplePtrsF32Avx2(float *out, const std::uint8_t *const *rows,
                     std::size_t n, std::size_t dim)
{
    if (dim == 0 || dim % 8 != 0 || dim > 64)
        return false;
    switch (dim / 8) {
#define DLRMOPT_BAG_CASE(NB)                                           \
      case NB:                                                         \
        bagSamplePtrsF32Avx2Body<NB>(out, rows, n);                    \
        return true;
      DLRMOPT_BAG_CASE(1)
      DLRMOPT_BAG_CASE(2)
      DLRMOPT_BAG_CASE(3)
      DLRMOPT_BAG_CASE(4)
      DLRMOPT_BAG_CASE(5)
      DLRMOPT_BAG_CASE(6)
      DLRMOPT_BAG_CASE(7)
      DLRMOPT_BAG_CASE(8)
#undef DLRMOPT_BAG_CASE
    }
    return false;
}

bool
bagSamplePtrsBf16Avx2(float *out, const std::uint8_t *const *rows,
                      std::size_t n, std::size_t dim)
{
    if (dim == 0 || dim % 8 != 0 || dim > 64)
        return false;
    switch (dim / 8) {
#define DLRMOPT_BAG_CASE(NB)                                           \
      case NB:                                                         \
        bagSamplePtrsBf16Avx2Body<NB>(out, rows, n);                   \
        return true;
      DLRMOPT_BAG_CASE(1)
      DLRMOPT_BAG_CASE(2)
      DLRMOPT_BAG_CASE(3)
      DLRMOPT_BAG_CASE(4)
      DLRMOPT_BAG_CASE(5)
      DLRMOPT_BAG_CASE(6)
      DLRMOPT_BAG_CASE(7)
      DLRMOPT_BAG_CASE(8)
#undef DLRMOPT_BAG_CASE
    }
    return false;
}

bool
bagSamplePtrsInt8Avx2(float *out, const std::uint8_t *const *rows,
                      std::size_t n, std::size_t dim)
{
    if (dim == 0 || dim % 8 != 0 || dim > 64)
        return false;
    switch (dim / 8) {
#define DLRMOPT_BAG_CASE(NB)                                           \
      case NB:                                                         \
        bagSamplePtrsInt8Avx2Body<NB>(out, rows, dim, n);              \
        return true;
      DLRMOPT_BAG_CASE(1)
      DLRMOPT_BAG_CASE(2)
      DLRMOPT_BAG_CASE(3)
      DLRMOPT_BAG_CASE(4)
      DLRMOPT_BAG_CASE(5)
      DLRMOPT_BAG_CASE(6)
      DLRMOPT_BAG_CASE(7)
      DLRMOPT_BAG_CASE(8)
#undef DLRMOPT_BAG_CASE
    }
    return false;
}

#endif // AVX2

} // namespace

bool
bagSampleBf16(float *out, const std::uint16_t *base, std::size_t dim,
              const RowIndex *indices, std::size_t begin,
              std::size_t end, std::size_t total, std::size_t pfDist,
              int pfLines)
{
    switch (activeLevel.load(std::memory_order_relaxed)) {
      case SimdLevel::Avx512:
#if DLRMOPT_X86 && defined(__AVX512F__)
        return bagSampleBf16Avx512(out, base, dim, indices, begin, end,
                                   total, pfDist, pfLines);
#else
        return false;
#endif
      case SimdLevel::Avx2:
#if DLRMOPT_X86 && defined(__AVX2__)
        return bagSampleBf16Avx2(out, base, dim, indices, begin, end,
                                 total, pfDist, pfLines);
#else
        return false;
#endif
      default:
        return false;
    }
}

bool
bagSampleInt8(float *out, const std::uint8_t *base,
              std::size_t strideBytes, std::size_t dim,
              const RowIndex *indices, std::size_t begin,
              std::size_t end, std::size_t total, std::size_t pfDist,
              int pfLines)
{
    switch (activeLevel.load(std::memory_order_relaxed)) {
      case SimdLevel::Avx512:
#if DLRMOPT_X86 && defined(__AVX512F__)
        return bagSampleInt8Avx512(out, base, strideBytes, dim, indices,
                                   begin, end, total, pfDist, pfLines);
#else
        return false;
#endif
      case SimdLevel::Avx2:
#if DLRMOPT_X86 && defined(__AVX2__)
        return bagSampleInt8Avx2(out, base, strideBytes, dim, indices,
                                 begin, end, total, pfDist, pfLines);
#else
        return false;
#endif
      default:
        return false;
    }
}

bool
bagSamplePtrsF32(float *out, const std::uint8_t *const *rows,
                 std::size_t n, std::size_t dim)
{
    switch (activeLevel.load(std::memory_order_relaxed)) {
      case SimdLevel::Avx512:
#if DLRMOPT_X86 && defined(__AVX512F__)
        return bagSamplePtrsF32Avx512(out, rows, n, dim);
#else
        return false;
#endif
      case SimdLevel::Avx2:
#if DLRMOPT_X86 && defined(__AVX2__)
        return bagSamplePtrsF32Avx2(out, rows, n, dim);
#else
        return false;
#endif
      default:
        return false;
    }
}

bool
bagSamplePtrsBf16(float *out, const std::uint8_t *const *rows,
                  std::size_t n, std::size_t dim)
{
    switch (activeLevel.load(std::memory_order_relaxed)) {
      case SimdLevel::Avx512:
#if DLRMOPT_X86 && defined(__AVX512F__)
        return bagSamplePtrsBf16Avx512(out, rows, n, dim);
#else
        return false;
#endif
      case SimdLevel::Avx2:
#if DLRMOPT_X86 && defined(__AVX2__)
        return bagSamplePtrsBf16Avx2(out, rows, n, dim);
#else
        return false;
#endif
      default:
        return false;
    }
}

bool
bagSamplePtrsInt8(float *out, const std::uint8_t *const *rows,
                  std::size_t n, std::size_t dim)
{
    switch (activeLevel.load(std::memory_order_relaxed)) {
      case SimdLevel::Avx512:
#if DLRMOPT_X86 && defined(__AVX512F__)
        return bagSamplePtrsInt8Avx512(out, rows, n, dim);
#else
        return false;
#endif
      case SimdLevel::Avx2:
#if DLRMOPT_X86 && defined(__AVX2__)
        return bagSamplePtrsInt8Avx2(out, rows, n, dim);
#else
        return false;
#endif
      default:
        return false;
    }
}

namespace
{

// Fast-exp sigmoid: 1 / (1 + e^t), t = -x clamped so 2^n stays
// normal/finite, with e^t = 2^n * e^r, n = round(t * log2e), r the
// two-step Cody-Waite remainder, e^r a degree-6 polynomial (Cephes
// expf coefficients). All constants shared by the scalar-mirror lane
// and both vector widths so every path is bitwise-identical per
// element.
constexpr float kSigTMin = -87.0f;
constexpr float kSigTMax = 88.0f;
constexpr float kLog2e = 1.44269504088896341f;
constexpr float kLn2Hi = 0.693359375f;
constexpr float kLn2Lo = -2.12194440e-4f;
constexpr float kExpP0 = 1.9875691500e-4f;
constexpr float kExpP1 = 1.3981999507e-3f;
constexpr float kExpP2 = 8.3334519073e-3f;
constexpr float kExpP3 = 4.1665795894e-2f;
constexpr float kExpP4 = 1.6666665459e-1f;
constexpr float kExpP5 = 5.0000001201e-1f;

/**
 * One sigmoid element exactly as a vector lane computes it: every
 * operation below is the scalar twin of the corresponding vector
 * intrinsic (fmaf <-> fmadd, nearbyintf <-> round-to-nearest-even,
 * IEEE +, *, /), so using this for an AVX2 tail keeps results
 * independent of where an element lands in the array.
 */
inline float
sigmoidLane(float x)
{
    float t = std::fmax(std::fmin(0.0f - x, kSigTMax), kSigTMin);
    const float n = std::nearbyintf(t * kLog2e);
    float r = std::fmaf(-n, kLn2Hi, t);
    r = std::fmaf(-n, kLn2Lo, r);
    float p = kExpP0;
    p = std::fmaf(p, r, kExpP1);
    p = std::fmaf(p, r, kExpP2);
    p = std::fmaf(p, r, kExpP3);
    p = std::fmaf(p, r, kExpP4);
    p = std::fmaf(p, r, kExpP5);
    const float r2 = r * r;
    const float er = std::fmaf(p, r2, r) + 1.0f;
    const std::int32_t bits = (static_cast<std::int32_t>(n) + 127)
                              << 23;
    float scale;
    std::memcpy(&scale, &bits, sizeof(scale));
    const float et = er * scale;
    return 1.0f / (1.0f + et);
}

} // namespace

void
sigmoidInplaceScalar(float *data, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        data[i] = 1.0f / (1.0f + std::exp(-data[i]));
}

#if DLRMOPT_X86 && defined(__AVX2__)
void
sigmoidInplaceAvx2(float *data, std::size_t n)
{
    const __m256 vmax = _mm256_set1_ps(kSigTMax);
    const __m256 vmin = _mm256_set1_ps(kSigTMin);
    const __m256 vlog2e = _mm256_set1_ps(kLog2e);
    const __m256 vln2hi = _mm256_set1_ps(kLn2Hi);
    const __m256 vln2lo = _mm256_set1_ps(kLn2Lo);
    const __m256 vone = _mm256_set1_ps(1.0f);
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256 x = _mm256_loadu_ps(data + i);
        const __m256 t = _mm256_max_ps(
            _mm256_min_ps(_mm256_sub_ps(_mm256_setzero_ps(), x), vmax),
            vmin);
        const __m256 nv = _mm256_round_ps(
            _mm256_mul_ps(t, vlog2e),
            _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
        __m256 r = _mm256_fnmadd_ps(nv, vln2hi, t);
        r = _mm256_fnmadd_ps(nv, vln2lo, r);
        __m256 p = _mm256_set1_ps(kExpP0);
        p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(kExpP1));
        p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(kExpP2));
        p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(kExpP3));
        p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(kExpP4));
        p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(kExpP5));
        const __m256 r2 = _mm256_mul_ps(r, r);
        const __m256 er =
            _mm256_add_ps(_mm256_fmadd_ps(p, r2, r), vone);
        const __m256i bits = _mm256_slli_epi32(
            _mm256_add_epi32(_mm256_cvtps_epi32(nv),
                             _mm256_set1_epi32(127)),
            23);
        const __m256 et =
            _mm256_mul_ps(er, _mm256_castsi256_ps(bits));
        _mm256_storeu_ps(data + i,
                         _mm256_div_ps(vone, _mm256_add_ps(vone, et)));
    }
    for (; i < n; ++i)
        data[i] = sigmoidLane(data[i]);
}
#else
void
sigmoidInplaceAvx2(float *data, std::size_t n)
{
    sigmoidInplaceScalar(data, n);
}
#endif

#if DLRMOPT_X86 && defined(__AVX512F__)
void
sigmoidInplaceAvx512(float *data, std::size_t n)
{
    const __m512 vmax = _mm512_set1_ps(kSigTMax);
    const __m512 vmin = _mm512_set1_ps(kSigTMin);
    const __m512 vlog2e = _mm512_set1_ps(kLog2e);
    const __m512 vln2hi = _mm512_set1_ps(kLn2Hi);
    const __m512 vln2lo = _mm512_set1_ps(kLn2Lo);
    const __m512 vone = _mm512_set1_ps(1.0f);
    for (std::size_t i = 0; i < n; i += 16) {
        const std::size_t rem = n - i;
        const __mmask16 mask =
            rem >= 16 ? static_cast<__mmask16>(0xffff)
                      : static_cast<__mmask16>((1u << rem) - 1u);
        const __m512 x = _mm512_maskz_loadu_ps(mask, data + i);
        const __m512 t = _mm512_max_ps(
            _mm512_min_ps(_mm512_sub_ps(_mm512_setzero_ps(), x), vmax),
            vmin);
        const __m512 nv = _mm512_roundscale_ps(
            _mm512_mul_ps(t, vlog2e),
            _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
        __m512 r = _mm512_fnmadd_ps(nv, vln2hi, t);
        r = _mm512_fnmadd_ps(nv, vln2lo, r);
        __m512 p = _mm512_set1_ps(kExpP0);
        p = _mm512_fmadd_ps(p, r, _mm512_set1_ps(kExpP1));
        p = _mm512_fmadd_ps(p, r, _mm512_set1_ps(kExpP2));
        p = _mm512_fmadd_ps(p, r, _mm512_set1_ps(kExpP3));
        p = _mm512_fmadd_ps(p, r, _mm512_set1_ps(kExpP4));
        p = _mm512_fmadd_ps(p, r, _mm512_set1_ps(kExpP5));
        const __m512 r2 = _mm512_mul_ps(r, r);
        const __m512 er =
            _mm512_add_ps(_mm512_fmadd_ps(p, r2, r), vone);
        const __m512i bits = _mm512_slli_epi32(
            _mm512_add_epi32(_mm512_cvtps_epi32(nv),
                             _mm512_set1_epi32(127)),
            23);
        const __m512 et =
            _mm512_mul_ps(er, _mm512_castsi512_ps(bits));
        _mm512_mask_storeu_ps(
            data + i, mask,
            _mm512_div_ps(vone, _mm512_add_ps(vone, et)));
    }
}
#else
void
sigmoidInplaceAvx512(float *data, std::size_t n)
{
    sigmoidInplaceAvx2(data, n);
}
#endif

void
accumulateRow(float *out, const float *row, std::size_t n)
{
    switch (activeLevel.load(std::memory_order_relaxed)) {
      case SimdLevel::Avx512:
        accumulateRowAvx512(out, row, n);
        return;
      case SimdLevel::Avx2:
        accumulateRowAvx2(out, row, n);
        return;
      default:
        accumulateRowScalar(out, row, n);
        return;
    }
}

SimdLevel
setSimdLevel(SimdLevel level)
{
    const SimdLevel cap = detectSimdLevel();
    if (static_cast<int>(level) > static_cast<int>(cap))
        level = cap;
    activeLevel.store(level, std::memory_order_relaxed);
    return level;
}

SimdLevel
currentSimdLevel()
{
    return activeLevel.load(std::memory_order_relaxed);
}

} // namespace dlrmopt::core
