#include "core/simd.hpp"

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstring>

#if defined(__x86_64__) || defined(_M_X64)
#include <immintrin.h>
#define DLRMOPT_X86 1
#else
#define DLRMOPT_X86 0
#endif

namespace dlrmopt::core
{

namespace
{

#if DLRMOPT_X86
bool
cpuSupports(const char *feature)
{
    // __builtin_cpu_supports is a GCC/Clang builtin backed by cpuid.
    if (feature[0] == '5') // "512"
        return __builtin_cpu_supports("avx512f");
    return __builtin_cpu_supports("avx2");
}
#endif

std::atomic<SimdLevel> activeLevel{detectSimdLevel()};

} // namespace

SimdLevel
detectSimdLevel()
{
#if DLRMOPT_X86
    if (cpuSupports("512"))
        return SimdLevel::Avx512;
    if (cpuSupports("avx2"))
        return SimdLevel::Avx2;
#endif
    return SimdLevel::Scalar;
}

std::string
simdLevelName(SimdLevel level)
{
    switch (level) {
      case SimdLevel::Scalar:
        return "scalar";
      case SimdLevel::Avx2:
        return "AVX2";
      case SimdLevel::Avx512:
        return "AVX-512";
    }
    return "unknown";
}

std::size_t
simdVectorFloats(SimdLevel level)
{
    switch (level) {
      case SimdLevel::Avx512:
        return 16;
      case SimdLevel::Avx2:
        return 8;
      default:
        return 1;
    }
}

void
accumulateRowScalar(float *out, const float *row, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        out[i] += row[i];
}

#if DLRMOPT_X86 && defined(__AVX2__)
void
accumulateRowAvx2(float *out, const float *row, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256 a = _mm256_loadu_ps(out + i);
        const __m256 b = _mm256_loadu_ps(row + i);
        _mm256_storeu_ps(out + i, _mm256_add_ps(a, b));
    }
    for (; i < n; ++i)
        out[i] += row[i];
}
#else
void
accumulateRowAvx2(float *out, const float *row, std::size_t n)
{
    accumulateRowScalar(out, row, n);
}
#endif

#if DLRMOPT_X86 && defined(__AVX512F__)
void
accumulateRowAvx512(float *out, const float *row, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const __m512 a = _mm512_loadu_ps(out + i);
        const __m512 b = _mm512_loadu_ps(row + i);
        _mm512_storeu_ps(out + i, _mm512_add_ps(a, b));
    }
    if (i < n) {
        const __mmask16 mask =
            static_cast<__mmask16>((1u << (n - i)) - 1u);
        const __m512 a = _mm512_maskz_loadu_ps(mask, out + i);
        const __m512 b = _mm512_maskz_loadu_ps(mask, row + i);
        _mm512_mask_storeu_ps(out + i, mask, _mm512_add_ps(a, b));
    }
}
#else
void
accumulateRowAvx512(float *out, const float *row, std::size_t n)
{
    accumulateRowAvx2(out, row, n);
}
#endif

namespace
{

// Fast-exp sigmoid: 1 / (1 + e^t), t = -x clamped so 2^n stays
// normal/finite, with e^t = 2^n * e^r, n = round(t * log2e), r the
// two-step Cody-Waite remainder, e^r a degree-6 polynomial (Cephes
// expf coefficients). All constants shared by the scalar-mirror lane
// and both vector widths so every path is bitwise-identical per
// element.
constexpr float kSigTMin = -87.0f;
constexpr float kSigTMax = 88.0f;
constexpr float kLog2e = 1.44269504088896341f;
constexpr float kLn2Hi = 0.693359375f;
constexpr float kLn2Lo = -2.12194440e-4f;
constexpr float kExpP0 = 1.9875691500e-4f;
constexpr float kExpP1 = 1.3981999507e-3f;
constexpr float kExpP2 = 8.3334519073e-3f;
constexpr float kExpP3 = 4.1665795894e-2f;
constexpr float kExpP4 = 1.6666665459e-1f;
constexpr float kExpP5 = 5.0000001201e-1f;

/**
 * One sigmoid element exactly as a vector lane computes it: every
 * operation below is the scalar twin of the corresponding vector
 * intrinsic (fmaf <-> fmadd, nearbyintf <-> round-to-nearest-even,
 * IEEE +, *, /), so using this for an AVX2 tail keeps results
 * independent of where an element lands in the array.
 */
inline float
sigmoidLane(float x)
{
    float t = std::fmax(std::fmin(0.0f - x, kSigTMax), kSigTMin);
    const float n = std::nearbyintf(t * kLog2e);
    float r = std::fmaf(-n, kLn2Hi, t);
    r = std::fmaf(-n, kLn2Lo, r);
    float p = kExpP0;
    p = std::fmaf(p, r, kExpP1);
    p = std::fmaf(p, r, kExpP2);
    p = std::fmaf(p, r, kExpP3);
    p = std::fmaf(p, r, kExpP4);
    p = std::fmaf(p, r, kExpP5);
    const float r2 = r * r;
    const float er = std::fmaf(p, r2, r) + 1.0f;
    const std::int32_t bits = (static_cast<std::int32_t>(n) + 127)
                              << 23;
    float scale;
    std::memcpy(&scale, &bits, sizeof(scale));
    const float et = er * scale;
    return 1.0f / (1.0f + et);
}

} // namespace

void
sigmoidInplaceScalar(float *data, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        data[i] = 1.0f / (1.0f + std::exp(-data[i]));
}

#if DLRMOPT_X86 && defined(__AVX2__)
void
sigmoidInplaceAvx2(float *data, std::size_t n)
{
    const __m256 vmax = _mm256_set1_ps(kSigTMax);
    const __m256 vmin = _mm256_set1_ps(kSigTMin);
    const __m256 vlog2e = _mm256_set1_ps(kLog2e);
    const __m256 vln2hi = _mm256_set1_ps(kLn2Hi);
    const __m256 vln2lo = _mm256_set1_ps(kLn2Lo);
    const __m256 vone = _mm256_set1_ps(1.0f);
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256 x = _mm256_loadu_ps(data + i);
        const __m256 t = _mm256_max_ps(
            _mm256_min_ps(_mm256_sub_ps(_mm256_setzero_ps(), x), vmax),
            vmin);
        const __m256 nv = _mm256_round_ps(
            _mm256_mul_ps(t, vlog2e),
            _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
        __m256 r = _mm256_fnmadd_ps(nv, vln2hi, t);
        r = _mm256_fnmadd_ps(nv, vln2lo, r);
        __m256 p = _mm256_set1_ps(kExpP0);
        p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(kExpP1));
        p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(kExpP2));
        p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(kExpP3));
        p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(kExpP4));
        p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(kExpP5));
        const __m256 r2 = _mm256_mul_ps(r, r);
        const __m256 er =
            _mm256_add_ps(_mm256_fmadd_ps(p, r2, r), vone);
        const __m256i bits = _mm256_slli_epi32(
            _mm256_add_epi32(_mm256_cvtps_epi32(nv),
                             _mm256_set1_epi32(127)),
            23);
        const __m256 et =
            _mm256_mul_ps(er, _mm256_castsi256_ps(bits));
        _mm256_storeu_ps(data + i,
                         _mm256_div_ps(vone, _mm256_add_ps(vone, et)));
    }
    for (; i < n; ++i)
        data[i] = sigmoidLane(data[i]);
}
#else
void
sigmoidInplaceAvx2(float *data, std::size_t n)
{
    sigmoidInplaceScalar(data, n);
}
#endif

#if DLRMOPT_X86 && defined(__AVX512F__)
void
sigmoidInplaceAvx512(float *data, std::size_t n)
{
    const __m512 vmax = _mm512_set1_ps(kSigTMax);
    const __m512 vmin = _mm512_set1_ps(kSigTMin);
    const __m512 vlog2e = _mm512_set1_ps(kLog2e);
    const __m512 vln2hi = _mm512_set1_ps(kLn2Hi);
    const __m512 vln2lo = _mm512_set1_ps(kLn2Lo);
    const __m512 vone = _mm512_set1_ps(1.0f);
    for (std::size_t i = 0; i < n; i += 16) {
        const std::size_t rem = n - i;
        const __mmask16 mask =
            rem >= 16 ? static_cast<__mmask16>(0xffff)
                      : static_cast<__mmask16>((1u << rem) - 1u);
        const __m512 x = _mm512_maskz_loadu_ps(mask, data + i);
        const __m512 t = _mm512_max_ps(
            _mm512_min_ps(_mm512_sub_ps(_mm512_setzero_ps(), x), vmax),
            vmin);
        const __m512 nv = _mm512_roundscale_ps(
            _mm512_mul_ps(t, vlog2e),
            _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
        __m512 r = _mm512_fnmadd_ps(nv, vln2hi, t);
        r = _mm512_fnmadd_ps(nv, vln2lo, r);
        __m512 p = _mm512_set1_ps(kExpP0);
        p = _mm512_fmadd_ps(p, r, _mm512_set1_ps(kExpP1));
        p = _mm512_fmadd_ps(p, r, _mm512_set1_ps(kExpP2));
        p = _mm512_fmadd_ps(p, r, _mm512_set1_ps(kExpP3));
        p = _mm512_fmadd_ps(p, r, _mm512_set1_ps(kExpP4));
        p = _mm512_fmadd_ps(p, r, _mm512_set1_ps(kExpP5));
        const __m512 r2 = _mm512_mul_ps(r, r);
        const __m512 er =
            _mm512_add_ps(_mm512_fmadd_ps(p, r2, r), vone);
        const __m512i bits = _mm512_slli_epi32(
            _mm512_add_epi32(_mm512_cvtps_epi32(nv),
                             _mm512_set1_epi32(127)),
            23);
        const __m512 et =
            _mm512_mul_ps(er, _mm512_castsi512_ps(bits));
        _mm512_mask_storeu_ps(
            data + i, mask,
            _mm512_div_ps(vone, _mm512_add_ps(vone, et)));
    }
}
#else
void
sigmoidInplaceAvx512(float *data, std::size_t n)
{
    sigmoidInplaceAvx2(data, n);
}
#endif

void
accumulateRow(float *out, const float *row, std::size_t n)
{
    switch (activeLevel.load(std::memory_order_relaxed)) {
      case SimdLevel::Avx512:
        accumulateRowAvx512(out, row, n);
        return;
      case SimdLevel::Avx2:
        accumulateRowAvx2(out, row, n);
        return;
      default:
        accumulateRowScalar(out, row, n);
        return;
    }
}

SimdLevel
setSimdLevel(SimdLevel level)
{
    const SimdLevel cap = detectSimdLevel();
    if (static_cast<int>(level) > static_cast<int>(cap))
        level = cap;
    activeLevel.store(level, std::memory_order_relaxed);
    return level;
}

SimdLevel
currentSimdLevel()
{
    return activeLevel.load(std::memory_order_relaxed);
}

} // namespace dlrmopt::core
