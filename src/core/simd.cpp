#include "core/simd.hpp"

#include <atomic>

#if defined(__x86_64__) || defined(_M_X64)
#include <immintrin.h>
#define DLRMOPT_X86 1
#else
#define DLRMOPT_X86 0
#endif

namespace dlrmopt::core
{

namespace
{

#if DLRMOPT_X86
bool
cpuSupports(const char *feature)
{
    // __builtin_cpu_supports is a GCC/Clang builtin backed by cpuid.
    if (feature[0] == '5') // "512"
        return __builtin_cpu_supports("avx512f");
    return __builtin_cpu_supports("avx2");
}
#endif

std::atomic<SimdLevel> activeLevel{detectSimdLevel()};

} // namespace

SimdLevel
detectSimdLevel()
{
#if DLRMOPT_X86
    if (cpuSupports("512"))
        return SimdLevel::Avx512;
    if (cpuSupports("avx2"))
        return SimdLevel::Avx2;
#endif
    return SimdLevel::Scalar;
}

std::string
simdLevelName(SimdLevel level)
{
    switch (level) {
      case SimdLevel::Scalar:
        return "scalar";
      case SimdLevel::Avx2:
        return "AVX2";
      case SimdLevel::Avx512:
        return "AVX-512";
    }
    return "unknown";
}

void
accumulateRowScalar(float *out, const float *row, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        out[i] += row[i];
}

#if DLRMOPT_X86 && defined(__AVX2__)
void
accumulateRowAvx2(float *out, const float *row, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256 a = _mm256_loadu_ps(out + i);
        const __m256 b = _mm256_loadu_ps(row + i);
        _mm256_storeu_ps(out + i, _mm256_add_ps(a, b));
    }
    for (; i < n; ++i)
        out[i] += row[i];
}
#else
void
accumulateRowAvx2(float *out, const float *row, std::size_t n)
{
    accumulateRowScalar(out, row, n);
}
#endif

#if DLRMOPT_X86 && defined(__AVX512F__)
void
accumulateRowAvx512(float *out, const float *row, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const __m512 a = _mm512_loadu_ps(out + i);
        const __m512 b = _mm512_loadu_ps(row + i);
        _mm512_storeu_ps(out + i, _mm512_add_ps(a, b));
    }
    if (i < n) {
        const __mmask16 mask =
            static_cast<__mmask16>((1u << (n - i)) - 1u);
        const __m512 a = _mm512_maskz_loadu_ps(mask, out + i);
        const __m512 b = _mm512_maskz_loadu_ps(mask, row + i);
        _mm512_mask_storeu_ps(out + i, mask, _mm512_add_ps(a, b));
    }
}
#else
void
accumulateRowAvx512(float *out, const float *row, std::size_t n)
{
    accumulateRowAvx2(out, row, n);
}
#endif

void
accumulateRow(float *out, const float *row, std::size_t n)
{
    switch (activeLevel.load(std::memory_order_relaxed)) {
      case SimdLevel::Avx512:
        accumulateRowAvx512(out, row, n);
        return;
      case SimdLevel::Avx2:
        accumulateRowAvx2(out, row, n);
        return;
      default:
        accumulateRowScalar(out, row, n);
        return;
    }
}

SimdLevel
setSimdLevel(SimdLevel level)
{
    const SimdLevel cap = detectSimdLevel();
    if (static_cast<int>(level) > static_cast<int>(cap))
        level = cap;
    activeLevel.store(level, std::memory_order_relaxed);
    return level;
}

SimdLevel
currentSimdLevel()
{
    return activeLevel.load(std::memory_order_relaxed);
}

} // namespace dlrmopt::core
