/**
 * @file
 * A minimal row-major 2D float tensor with cache-line-aligned storage.
 *
 * The DLRM inference path only needs dense fp32 matrices (activations,
 * weights), so the tensor is deliberately small: no broadcasting, no
 * views, no reference counting. Keeping it simple makes the kernels
 * easy to audit against the paper's Algorithms 1-3.
 */

#ifndef DLRMOPT_CORE_TENSOR_HPP
#define DLRMOPT_CORE_TENSOR_HPP

#include <algorithm>
#include <cstddef>
#include <vector>

#include "core/types.hpp"

namespace dlrmopt::core
{

/**
 * Row-major 2D float matrix with 64-byte-aligned backing storage.
 */
class Tensor
{
  public:
    /** Creates an empty 0x0 tensor. */
    Tensor() = default;

    /**
     * Creates a zero-initialized tensor.
     *
     * @param rows Number of rows.
     * @param cols Number of columns.
     */
    Tensor(std::size_t rows, std::size_t cols)
        : _rows(rows), _cols(cols), _data(rows * cols, 0.0f)
    {
    }

    std::size_t rows() const { return _rows; }
    std::size_t cols() const { return _cols; }
    std::size_t size() const { return _rows * _cols; }
    bool empty() const { return size() == 0; }

    float *data() { return _data.data(); }
    const float *data() const { return _data.data(); }

    /** Pointer to the start of row @p r. */
    float *row(std::size_t r) { return _data.data() + r * _cols; }
    const float *
    row(std::size_t r) const
    {
        return _data.data() + r * _cols;
    }

    float& at(std::size_t r, std::size_t c) { return _data[r * _cols + c]; }
    float at(std::size_t r, std::size_t c) const
    {
        return _data[r * _cols + c];
    }

    /** Sets every element to @p v. */
    void
    fill(float v)
    {
        std::fill(_data.begin(), _data.end(), v);
    }

    /** Sets every element to zero. */
    void zero() { fill(0.0f); }

    /**
     * Resizes to rows x cols, discarding contents (zero-filled).
     * No-op if the shape already matches.
     */
    void
    reshape(std::size_t rows, std::size_t cols)
    {
        if (rows == _rows && cols == _cols)
            return;
        _rows = rows;
        _cols = cols;
        _data.assign(rows * cols, 0.0f);
    }

    /**
     * Fills the tensor with deterministic pseudo-random values in
     * [-scale, scale). Used for reproducible weight initialization.
     *
     * @param seed Seed; the same seed always yields the same contents.
     * @param scale Half-width of the uniform distribution.
     */
    void randomize(std::uint64_t seed, float scale = 0.1f);

  private:
    std::size_t _rows = 0;
    std::size_t _cols = 0;
    std::vector<float, AlignedAllocator<float>> _data;
};

} // namespace dlrmopt::core

#endif // DLRMOPT_CORE_TENSOR_HPP
