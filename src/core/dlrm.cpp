#include "core/dlrm.hpp"

#include <cassert>
#include <stdexcept>

#include "core/gemm.hpp"
#include "core/interaction.hpp"

namespace dlrmopt::core
{

DlrmModel::DlrmModel(const ModelConfig& cfg, std::uint64_t seed)
    : _cfg(cfg),
      _bottom(cfg.bottomMlp, mix64(seed)),
      _top(cfg.topMlpDims(), mix64(seed + 1))
{
    if (cfg.bottomMlp.back() != cfg.dim) {
        throw std::invalid_argument(
            "bottom-MLP output width must equal the embedding dim");
    }
    _tables.reserve(cfg.tables);
    for (std::size_t t = 0; t < cfg.tables; ++t) {
        _tables.push_back(std::make_unique<EmbeddingTable>(
            cfg.rows, cfg.dim, mix64(seed + 100 + t)));
    }
}

void
DlrmModel::bottomForward(const Tensor& dense, Tensor& out) const
{
    _bottom.forward(dense, out);
}

void
DlrmModel::embeddingForward(const SparseBatch& sparse, Tensor& emb_out,
                            const PrefetchSpec& pf) const
{
    assert(sparse.numTables() == _cfg.tables);
    const std::size_t batch = sparse.batchSize;
    emb_out.reshape(_cfg.tables, batch * _cfg.dim);
    for (std::size_t t = 0; t < _cfg.tables; ++t) {
        _tables[t]->bag(sparse.indices[t].data(), sparse.offsets[t].data(),
                        batch, emb_out.row(t), pf);
    }
}

void
DlrmModel::interactionForward(const Tensor& bottom_out,
                              const Tensor& emb_out, std::size_t batch,
                              Tensor& out) const
{
    std::vector<const float *> emb(_cfg.tables);
    for (std::size_t t = 0; t < _cfg.tables; ++t)
        emb[t] = emb_out.row(t);
    out.reshape(batch, _cfg.topInputDim());
    dotInteraction(bottom_out.data(), emb, _cfg.tables, batch, _cfg.dim,
                   out.data());
}

void
DlrmModel::topForward(const Tensor& inter_out, Tensor& pred) const
{
    _top.forward(inter_out, pred);
    sigmoidInplace(pred.data(), pred.size());
}

void
DlrmModel::forward(const Tensor& dense, const SparseBatch& sparse,
                   DlrmWorkspace& ws, const PrefetchSpec& pf) const
{
    bottomForward(dense, ws.bottomOut);
    embeddingForward(sparse, ws.embOut, pf);
    interactionForward(ws.bottomOut, ws.embOut, sparse.batchSize,
                       ws.interOut);
    topForward(ws.interOut, ws.pred);
}

} // namespace dlrmopt::core
