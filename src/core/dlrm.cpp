#include "core/dlrm.hpp"

#include <cassert>
#include <cstring>
#include <stdexcept>
#include <string>

#include "core/gemm.hpp"
#include "core/interaction.hpp"

namespace dlrmopt::core
{

namespace
{

/** Shared constructor checks for every view kind. */
void
checkViewArgs(const ModelConfig& cfg, const EmbeddingStore *store,
              std::size_t first_table, std::size_t num_tables)
{
    if (cfg.bottomMlp.back() != cfg.dim) {
        throw std::invalid_argument(
            "bottom-MLP output width must equal the embedding dim");
    }
    if (store == nullptr)
        throw std::invalid_argument("DlrmModel: null embedding store");
    if (store->numTables() != cfg.tables || store->rows() != cfg.rows ||
        store->dim() != cfg.dim) {
        throw std::invalid_argument(
            "DlrmModel: store geometry does not match the model "
            "config");
    }
    if (num_tables == 0) {
        throw std::invalid_argument(
            "DlrmModel: a view needs at least one table");
    }
    if (first_table >= cfg.tables ||
        num_tables > cfg.tables - first_table) {
        throw std::invalid_argument(
            "DlrmModel: table span [" + std::to_string(first_table) +
            ", " + std::to_string(first_table + num_tables) +
            ") exceeds the model's " + std::to_string(cfg.tables) +
            " tables");
    }
}

} // namespace

DlrmModel::DlrmModel(const ModelConfig& cfg, std::uint64_t seed)
    : DlrmModel(cfg, EmbeddingStore::create(cfg, seed), seed)
{
}

DlrmModel::DlrmModel(const ModelConfig& cfg,
                     std::shared_ptr<const EmbeddingStore> store,
                     std::uint64_t seed)
    : DlrmModel(cfg, std::move(store), 0, cfg.tables, seed)
{
}

DlrmModel::DlrmModel(const ModelConfig& cfg,
                     std::shared_ptr<const EmbeddingStore> store,
                     std::size_t first_table, std::size_t num_tables,
                     std::uint64_t seed)
    : _cfg(cfg),
      _bottom(cfg.bottomMlp, mix64(seed)),
      _top(cfg.topMlpDims(), mix64(seed + 1)),
      _store(std::move(store)),
      _firstTable(first_table),
      _numTables(num_tables)
{
    checkViewArgs(_cfg, _store.get(), first_table, num_tables);
}

DlrmModel::DlrmModel(const ModelConfig& cfg,
                     std::shared_ptr<const EmbeddingStore> store,
                     Mlp bottom, Mlp top)
    : _cfg(cfg), _bottom(std::move(bottom)), _top(std::move(top)),
      _store(std::move(store)), _firstTable(0), _numTables(cfg.tables)
{
    checkViewArgs(_cfg, _store.get(), 0, cfg.tables);
    if (_bottom.dims() != cfg.bottomMlp ||
        _top.dims() != cfg.topMlpDims()) {
        throw std::invalid_argument(
            "DlrmModel: adopted MLP size lists do not match the model "
            "config");
    }
}

void
DlrmModel::attachQuantizedStore(
    std::shared_ptr<const EmbeddingStore> store)
{
    if (store == nullptr) {
        throw std::invalid_argument(
            "attachQuantizedStore: null store");
    }
    if (store->dtype() == EmbDtype::Fp32) {
        throw std::invalid_argument(
            "attachQuantizedStore: the primary store already serves "
            "fp32; attach only bf16/int8 copies");
    }
    if (store->numTables() != _cfg.tables ||
        store->rows() != _cfg.rows || store->dim() != _cfg.dim) {
        throw std::invalid_argument(
            "attachQuantizedStore: store geometry does not match the "
            "model config");
    }
    if (store->dtype() == EmbDtype::Bf16)
        _bf16Store = std::move(store);
    else
        _int8Store = std::move(store);
}

void
DlrmModel::bottomForward(const Tensor& dense, Tensor& out,
                         EmbDtype dtype) const
{
    if (dtype == EmbDtype::Int8)
        _bottom.forwardInt8(dense, out);
    else
        _bottom.forward(dense, out);
}

void
DlrmModel::embeddingForward(const SparseBatch& sparse, Tensor& emb_out,
                            const PrefetchSpec& pf, EmbDtype dtype,
                            HotTierCache *tier) const
{
    assert(sparse.numTables() == _cfg.tables);
    const EmbeddingStore& store = storeFor(dtype);
    // The tier serves only the store it fronts: a dispatch pinned to
    // a different version (canary, mid-rollout) or a dtype the tier
    // was not built at gathers cold instead of being served stale or
    // differently-quantized bytes.
    const bool tiered = tier != nullptr && tier->matches(store);
    const std::size_t batch = sparse.batchSize;
    emb_out.reshape(_numTables, batch * _cfg.dim);
    for (std::size_t t = 0; t < _numTables; ++t) {
        const std::size_t g = _firstTable + t;
        if (tiered) {
            tier->bag(g, sparse.indices[g].data(),
                      sparse.offsets[g].data(), batch, emb_out.row(t),
                      pf);
        } else {
            store.table(g).bag(sparse.indices[g].data(),
                               sparse.offsets[g].data(), batch,
                               emb_out.row(t), pf);
        }
    }
}

void
DlrmModel::interactionForward(const Tensor& bottom_out,
                              const Tensor& emb_out, std::size_t batch,
                              Tensor& out) const
{
    std::vector<const float *> emb;
    interactionForward(bottom_out, emb_out, batch, out, emb);
}

void
DlrmModel::interactionForward(const Tensor& bottom_out,
                              const Tensor& emb_out, std::size_t batch,
                              Tensor& out,
                              std::vector<const float *>& emb_scratch) const
{
    emb_scratch.resize(_cfg.tables);
    for (std::size_t t = 0; t < _cfg.tables; ++t)
        emb_scratch[t] = emb_out.row(t);
    out.reshape(batch, _cfg.topInputDim());
    dotInteraction(bottom_out.data(), emb_scratch, _cfg.tables, batch,
                   _cfg.dim, out.data());
}

void
DlrmModel::interactionForwardTransposed(
    const Tensor& bottom_out, const Tensor& emb_out, std::size_t batch,
    Tensor& out_t, std::vector<const float *>& emb_scratch) const
{
    emb_scratch.resize(_cfg.tables);
    for (std::size_t t = 0; t < _cfg.tables; ++t)
        emb_scratch[t] = emb_out.row(t);
    out_t.reshape(_cfg.topInputDim(), batch);
    dotInteractionTransposed(bottom_out.data(), emb_scratch,
                             _cfg.tables, batch, _cfg.dim,
                             out_t.data());
}

void
DlrmModel::topForward(const Tensor& inter_out, Tensor& pred,
                      EmbDtype dtype) const
{
    if (dtype == EmbDtype::Int8)
        _top.forwardInt8(inter_out, pred);
    else
        _top.forward(inter_out, pred);
    sigmoidInplace(pred.data(), pred.size());
}

void
DlrmModel::forward(const Tensor& dense, const SparseBatch& sparse,
                   DlrmWorkspace& ws, const PrefetchSpec& pf,
                   EmbDtype dtype, HotTierCache *tier) const
{
    if (!isFullView()) {
        throw std::logic_error(
            "DlrmModel::forward: shard views cannot run the full pass; "
            "merge shard embedding blocks with mergeShardEmbeddings()");
    }
    bottomForward(dense, ws.bottomOut, dtype);
    embeddingForward(sparse, ws.embOut, pf, dtype, tier);
    interactionForward(ws.bottomOut, ws.embOut, sparse.batchSize,
                       ws.interOut);
    topForward(ws.interOut, ws.pred, dtype);
}

void
mergeShardEmbeddings(const std::vector<const DlrmModel *>& shards,
                     const std::vector<const Tensor *>& parts,
                     std::size_t batch, Tensor& out)
{
    if (shards.empty() || shards.size() != parts.size()) {
        throw std::invalid_argument(
            "mergeShardEmbeddings: need one part per shard");
    }
    const ModelConfig& cfg = shards.front()->config();
    const std::size_t block = batch * cfg.dim;
    std::vector<bool> covered(cfg.tables, false);
    out.reshape(cfg.tables, block);
    for (std::size_t s = 0; s < shards.size(); ++s) {
        const DlrmModel& shard = *shards[s];
        const Tensor& part = *parts[s];
        if (part.rows() != shard.numLocalTables() ||
            part.cols() != block) {
            throw std::invalid_argument(
                "mergeShardEmbeddings: part " + std::to_string(s) +
                " has the wrong shape");
        }
        for (std::size_t t = 0; t < shard.numLocalTables(); ++t) {
            const std::size_t g = shard.firstTable() + t;
            if (covered[g]) {
                throw std::invalid_argument(
                    "mergeShardEmbeddings: table " + std::to_string(g) +
                    " covered twice");
            }
            covered[g] = true;
            std::memcpy(out.row(g), part.row(t),
                        block * sizeof(float));
        }
    }
    for (std::size_t g = 0; g < cfg.tables; ++g) {
        if (!covered[g]) {
            throw std::invalid_argument(
                "mergeShardEmbeddings: table " + std::to_string(g) +
                " not covered by any shard");
        }
    }
}

} // namespace dlrmopt::core
