#include "core/scheme.hpp"

namespace dlrmopt::core
{

std::string
schemeName(Scheme s)
{
    switch (s) {
      case Scheme::HwPfOff:
        return "w/o HW-PF";
      case Scheme::Baseline:
        return "Baseline";
      case Scheme::SwPf:
        return "SW-PF";
      case Scheme::DpHt:
        return "DP-HT";
      case Scheme::MpHt:
        return "MP-HT";
      case Scheme::Integrated:
        return "Integrated";
    }
    return "unknown";
}

} // namespace dlrmopt::core
