/**
 * @file
 * Runtime auto-tuning of the software-prefetch configuration.
 *
 * Sec. 6.4 of the paper reports that the optimal prefetch amount is
 * platform-dependent (8 lines on SKL/CSL, 2 on ICL/SPR, 4 on Zen3)
 * and the optimal distance workload-dependent (Fig. 10b). This
 * utility measures the real embedding_bag kernel on the current host
 * over a candidate grid and returns the fastest spec — the
 * deployment-time counterpart of the paper's manual tuning.
 */

#ifndef DLRMOPT_CORE_AUTOTUNE_HPP
#define DLRMOPT_CORE_AUTOTUNE_HPP

#include <vector>

#include "core/embedding.hpp"

namespace dlrmopt::core
{

/** One measured candidate. */
struct TuneMeasurement
{
    PrefetchSpec spec;
    double millis = 0.0; //!< best-of-repeats kernel time
};

/** Outcome of a tuning run. */
struct TuneResult
{
    PrefetchSpec best;     //!< fastest spec ({} if baseline won)
    double baselineMs = 0.0;
    double bestMs = 0.0;
    std::vector<TuneMeasurement> measurements;

    /** Speedup of the winner over no software prefetching. */
    double
    speedup() const
    {
        return bestMs > 0.0 ? baselineMs / bestMs : 1.0;
    }
};

/**
 * Grid of candidate specs to try. The default grid crosses the
 * paper's distance sweep {1,2,4,8,16} with amounts {2,4,full-row}
 * at T0 locality.
 *
 * @param row_lines Cache lines per embedding row (dim / 16).
 */
std::vector<PrefetchSpec> defaultTuneGrid(std::size_t row_lines);

/**
 * Measures embedding_bag over @p candidates (plus the no-prefetch
 * baseline) on real hardware and returns the fastest.
 *
 * @param table Table to drive (should exceed the LLC for meaningful
 *        results).
 * @param indices Flat lookup indices (e.g. from a TraceGenerator).
 * @param offsets samples + 1 offsets.
 * @param samples Pooled-bag count.
 * @param candidates Specs to try; empty = defaultTuneGrid().
 * @param repeats Timed repetitions per candidate (best is kept).
 */
TuneResult tunePrefetch(const EmbeddingTable& table,
                        const RowIndex *indices,
                        const RowIndex *offsets, std::size_t samples,
                        std::vector<PrefetchSpec> candidates = {},
                        int repeats = 3);

} // namespace dlrmopt::core

#endif // DLRMOPT_CORE_AUTOTUNE_HPP
