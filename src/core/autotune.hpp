/**
 * @file
 * Runtime auto-tuning: software-prefetch configuration for the
 * embedding stage, and register-blocking tiles for the packed dense
 * GEMM.
 *
 * Sec. 6.4 of the paper reports that the optimal prefetch amount is
 * platform-dependent (8 lines on SKL/CSL, 2 on ICL/SPR, 4 on Zen3)
 * and the optimal distance workload-dependent (Fig. 10b). tunePrefetch
 * measures the real embedding_bag kernel on the current host over a
 * candidate grid and returns the fastest spec — the deployment-time
 * counterpart of the paper's manual tuning.
 *
 * tuneGemmTile is the dense-stage analogue: the best (mr, kc) blocking
 * of the packed microkernel depends on the coalesced batch size m
 * (m = 1 is GEMV-shaped, batched m re-streams panels) and on the layer
 * shape, so it sweeps a tile grid per (m-bucket, layer-shape) point,
 * times the real kernel, and installs winners into the process-wide
 * GemmTileCache that Mlp forwards consult.
 */

#ifndef DLRMOPT_CORE_AUTOTUNE_HPP
#define DLRMOPT_CORE_AUTOTUNE_HPP

#include <cstdint>
#include <vector>

#include "core/embedding.hpp"
#include "core/gemm.hpp"

namespace dlrmopt::core
{

/** One measured candidate. */
struct TuneMeasurement
{
    PrefetchSpec spec;
    double millis = 0.0; //!< best-of-repeats kernel time
};

/** Outcome of a tuning run. */
struct TuneResult
{
    PrefetchSpec best;     //!< fastest spec ({} if baseline won)
    double baselineMs = 0.0;
    double bestMs = 0.0;
    std::vector<TuneMeasurement> measurements;

    /** Speedup of the winner over no software prefetching. */
    double
    speedup() const
    {
        return bestMs > 0.0 ? baselineMs / bestMs : 1.0;
    }
};

/**
 * Grid of candidate specs to try. The default grid crosses the
 * paper's distance sweep {1,2,4,8,16} with amounts {2,4,full-row}
 * at T0 locality.
 *
 * @param row_lines Cache lines per embedding row (dim / 16).
 */
std::vector<PrefetchSpec> defaultTuneGrid(std::size_t row_lines);

/**
 * Measures embedding_bag over @p candidates (plus the no-prefetch
 * baseline) on real hardware and returns the fastest.
 *
 * @param table Table to drive (should exceed the LLC for meaningful
 *        results).
 * @param indices Flat lookup indices (e.g. from a TraceGenerator).
 * @param offsets samples + 1 offsets.
 * @param samples Pooled-bag count.
 * @param candidates Specs to try; empty = defaultTuneGrid().
 * @param repeats Timed repetitions per candidate (best is kept).
 */
TuneResult tunePrefetch(const EmbeddingTable& table,
                        const RowIndex *indices,
                        const RowIndex *offsets, std::size_t samples,
                        std::vector<PrefetchSpec> candidates = {},
                        int repeats = 3);

/** One measured GEMM tile candidate. */
struct GemmTileMeasurement
{
    GemmTile tile;
    double millis = 0.0; //!< best-of-repeats packed-kernel time
};

/** Outcome of tuning one (batch, layer-shape) point. */
struct GemmTuneResult
{
    std::size_t batch = 0;  //!< coalesced batch size m tuned for
    std::size_t inDim = 0;
    std::size_t outDim = 0;
    SimdLevel level = SimdLevel::Scalar; //!< dispatch level tuned at
    bool trans = false;     //!< n-major (transposed-activation) engine
    EmbDtype dtype = EmbDtype::Fp32; //!< engine tuned (fp32 or u8·s8)
    GemmTile best;          //!< fastest tile (installed in the cache)
    double bestMs = 0.0;
    double baselineMs = 0.0; //!< scalar blocked denseLayerForward
    std::vector<GemmTileMeasurement> measurements;

    /** Speedup of the winning packed tile over the blocked baseline. */
    double
    speedup() const
    {
        return bestMs > 0.0 ? baselineMs / bestMs : 1.0;
    }
};

/**
 * Candidate (mr, kc) grid for one (batch, depth, level) point:
 * microtile heights up to gemmMaxRows(level) crossed with L1/L2-sized
 * k-chunks and the full depth, clamped to the shape and deduplicated.
 * Always contains defaultGemmTile's choice.
 */
std::vector<GemmTile> defaultGemmTileGrid(std::size_t batch,
                                          std::size_t in_dim,
                                          SimdLevel level);

/**
 * Measures the packed dense-layer kernel over @p candidates (plus the
 * scalar blocked baseline for the speedup column) on real hardware at
 * the current SimdLevel, installs the winner into
 * GemmTileCache::instance() for (bucketOf(batch), shape, level), and
 * returns every measurement.
 *
 * Deterministic pseudo-random weights/activations seeded by @p seed;
 * timing noise only affects which (numerically identical) tile wins.
 *
 * @param candidates Tiles to try; empty = defaultGemmTileGrid().
 * @param repeats Timed repetitions per candidate (best is kept).
 * @param trans Tune the n-major (transposed-activation) engine
 *        variant instead: activations are laid out feature-major
 *        [in_dim x batch] and the winner installs under the
 *        trans-keyed cache slot the streaming pipeline's first
 *        top-MLP layer consults.
 * @param dtype EmbDtype::Int8 tunes the u8·s8 packed engine instead:
 *        activations are pre-quantized once (quantization cost is
 *        per-dispatch, not per-tile) and candidates run through
 *        denseLayerForwardPackedInt8Level. The int8 driver keeps the
 *        full depth in registers, so only the microtile height mr
 *        distinguishes candidates; the default grid reflects that.
 *        baselineMs stays the *fp32* scalar blocked kernel, making
 *        speedup() the measured quantization win. Int8 has no n-major
 *        engine — trans && dtype==Int8 throws.
 *
 * @throws std::invalid_argument on batch/out_dim == 0, on
 *         trans && dtype == Int8, or on dtype == Bf16 (bf16 is an
 *         embedding-storage format; the MLPs run fp32 for it).
 */
GemmTuneResult tuneGemmTile(std::size_t batch, std::size_t in_dim,
                            std::size_t out_dim,
                            std::vector<GemmTile> candidates = {},
                            int repeats = 3, std::uint64_t seed = 1,
                            bool trans = false,
                            EmbDtype dtype = EmbDtype::Fp32);

/**
 * Tunes every layer shape of an MLP size list (e.g.
 * ModelConfig::bottomMlp or topMlpDims()) at each coalesced batch
 * size in @p batches (default: one representative per m-bucket),
 * installing all winners. The first layer is additionally tuned
 * through the n-major (transposed-activation) engine — the variant
 * the streaming pipeline feeds with the feature-major interaction
 * output — so both cache slots are warm. Returns one GemmTuneResult
 * per (batch, layer[, trans]) point, layers innermost.
 *
 * @param dtype EmbDtype::Int8 tunes the u8·s8 engine's cache slots
 *        instead (and skips the n-major point — the int8 engine has
 *        no trans variant). Serving warms both dtypes so a
 *        degradation tier switch never runs untuned.
 */
std::vector<GemmTuneResult> tuneMlpGemm(
    const std::vector<std::size_t>& dims,
    std::vector<std::size_t> batches = {}, int repeats = 3,
    std::uint64_t seed = 1, EmbDtype dtype = EmbDtype::Fp32);

} // namespace dlrmopt::core

#endif // DLRMOPT_CORE_AUTOTUNE_HPP
