#include "core/pipeline.hpp"

#include <chrono>
#include <thread>

namespace dlrmopt::core
{

namespace
{

using Clock = std::chrono::steady_clock;

double
msSince(Clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(Clock::now() - t0)
        .count();
}

} // namespace

InferencePipeline::InferencePipeline(const DlrmModel& model, Scheme scheme,
                                     const PrefetchSpec& pf)
    : _model(model), _scheme(scheme), _pf(pf)
{
}

PipelineStats
InferencePipeline::run(const Tensor& dense,
                       const std::vector<SparseBatch>& batches) const
{
    const PrefetchSpec pf =
        usesSwPrefetch(_scheme) ? _pf : PrefetchSpec{};
    switch (_scheme) {
      case Scheme::MpHt:
      case Scheme::Integrated:
        return runMpHt(dense, batches, pf);
      case Scheme::DpHt:
        return runDpHt(dense, batches);
      default:
        return runSequential(dense, batches, pf);
    }
}

PipelineStats
InferencePipeline::runSequential(const Tensor& dense,
                                 const std::vector<SparseBatch>& batches,
                                 const PrefetchSpec& pf) const
{
    PipelineStats st;
    DlrmWorkspace ws;
    const auto run0 = Clock::now();
    for (const auto& b : batches) {
        auto t0 = Clock::now();
        _model.bottomForward(dense, ws.bottomOut);
        st.bottomMs += msSince(t0);

        t0 = Clock::now();
        _model.embeddingForward(b, ws.embOut, pf);
        st.embMs += msSince(t0);

        t0 = Clock::now();
        _model.interactionForward(ws.bottomOut, ws.embOut, b.batchSize,
                                  ws.interOut);
        st.interMs += msSince(t0);

        t0 = Clock::now();
        _model.topForward(ws.interOut, ws.pred);
        st.topMs += msSince(t0);
        ++st.batches;
    }
    st.totalMs = msSince(run0);
    return st;
}

PipelineStats
InferencePipeline::runMpHt(const Tensor& dense,
                           const std::vector<SparseBatch>& batches,
                           const PrefetchSpec& pf) const
{
    PipelineStats st;
    DlrmWorkspace ws;
    const auto run0 = Clock::now();
    for (const auto& b : batches) {
        // The bottom MLP and the embedding lookup are independent
        // (Sec. 4.3): run them concurrently. On a real SMT machine the
        // two threads would be pinned to sibling hyperthreads by the
        // sched::HtThreadPool; here we let the OS place them.
        const auto stage0 = Clock::now();
        double bottom_ms = 0.0;
        std::thread mlp_thread([&] {
            const auto t0 = Clock::now();
            _model.bottomForward(dense, ws.bottomOut);
            bottom_ms = msSince(t0);
        });
        const auto t_emb = Clock::now();
        _model.embeddingForward(b, ws.embOut, pf);
        st.embMs += msSince(t_emb);
        mlp_thread.join();
        st.bottomMs += bottom_ms;
        (void)stage0;

        auto t0 = Clock::now();
        _model.interactionForward(ws.bottomOut, ws.embOut, b.batchSize,
                                  ws.interOut);
        st.interMs += msSince(t0);

        t0 = Clock::now();
        _model.topForward(ws.interOut, ws.pred);
        st.topMs += msSince(t0);
        ++st.batches;
    }
    st.totalMs = msSince(run0);
    return st;
}

PipelineStats
InferencePipeline::runDpHt(const Tensor& dense,
                           const std::vector<SparseBatch>& batches) const
{
    // Naive hyperthreading: two complete inference instances execute
    // concurrently, splitting the batch stream. Each instance runs
    // sequential stages; the two compete for one core's pipeline and
    // caches (which is why the paper finds this detrimental).
    PipelineStats st;
    const auto run0 = Clock::now();

    auto worker = [&](std::size_t first, PipelineStats *out) {
        DlrmWorkspace ws;
        for (std::size_t i = first; i < batches.size(); i += 2) {
            const auto& b = batches[i];
            auto t0 = Clock::now();
            _model.bottomForward(dense, ws.bottomOut);
            out->bottomMs += msSince(t0);
            t0 = Clock::now();
            _model.embeddingForward(b, ws.embOut, PrefetchSpec{});
            out->embMs += msSince(t0);
            t0 = Clock::now();
            _model.interactionForward(ws.bottomOut, ws.embOut, b.batchSize,
                                      ws.interOut);
            out->interMs += msSince(t0);
            t0 = Clock::now();
            _model.topForward(ws.interOut, ws.pred);
            out->topMs += msSince(t0);
            ++out->batches;
        }
    };

    PipelineStats s0, s1;
    std::thread t1(worker, 1, &s1);
    worker(0, &s0);
    t1.join();

    st.batches = s0.batches + s1.batches;
    st.bottomMs = s0.bottomMs + s1.bottomMs;
    st.embMs = s0.embMs + s1.embMs;
    st.interMs = s0.interMs + s1.interMs;
    st.topMs = s0.topMs + s1.topMs;
    st.totalMs = msSince(run0);
    return st;
}

} // namespace dlrmopt::core
