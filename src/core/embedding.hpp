/**
 * @file
 * Embedding table and the embedding_bag operator with optional
 * application-initiated software prefetching (Algorithm 3 of the
 * paper).
 */

#ifndef DLRMOPT_CORE_EMBEDDING_HPP
#define DLRMOPT_CORE_EMBEDDING_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/types.hpp"

namespace dlrmopt::core
{

/**
 * Configuration for programmer-inserted software prefetching in the
 * embedding_bag kernel (Sec. 4.2: what/when/how/where to prefetch).
 */
struct PrefetchSpec
{
    /**
     * Look-ahead distance in lookups: while accumulating lookup s, the
     * kernel prefetches the row for lookup s + distance. The paper
     * finds 4 optimal on Cascade Lake (Fig. 10b). 0 disables software
     * prefetching.
     */
    int distance = 0;

    /**
     * Prefetch amount: number of 64 B cache lines of the target row to
     * prefetch. A 128-dim fp32 row spans 8 lines; the paper finds
     * prefetching the full row (8) best on CSL (Fig. 10c), 2 on
     * ICL/SPR, 4 on Zen3 (Sec. 6.4).
     */
    int lines = 0;

    /**
     * Temporal-locality hint: 3 = _MM_HINT_T0 (into L1D, the paper's
     * choice), 2 = T1 (L2), 1 = T2 (LLC), 0 = NTA.
     */
    int locality = 3;

    bool enabled() const { return distance > 0 && lines > 0; }

    /**
     * Rejects silently-misbehaving values. A negative distance or
     * lines quietly disables prefetching (enabled() is false) and a
     * locality outside 0..3 silently degrades to the NTA hint; entry
     * points that accept user-supplied specs (autotuner, evaluator,
     * CLI) call this so such mistakes are loud errors instead.
     *
     * @throws std::invalid_argument on a negative distance/lines or a
     *         locality outside [0, 3].
     */
    void validate() const;

    /** The paper's tuned configuration for Cascade Lake. */
    static PrefetchSpec
    paperDefault()
    {
        return {4, 8, 3};
    }
};

/**
 * One embedding table: rows x dim fp32 matrix accessed by row index.
 */
class EmbeddingTable
{
  public:
    /**
     * Allocates a rows x dim table with deterministic pseudo-random
     * contents.
     *
     * @param rows Number of embedding rows (categorical values).
     * @param dim Embedding vector dimension.
     * @param seed Seed for reproducible contents.
     *
     * @throws std::invalid_argument when rows or dim is zero, or when
     *         rows * dim * sizeof(float) would overflow std::size_t.
     */
    EmbeddingTable(std::size_t rows, std::size_t dim, std::uint64_t seed);

    std::size_t rows() const { return _rows; }
    std::size_t dim() const { return _dim; }
    std::size_t bytes() const { return _rows * _dim * sizeof(float); }

    const float *data() const { return _data.data(); }

    /** Pointer to embedding row @p idx. */
    const float *
    rowPtr(RowIndex idx) const
    {
        return _data.data() + static_cast<std::size_t>(idx) * _dim;
    }

    /**
     * Rewrites rows [first, first + count) with the deterministic
     * pseudo-random contents the constructor would have produced for
     * @p seed. The constructor itself fills through this, so
     * regenerating any row range from the original seed restores the
     * as-built bytes exactly — the primitive behind
     * EmbeddingStore::repairBlock.
     *
     * @throws std::invalid_argument when the range exceeds rows().
     */
    void regenerateRows(std::size_t first, std::size_t count,
                        std::uint64_t seed);

    /**
     * Flips one bit of the stored fp32 payload of row @p row —
     * silently, exactly like a radiation/DRAM upset would. Bit
     * @p bit indexes the row's dim * 32 payload bits little-endian.
     *
     * @throws std::invalid_argument when row or bit is out of range.
     */
    void flipBit(std::size_t row, std::size_t bit);

    /**
     * embedding_bag with sum pooling (Algorithm 2/3 of the paper).
     *
     * For each sample i in [0, samples), sums the rows selected by
     * indices[offsets[i] .. offsets[i+1]) into out[i * dim ..]. When
     * @p pf is enabled, issues software prefetches for the row
     * pf.distance lookups ahead before accumulating the current row.
     *
     * @param indices Flat lookup-index array.
     * @param offsets samples + 1 offsets delimiting each sample.
     * @param samples Number of output samples (pooled bags).
     * @param out Output buffer [samples x dim].
     * @param pf Software-prefetch configuration.
     *
     * @throws IndexError when a lookup index falls outside
     *         [0, rows()); the output buffer may be partially written.
     */
    void bag(const RowIndex *indices, const RowIndex *offsets,
             std::size_t samples, float *out,
             const PrefetchSpec& pf = {}) const;

  private:
    std::size_t _rows;
    std::size_t _dim;
    std::vector<float, AlignedAllocator<float>> _data;
};

/**
 * Naive reference embedding_bag used to validate the optimized kernel
 * in the test suite.
 */
void embeddingBagRef(const float *table, std::size_t dim,
                     const RowIndex *indices, const RowIndex *offsets,
                     std::size_t samples, float *out);

} // namespace dlrmopt::core

#endif // DLRMOPT_CORE_EMBEDDING_HPP
