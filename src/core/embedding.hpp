/**
 * @file
 * Embedding table and the embedding_bag operator with optional
 * application-initiated software prefetching (Algorithm 3 of the
 * paper).
 */

#ifndef DLRMOPT_CORE_EMBEDDING_HPP
#define DLRMOPT_CORE_EMBEDDING_HPP

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

#include "core/quant.hpp"
#include "core/types.hpp"

namespace dlrmopt::core
{

/**
 * Configuration for programmer-inserted software prefetching in the
 * embedding_bag kernel (Sec. 4.2: what/when/how/where to prefetch).
 */
struct PrefetchSpec
{
    /**
     * Look-ahead distance in lookups: while accumulating lookup s, the
     * kernel prefetches the row for lookup s + distance. The paper
     * finds 4 optimal on Cascade Lake (Fig. 10b). 0 disables software
     * prefetching.
     */
    int distance = 0;

    /**
     * Prefetch amount: number of 64 B cache lines of the target row to
     * prefetch. A 128-dim fp32 row spans 8 lines; the paper finds
     * prefetching the full row (8) best on CSL (Fig. 10c), 2 on
     * ICL/SPR, 4 on Zen3 (Sec. 6.4).
     */
    int lines = 0;

    /**
     * Temporal-locality hint: 3 = _MM_HINT_T0 (into L1D, the paper's
     * choice), 2 = T1 (L2), 1 = T2 (LLC), 0 = NTA.
     */
    int locality = 3;

    bool enabled() const { return distance > 0 && lines > 0; }

    /**
     * Rejects silently-misbehaving values. A negative distance or
     * lines quietly disables prefetching (enabled() is false) and a
     * locality outside 0..3 silently degrades to the NTA hint; entry
     * points that accept user-supplied specs (autotuner, evaluator,
     * CLI) call this so such mistakes are loud errors instead.
     *
     * @throws std::invalid_argument on a negative distance/lines or a
     *         locality outside [0, 3].
     */
    void validate() const;

    /** The paper's tuned configuration for Cascade Lake. */
    static PrefetchSpec
    paperDefault()
    {
        return {4, 8, 3};
    }
};

/**
 * One embedding table: rows x dim matrix accessed by row index, stored
 * at a configurable precision. fp32 tables hold plain floats; bf16
 * tables hold truncated 16-bit patterns; int8 tables hold uint8 codes
 * with per-row (scale, bias) affine metadata (the "per-block"
 * granularity — one block is one row, so a bag lookup touches exactly
 * one parameter pair and the dequant folds into the accumulate).
 */
class EmbeddingTable
{
  public:
    /**
     * Allocates a rows x dim table with deterministic pseudo-random
     * contents.
     *
     * @param rows Number of embedding rows (categorical values).
     * @param dim Embedding vector dimension.
     * @param seed Seed for reproducible contents.
     * @param dtype Storage precision of the rows.
     *
     * @throws std::invalid_argument when rows or dim is zero, or when
     *         rows * dim * sizeof(float) would overflow std::size_t.
     */
    EmbeddingTable(std::size_t rows, std::size_t dim, std::uint64_t seed,
                   EmbDtype dtype = EmbDtype::Fp32);

    /**
     * Adopts previously stored payload bytes (a snapshot section)
     * instead of generating contents: @p bytes must hold exactly
     * bytes() stored bytes in this table's layout (fp32 floats, bf16
     * patterns, or fused int8 rows). The loaded table is
     * bitwise-identical to the one the bytes were saved from.
     *
     * @throws std::invalid_argument on zero geometry, a null pointer,
     *         or a byte count that mismatches the geometry/dtype.
     */
    EmbeddingTable(std::size_t rows, std::size_t dim, EmbDtype dtype,
                   const void *bytes, std::size_t nbytes);

    std::size_t rows() const { return _rows; }
    std::size_t dim() const { return _dim; }
    EmbDtype dtype() const { return _dtype; }

    /**
     * Bytes the table actually stores (what the bag kernel streams):
     * payload plus, for int8, the per-row scale/bias metadata.
     */
    std::size_t
    bytes() const
    {
        switch (_dtype) {
          case EmbDtype::Bf16:
            return _rows * _dim * sizeof(std::uint16_t);
          case EmbDtype::Int8:
            return _rows * int8Stride();
          default:
            return _rows * _dim * sizeof(float);
        }
    }

    /** fp32 payload (valid only when dtype() == Fp32). */
    const float *data() const { return _data.data(); }

    /**
     * Start of the stored payload at this table's dtype — bytes()
     * contiguous bytes (fused rows for int8). What a snapshot writes
     * and the loading constructor reads back.
     */
    const void *
    rawBytes() const
    {
        return rowBytesPtr(0);
    }

    /** Pointer to embedding row @p idx (fp32 tables only). */
    const float *
    rowPtr(RowIndex idx) const
    {
        return _data.data() + static_cast<std::size_t>(idx) * _dim;
    }

    /** Stored bf16 row (valid only when dtype() == Bf16). */
    const std::uint16_t *
    bf16Row(RowIndex idx) const
    {
        return _bf16.data() + static_cast<std::size_t>(idx) * _dim;
    }

    /**
     * Stored bytes of int8 row @p idx (valid only when dtype() ==
     * Int8): dim codes followed by the row's fp32 scale and bias —
     * the FBGEMM-style fused layout, so one lookup touches one
     * contiguous dim + 8 byte span instead of three scattered arrays.
     */
    const std::uint8_t *
    int8Row(RowIndex idx) const
    {
        return _q8.data() + static_cast<std::size_t>(idx) * int8Stride();
    }

    /** Affine parameters of an int8 row (valid only for Int8). */
    QuantParams
    int8Params(std::size_t row) const
    {
        QuantParams qp;
        const std::uint8_t *tail = int8Row(
            static_cast<RowIndex>(row)) + _dim;
        std::memcpy(&qp.scale, tail, sizeof(float));
        std::memcpy(&qp.bias, tail + sizeof(float), sizeof(float));
        return qp;
    }

    /**
     * Bytes one stored row occupies: bytes() / rows(). For int8 this
     * includes the fused scale/bias tail.
     */
    std::size_t
    storedRowBytes() const
    {
        return _dtype == EmbDtype::Int8 ? int8Stride()
                                        : _dim * embDtypeBits(_dtype) / 8;
    }

    /**
     * Start of row @p idx's stored bytes at this table's dtype —
     * storedRowBytes() contiguous bytes (fused codes + scale/bias for
     * int8). What a hot tier copies verbatim when pinning the row.
     */
    const void *
    rowBytes(RowIndex idx) const
    {
        return rowBytesPtr(static_cast<std::size_t>(idx));
    }

    /**
     * Writes the dequantized fp32 values of row @p row into
     * @p dst[0..dim): the exact addend the bag kernel contributes per
     * lookup of this row (bf16: widened pattern; int8:
     * code * scale + bias). For fp32 tables this is a copy.
     *
     * @throws std::invalid_argument when row is out of range.
     */
    void dequantRow(std::size_t row, float *dst) const;

    /**
     * Rewrites rows [first, first + count) with the deterministic
     * pseudo-random contents the constructor would have produced for
     * @p seed. The constructor itself fills through this, so
     * regenerating any row range from the original seed restores the
     * as-built bytes exactly — the primitive behind
     * EmbeddingStore::repairBlock.
     *
     * @throws std::invalid_argument when the range exceeds rows().
     */
    void regenerateRows(std::size_t first, std::size_t count,
                        std::uint64_t seed);

    /**
     * Flips one bit of the stored payload of row @p row — silently,
     * exactly like a radiation/DRAM upset would. Bit @p bit indexes
     * the row's payloadBits() little-endian: the stored element bytes
     * first (dim * element bits), then — for int8 tables — 32 bits of
     * the row's scale followed by 32 bits of its bias, so flips in the
     * quantization metadata are injectable too.
     *
     * @throws std::invalid_argument when row or bit is out of range.
     */
    void flipBit(std::size_t row, std::size_t bit);

    /** Number of flippable payload bits per row (see flipBit). */
    std::size_t
    payloadBits() const
    {
        const std::size_t elem = _dim * embDtypeBits(_dtype);
        return _dtype == EmbDtype::Int8 ? elem + 64 : elem;
    }

    /**
     * embedding_bag with sum pooling (Algorithm 2/3 of the paper).
     *
     * For each sample i in [0, samples), sums the rows selected by
     * indices[offsets[i] .. offsets[i+1]) into out[i * dim ..]. When
     * @p pf is enabled, issues software prefetches for the row
     * pf.distance lookups ahead before accumulating the current row.
     *
     * @param indices Flat lookup-index array.
     * @param offsets samples + 1 offsets delimiting each sample.
     * @param samples Number of output samples (pooled bags).
     * @param out Output buffer [samples x dim].
     * @param pf Software-prefetch configuration.
     *
     * @throws IndexError when a lookup index falls outside
     *         [0, rows()); the output buffer may be partially written.
     */
    void bag(const RowIndex *indices, const RowIndex *offsets,
             std::size_t samples, float *out,
             const PrefetchSpec& pf = {}) const;

    /**
     * Reference embedding_bag over this table's stored precision:
     * replays the optimized kernel's per-element arithmetic chain
     * through the forced-scalar mirrors, so its output is
     * bitwise-identical to bag() at every SimdLevel. Used by the
     * quantized kernel tests (the fp32 free function embeddingBagRef
     * below cannot see quantized storage).
     */
    void bagRef(const RowIndex *indices, const RowIndex *offsets,
                std::size_t samples, float *out) const;

  private:
    /** Start of row @p idx in the stored representation. */
    const void *rowBytesPtr(std::size_t idx) const;

    /** Fused int8 row stride: dim codes + fp32 scale + fp32 bias. */
    std::size_t
    int8Stride() const
    {
        return _dim + 2 * sizeof(float);
    }

    std::size_t _rows;
    std::size_t _dim;
    EmbDtype _dtype;
    std::vector<float, AlignedAllocator<float>> _data;
    std::vector<std::uint16_t, AlignedAllocator<std::uint16_t>> _bf16;
    std::vector<std::uint8_t, AlignedAllocator<std::uint8_t>> _q8;
};

/**
 * Naive reference embedding_bag used to validate the optimized kernel
 * in the test suite.
 */
void embeddingBagRef(const float *table, std::size_t dim,
                     const RowIndex *indices, const RowIndex *offsets,
                     std::size_t samples, float *out);

/**
 * Issues __builtin_prefetch for the first @p lines cache lines of the
 * @p row_bytes-byte embedding row at @p row_ptr (clamped to the row's
 * span). The primitive behind the bag kernels' look-ahead prefetch,
 * shared with the hot tier's cold-miss path.
 */
void prefetchRowBytes(const void *row_ptr, int lines,
                      std::size_t row_bytes, int locality);

} // namespace dlrmopt::core

#endif // DLRMOPT_CORE_EMBEDDING_HPP
