/**
 * @file
 * Dense (fully-connected) layer kernels.
 *
 * The bottom- and top-MLP stages of DLRM are back-to-back dense layers
 * (Sec. 2.1 of the paper). Two implementations coexist:
 *
 *  - denseLayerForward: the portable cache-blocked kernel over the
 *    PyTorch nn.Linear weight layout (out_dim x in_dim, row-major).
 *    Scalar inner loop; kept as the baseline the packed engine is
 *    benchmarked and regression-tested against.
 *
 *  - denseLayerForwardPacked: a register-blocked SIMD microkernel
 *    engine over weights prepacked into k-major panels of
 *    PackedWeights::panelWidth output neurons (the pack layout JIT
 *    GEMM libraries use for DLRM MLPs). The microkernel broadcasts
 *    one activation, loads one panel row, and FMA-accumulates
 *    MR x panelWidth outputs held in registers; bias and ReLU are
 *    fused into the final accumulate store (no separate init or ReLU
 *    pass). Dispatches on SimdLevel: 6x16 on AVX-512, 4x16 (two ymm
 *    per row) on AVX2, and a bitwise scalar mirror.
 *
 * Every output element's value is a single fmaf chain over k in
 * ascending order, finished by "+ bias" and the branchless ReLU
 * "acc > 0 ? acc : 0". That chain is identical in all three ISA
 * variants, for every tile shape (mr/kc), and for every position of a
 * sample inside the batch, so packed results are *bitwise* invariant
 * across SimdLevels, tile choices, and request coalescing — only the
 * kernel vs. the reference differ (by float rounding, tolerance-
 * tested).
 */

#ifndef DLRMOPT_CORE_GEMM_HPP
#define DLRMOPT_CORE_GEMM_HPP

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <tuple>
#include <vector>

#include "core/quant.hpp"
#include "core/simd.hpp"
#include "core/types.hpp"

namespace dlrmopt::core
{

/**
 * Computes one dense layer: out = act(in * W^T + b).
 *
 * Degenerate shapes are well-defined: batch == 0 or out_dim == 0 is a
 * no-op (out is never touched — no bias-init pass runs), and
 * in_dim == 0 reduces to the epilogue (bias, then optional ReLU).
 *
 * @param in Input activations, row-major [batch x in_dim].
 * @param batch Number of samples in the batch.
 * @param in_dim Input feature dimension.
 * @param weights Weight matrix, row-major [out_dim x in_dim].
 * @param bias Bias vector of length out_dim, or nullptr for no bias.
 * @param out_dim Output feature dimension.
 * @param out Output activations, row-major [batch x out_dim].
 * @param relu Apply ReLU when true (hidden layers); identity when
 *             false (final layer before the sigmoid).
 */
void denseLayerForward(const float *in, std::size_t batch,
                       std::size_t in_dim, const float *weights,
                       const float *bias, std::size_t out_dim, float *out,
                       bool relu);

/**
 * Reference (naive triple loop, double accumulator) implementation of
 * denseLayerForward, used by the test suite to validate both the
 * blocked baseline and the packed microkernel engine.
 */
void denseLayerForwardRef(const float *in, std::size_t batch,
                          std::size_t in_dim, const float *weights,
                          const float *bias, std::size_t out_dim,
                          float *out, bool relu);

/**
 * One-time panel-packed copy of a dense layer's weight matrix.
 *
 * The nn.Linear layout [out_dim x in_dim] is repacked into panels of
 * panelWidth consecutive output neurons, k-major within the panel:
 *
 *   panel(p)[k * panelWidth + j] == weights[(p*panelWidth + j)*in_dim + k]
 *
 * so the microkernel streams one contiguous panel row (a full vector
 * of 16 neighboring outputs' weights for one k) per FMA step. The
 * last panel is zero-padded to panelWidth — padded columns accumulate
 * exact zeros and are never stored.
 *
 * The panel width is fixed (not SimdLevel-dependent), so one packed
 * copy serves the AVX-512, AVX2, and scalar kernels alike; packs are
 * built once at model construction and shared read-only by every
 * forward.
 */
class PackedWeights
{
  public:
    /** Output neurons per packed panel (one AVX-512 vector). */
    static constexpr std::size_t panelWidth = 16;

    /** Creates an empty pack (inDim() == outDim() == 0). */
    PackedWeights() = default;

    /**
     * Packs @p weights (row-major [out_dim x in_dim]).
     *
     * @throws std::invalid_argument when weights is null but the
     *         shape is non-empty.
     */
    PackedWeights(const float *weights, std::size_t in_dim,
                  std::size_t out_dim);

    std::size_t inDim() const { return _inDim; }
    std::size_t outDim() const { return _outDim; }
    bool empty() const { return _outDim == 0; }

    /** Number of panels: ceil(outDim / panelWidth). */
    std::size_t
    numPanels() const
    {
        return (_outDim + panelWidth - 1) / panelWidth;
    }

    /** Packed panel @p p: [inDim x panelWidth], k-major, 64B-aligned. */
    const float *
    panel(std::size_t p) const
    {
        return _data.data() + p * _inDim * panelWidth;
    }

    /** Bytes of packed storage (includes tail-panel padding). */
    std::size_t bytes() const { return _data.size() * sizeof(float); }

  private:
    std::size_t _inDim = 0;
    std::size_t _outDim = 0;
    std::vector<float, AlignedAllocator<float>> _data;
};

/**
 * One-time int8-quantized panel-packed copy of a dense layer's weight
 * matrix, for the u8·s8 dot-product microkernel path.
 *
 * Weights are quantized symmetrically per output column:
 * W[j][k] ≈ qw[j][k] * scaleW[j], qw in [-127, 127]. Codes are packed
 * into panels of panelWidth output neurons like PackedWeights, but
 * k-pair-interleaved so a 32-byte panel row feeds one maddubs step
 * (16 columns x 2 consecutive k codes):
 *
 *   panel(p)[kp * 32 + j * 2 + (k & 1)] == qw[p*16 + j][k],  kp = k/2
 *
 * with the depth zero-padded to a multiple of 4 (paddedK()) and the
 * tail panel zero-padded to panelWidth — zero codes contribute exact
 * zeros.
 *
 * A second, k-quad-interleaved copy of the same codes is kept for the
 * AVX512-VNNI kernel, whose vpdpbusd step consumes 4 consecutive k
 * codes per column (one 64-byte panel row = 16 columns x 4 codes):
 *
 *   panelVnni(p)[kq * 64 + j * 4 + (k & 3)] == qw[p*16 + j][k],  kq = k/4
 *
 * Both layouts hold identical codes, and both kernels accumulate the
 * exact integer dot (maddubs pair-products cap at 127*127*2 < 2^15,
 * vpdpbusd's quad-sum never saturates for u8·s8), so the two paths
 * produce bitwise-identical output.
 *
 * The epilogue constants are precomputed per column:
 *  - colScale()[j] = scaleW[j] (dequant factor for the s32 dot), and
 *  - colWsum()[j] = scaleW[j] * sum_k qw[j][k], which folds the
 *    activation zero-point out of the integer loop: with activations
 *    A[k] ≈ qa[k] * sa + amin,
 *
 *      sum_k A[k] W[j][k] ≈ (sa * scaleW[j]) * dot_s32 + amin * colWsum[j]
 *
 *    so the float epilogue is one fma per output on top of bias+ReLU.
 */
class PackedWeightsInt8
{
  public:
    /** Output neurons per packed panel (one AVX-512 epilogue vector). */
    static constexpr std::size_t panelWidth = 16;

    /** Creates an empty pack (inDim() == outDim() == 0). */
    PackedWeightsInt8() = default;

    /**
     * Quantizes and packs @p weights (row-major [out_dim x in_dim]).
     *
     * @throws std::invalid_argument when weights is null but the
     *         shape is non-empty.
     */
    PackedWeightsInt8(const float *weights, std::size_t in_dim,
                      std::size_t out_dim);

    std::size_t inDim() const { return _inDim; }
    std::size_t outDim() const { return _outDim; }
    bool empty() const { return _outDim == 0; }

    /** Depth rounded up to a multiple of 4 (k-pair granularity of
     *  maddubs, k-quad granularity of vpdpbusd). */
    std::size_t paddedK() const { return _paddedK; }

    /** Number of panels: ceil(outDim / panelWidth). */
    std::size_t
    numPanels() const
    {
        return (_outDim + panelWidth - 1) / panelWidth;
    }

    /** Packed panel @p p: [paddedK/2 x 32] s8 codes, 64B-aligned. */
    const std::int8_t *
    panel(std::size_t p) const
    {
        return _data.data() + p * _paddedK * panelWidth;
    }

    /** Same codes in the VNNI quad layout: [paddedK/4 x 64] s8. */
    const std::int8_t *
    panelVnni(std::size_t p) const
    {
        return _vnni.data() + p * _paddedK * panelWidth;
    }

    /** Per-column weight scale, zero-padded to numPanels * 16. */
    const float *colScale() const { return _colScale.data(); }

    /** Per-column scaleW[j] * sum_k qw[j][k], same padding. */
    const float *colWsum() const { return _colWsum.data(); }

    /** Bytes of packed code storage (both layouts, incl. padding). */
    std::size_t bytes() const { return _data.size() + _vnni.size(); }

  private:
    std::size_t _inDim = 0;
    std::size_t _outDim = 0;
    std::size_t _paddedK = 0;
    std::vector<std::int8_t, AlignedAllocator<std::int8_t>> _data;
    std::vector<std::int8_t, AlignedAllocator<std::int8_t>> _vnni;
    std::vector<float> _colScale;
    std::vector<float> _colWsum;
};

/**
 * Register-blocking parameters for one packed dense-layer call.
 * Zero fields mean "use the level/shape default".
 */
struct GemmTile
{
    std::size_t mr = 0; //!< sample rows per microtile (<= gemmMaxRows)
    std::size_t kc = 0; //!< k-chunk length (cache blocking; 0 = full depth)

    bool operator==(const GemmTile&) const = default;
};

/** Largest microtile row count the level's kernel supports
 *  (6 on AVX-512, 4 on AVX2 and scalar). */
std::size_t gemmMaxRows(SimdLevel level);

/**
 * Heuristic tile for a (batch, shape, level) point when the cache has
 * no autotuned entry: full-depth GEMV-shaped blocking at batch == 1,
 * L1-sized k-chunks with the widest microtile otherwise.
 */
GemmTile defaultGemmTile(std::size_t batch, std::size_t in_dim,
                         std::size_t out_dim, SimdLevel level);

/**
 * Process-wide table of autotuned tiles, keyed by
 * (m-bucket, in_dim, out_dim, SimdLevel). The packed forward consults
 * it on every call (falling back to defaultGemmTile on a miss), and
 * tuneGemmTile() installs winners. Buckets coarsen the batch axis so
 * one tuning pass at a representative m covers the whole bucket:
 * m = 1 | 2-4 | 5-16 | 17-64 | 65+.
 *
 * Lookups are lock-guarded but allocation-free, so steady-state
 * forwards through a warm (or empty) cache stay zero-alloc.
 */
class GemmTileCache
{
  public:
    static GemmTileCache& instance();

    /** Bucket index (0..4) for a batch size. */
    static int bucketOf(std::size_t batch);

    /** Representative batch size used to tune bucket @p bucket. */
    static std::size_t bucketRepresentative(int bucket);

    /** Number of m-buckets. */
    static constexpr int numBuckets = 5;

    /**
     * Cached tile for this point, or defaultGemmTile on a miss.
     * @p trans keys the n-major (transposed-activation) engine
     * variant separately — its streaming pattern over the activations
     * differs, so the best blocking can too. @p dtype keys the u8·s8
     * engine (Int8) separately from the fp32 kernels: its arithmetic
     * density and panel footprint differ, so the best mr can too.
     */
    GemmTile lookup(std::size_t batch, std::size_t in_dim,
                    std::size_t out_dim, SimdLevel level,
                    bool trans = false,
                    EmbDtype dtype = EmbDtype::Fp32) const;

    /** True when this exact point has an autotuned entry. */
    bool contains(std::size_t batch, std::size_t in_dim,
                  std::size_t out_dim, SimdLevel level,
                  bool trans = false,
                  EmbDtype dtype = EmbDtype::Fp32) const;

    /** Installs @p tile for (bucketOf(batch), shape, level, trans,
     *  dtype). */
    void install(std::size_t batch, std::size_t in_dim,
                 std::size_t out_dim, SimdLevel level, GemmTile tile,
                 bool trans = false, EmbDtype dtype = EmbDtype::Fp32);

    /** Number of installed entries. */
    std::size_t size() const;

    /** Drops every entry (testing / re-tuning). */
    void clear();

  private:
    using Key =
        std::tuple<int, std::size_t, std::size_t, int, int, int>;

    mutable std::mutex _mu;
    std::map<Key, GemmTile> _tiles;
};

/**
 * Packed-weight dense layer: out = act(in * W^T + b) through the
 * register-blocked microkernel engine, dispatched on
 * currentSimdLevel() with the tile from GemmTileCache (autotuned if
 * installed, heuristic otherwise).
 *
 * Same degenerate-shape contract as denseLayerForward. Performs no
 * heap allocation.
 *
 * @param in Input activations, row-major [batch x w.inDim()].
 * @param bias Bias vector of length w.outDim(), or nullptr.
 * @param out Output activations, row-major [batch x w.outDim()].
 */
void denseLayerForwardPacked(const float *in, std::size_t batch,
                             const PackedWeights& w, const float *bias,
                             float *out, bool relu);

/**
 * denseLayerForwardPacked with a forced ISA level and explicit tile
 * (testing / ablation / autotuning). Levels above the compiled or
 * detected capability degrade like the other forced kernels
 * (AVX-512 -> AVX2 -> scalar). Results are bitwise-identical across
 * levels and tiles by construction.
 */
void denseLayerForwardPackedLevel(SimdLevel level, const float *in,
                                  std::size_t batch,
                                  const PackedWeights& w,
                                  const float *bias, float *out,
                                  bool relu, const GemmTile& tile = {});

/**
 * n-major (transposed-activation) packed dense layer:
 * out = act(A^T * W^T + b) where @p in_t holds the activations
 * feature-major, [w.inDim() x batch] row-major (element (m, k) at
 * in_t[k*batch + m]). The output stays row-major [batch x w.outDim()],
 * so one trans call converts a feature-major producer (the streaming
 * pipeline's interaction stage) back into the standard layout without
 * a separate repack pass.
 *
 * Only the activation load addresses differ from the m-major engine —
 * each output element runs the identical fmaf chain over ascending k
 * with the same fused epilogue — so results are bitwise-identical to
 * denseLayerForwardPacked on the same (untransposed) activations,
 * across SimdLevels and tiles alike.
 */
void denseLayerForwardPackedTrans(const float *in_t, std::size_t batch,
                                  const PackedWeights& w,
                                  const float *bias, float *out,
                                  bool relu);

/** denseLayerForwardPackedTrans with a forced ISA level and explicit
 *  tile (testing / ablation / autotuning). */
void denseLayerForwardPackedTransLevel(SimdLevel level,
                                       const float *in_t,
                                       std::size_t batch,
                                       const PackedWeights& w,
                                       const float *bias, float *out,
                                       bool relu,
                                       const GemmTile& tile = {});

/**
 * Quantizes a GEMM activation block to uint8 codes for the u8·s8
 * microkernel: one affine (scale, bias) pair for the whole
 * [batch x k] tensor with qmax = 127 — the cap keeps every maddubs
 * pair product at <= 127*127*2 = 32258, inside s16, so the integer
 * accumulation is exact (no saturation) and therefore bitwise
 * invariant across SimdLevels, tiles, and batch positions.
 *
 * Codes land in @p qout with row stride @p kp (the pack's paddedK());
 * pad bytes are zeroed. Returns the (scale, bias) pair the epilogue
 * needs. @p qout must hold batch * kp bytes.
 */
QuantParams quantizeActivationsInt8(const float *in, std::size_t batch,
                                    std::size_t k, std::size_t kp,
                                    std::uint8_t *qout);

/**
 * u8·s8 packed dense layer: out = act(in * W^T + b) where @p qin holds
 * uint8 activation codes (row stride w.paddedK(), from
 * quantizeActivationsInt8) and @p w the s8-quantized panels. The
 * microkernel accumulates maddubs pair-dots into s32 registers — exact
 * integer arithmetic — and the fused epilogue dequantizes, adds bias,
 * and applies ReLU in one register pass:
 *
 *   v = fmaf((float)dot, ascale * colScale[j],
 *            fmaf(amin, colWsum[j], bias[j]))
 *
 * The scalar mirror performs the identical chain per element, so
 * results are bitwise invariant across SimdLevels, tiles, and batch
 * positions (the s32 dot is exact; the float epilogue is a fixed
 * 3-op chain per output).
 *
 * Same degenerate-shape contract as denseLayerForward. Performs no
 * heap allocation.
 *
 * @param ascale Activation scale from quantizeActivationsInt8.
 * @param amin Activation bias (minimum) from quantizeActivationsInt8.
 */
void denseLayerForwardPackedInt8(const std::uint8_t *qin,
                                 std::size_t batch,
                                 const PackedWeightsInt8& w,
                                 const float *bias, float *out,
                                 bool relu, float ascale, float amin);

/** denseLayerForwardPackedInt8 with a forced ISA level and explicit
 *  tile (testing / ablation / autotuning; only tile.mr matters — the
 *  integer kernel always runs the full depth). */
void denseLayerForwardPackedInt8Level(SimdLevel level,
                                      const std::uint8_t *qin,
                                      std::size_t batch,
                                      const PackedWeightsInt8& w,
                                      const float *bias, float *out,
                                      bool relu, float ascale,
                                      float amin,
                                      const GemmTile& tile = {});

/**
 * Convenience fp32-in/fp32-out wrapper: quantizes @p in into
 * @p qscratch (resized to batch * w.paddedK()) and runs the packed
 * u8·s8 forward. Allocation-free once qscratch has warmed up.
 */
void denseLayerForwardInt8(const float *in, std::size_t batch,
                           const PackedWeightsInt8& w, const float *bias,
                           float *out, bool relu,
                           std::vector<std::uint8_t>& qscratch);

/** Logistic sigmoid applied elementwise in place. */
void sigmoidInplace(float *data, std::size_t n);

} // namespace dlrmopt::core

#endif // DLRMOPT_CORE_GEMM_HPP
