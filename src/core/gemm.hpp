/**
 * @file
 * Dense (fully-connected) layer kernels.
 *
 * The bottom- and top-MLP stages of DLRM are back-to-back dense layers
 * (Sec. 2.1 of the paper). We implement a cache-blocked SGEMM with the
 * weight matrix stored transposed (out_dim x in_dim), the layout used
 * by PyTorch's nn.Linear, so each output neuron reads a contiguous
 * weight row and the inner loop auto-vectorizes with FMA.
 */

#ifndef DLRMOPT_CORE_GEMM_HPP
#define DLRMOPT_CORE_GEMM_HPP

#include <cstddef>

namespace dlrmopt::core
{

/**
 * Computes one dense layer: out = act(in * W^T + b).
 *
 * @param in Input activations, row-major [batch x in_dim].
 * @param batch Number of samples in the batch.
 * @param in_dim Input feature dimension.
 * @param weights Weight matrix, row-major [out_dim x in_dim].
 * @param bias Bias vector of length out_dim, or nullptr for no bias.
 * @param out_dim Output feature dimension.
 * @param out Output activations, row-major [batch x out_dim].
 * @param relu Apply ReLU when true (hidden layers); identity when
 *             false (final layer before the sigmoid).
 */
void denseLayerForward(const float *in, std::size_t batch,
                       std::size_t in_dim, const float *weights,
                       const float *bias, std::size_t out_dim, float *out,
                       bool relu);

/**
 * Reference (naive triple loop) implementation of denseLayerForward,
 * used by the test suite to validate the blocked kernel.
 */
void denseLayerForwardRef(const float *in, std::size_t batch,
                          std::size_t in_dim, const float *weights,
                          const float *bias, std::size_t out_dim,
                          float *out, bool relu);

/** Logistic sigmoid applied elementwise in place. */
void sigmoidInplace(float *data, std::size_t n);

} // namespace dlrmopt::core

#endif // DLRMOPT_CORE_GEMM_HPP
