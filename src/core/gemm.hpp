/**
 * @file
 * Dense (fully-connected) layer kernels.
 *
 * The bottom- and top-MLP stages of DLRM are back-to-back dense layers
 * (Sec. 2.1 of the paper). Two implementations coexist:
 *
 *  - denseLayerForward: the portable cache-blocked kernel over the
 *    PyTorch nn.Linear weight layout (out_dim x in_dim, row-major).
 *    Scalar inner loop; kept as the baseline the packed engine is
 *    benchmarked and regression-tested against.
 *
 *  - denseLayerForwardPacked: a register-blocked SIMD microkernel
 *    engine over weights prepacked into k-major panels of
 *    PackedWeights::panelWidth output neurons (the pack layout JIT
 *    GEMM libraries use for DLRM MLPs). The microkernel broadcasts
 *    one activation, loads one panel row, and FMA-accumulates
 *    MR x panelWidth outputs held in registers; bias and ReLU are
 *    fused into the final accumulate store (no separate init or ReLU
 *    pass). Dispatches on SimdLevel: 6x16 on AVX-512, 4x16 (two ymm
 *    per row) on AVX2, and a bitwise scalar mirror.
 *
 * Every output element's value is a single fmaf chain over k in
 * ascending order, finished by "+ bias" and the branchless ReLU
 * "acc > 0 ? acc : 0". That chain is identical in all three ISA
 * variants, for every tile shape (mr/kc), and for every position of a
 * sample inside the batch, so packed results are *bitwise* invariant
 * across SimdLevels, tile choices, and request coalescing — only the
 * kernel vs. the reference differ (by float rounding, tolerance-
 * tested).
 */

#ifndef DLRMOPT_CORE_GEMM_HPP
#define DLRMOPT_CORE_GEMM_HPP

#include <cstddef>
#include <map>
#include <mutex>
#include <tuple>
#include <vector>

#include "core/simd.hpp"
#include "core/types.hpp"

namespace dlrmopt::core
{

/**
 * Computes one dense layer: out = act(in * W^T + b).
 *
 * Degenerate shapes are well-defined: batch == 0 or out_dim == 0 is a
 * no-op (out is never touched — no bias-init pass runs), and
 * in_dim == 0 reduces to the epilogue (bias, then optional ReLU).
 *
 * @param in Input activations, row-major [batch x in_dim].
 * @param batch Number of samples in the batch.
 * @param in_dim Input feature dimension.
 * @param weights Weight matrix, row-major [out_dim x in_dim].
 * @param bias Bias vector of length out_dim, or nullptr for no bias.
 * @param out_dim Output feature dimension.
 * @param out Output activations, row-major [batch x out_dim].
 * @param relu Apply ReLU when true (hidden layers); identity when
 *             false (final layer before the sigmoid).
 */
void denseLayerForward(const float *in, std::size_t batch,
                       std::size_t in_dim, const float *weights,
                       const float *bias, std::size_t out_dim, float *out,
                       bool relu);

/**
 * Reference (naive triple loop, double accumulator) implementation of
 * denseLayerForward, used by the test suite to validate both the
 * blocked baseline and the packed microkernel engine.
 */
void denseLayerForwardRef(const float *in, std::size_t batch,
                          std::size_t in_dim, const float *weights,
                          const float *bias, std::size_t out_dim,
                          float *out, bool relu);

/**
 * One-time panel-packed copy of a dense layer's weight matrix.
 *
 * The nn.Linear layout [out_dim x in_dim] is repacked into panels of
 * panelWidth consecutive output neurons, k-major within the panel:
 *
 *   panel(p)[k * panelWidth + j] == weights[(p*panelWidth + j)*in_dim + k]
 *
 * so the microkernel streams one contiguous panel row (a full vector
 * of 16 neighboring outputs' weights for one k) per FMA step. The
 * last panel is zero-padded to panelWidth — padded columns accumulate
 * exact zeros and are never stored.
 *
 * The panel width is fixed (not SimdLevel-dependent), so one packed
 * copy serves the AVX-512, AVX2, and scalar kernels alike; packs are
 * built once at model construction and shared read-only by every
 * forward.
 */
class PackedWeights
{
  public:
    /** Output neurons per packed panel (one AVX-512 vector). */
    static constexpr std::size_t panelWidth = 16;

    /** Creates an empty pack (inDim() == outDim() == 0). */
    PackedWeights() = default;

    /**
     * Packs @p weights (row-major [out_dim x in_dim]).
     *
     * @throws std::invalid_argument when weights is null but the
     *         shape is non-empty.
     */
    PackedWeights(const float *weights, std::size_t in_dim,
                  std::size_t out_dim);

    std::size_t inDim() const { return _inDim; }
    std::size_t outDim() const { return _outDim; }
    bool empty() const { return _outDim == 0; }

    /** Number of panels: ceil(outDim / panelWidth). */
    std::size_t
    numPanels() const
    {
        return (_outDim + panelWidth - 1) / panelWidth;
    }

    /** Packed panel @p p: [inDim x panelWidth], k-major, 64B-aligned. */
    const float *
    panel(std::size_t p) const
    {
        return _data.data() + p * _inDim * panelWidth;
    }

    /** Bytes of packed storage (includes tail-panel padding). */
    std::size_t bytes() const { return _data.size() * sizeof(float); }

  private:
    std::size_t _inDim = 0;
    std::size_t _outDim = 0;
    std::vector<float, AlignedAllocator<float>> _data;
};

/**
 * Register-blocking parameters for one packed dense-layer call.
 * Zero fields mean "use the level/shape default".
 */
struct GemmTile
{
    std::size_t mr = 0; //!< sample rows per microtile (<= gemmMaxRows)
    std::size_t kc = 0; //!< k-chunk length (cache blocking; 0 = full depth)

    bool operator==(const GemmTile&) const = default;
};

/** Largest microtile row count the level's kernel supports
 *  (6 on AVX-512, 4 on AVX2 and scalar). */
std::size_t gemmMaxRows(SimdLevel level);

/**
 * Heuristic tile for a (batch, shape, level) point when the cache has
 * no autotuned entry: full-depth GEMV-shaped blocking at batch == 1,
 * L1-sized k-chunks with the widest microtile otherwise.
 */
GemmTile defaultGemmTile(std::size_t batch, std::size_t in_dim,
                         std::size_t out_dim, SimdLevel level);

/**
 * Process-wide table of autotuned tiles, keyed by
 * (m-bucket, in_dim, out_dim, SimdLevel). The packed forward consults
 * it on every call (falling back to defaultGemmTile on a miss), and
 * tuneGemmTile() installs winners. Buckets coarsen the batch axis so
 * one tuning pass at a representative m covers the whole bucket:
 * m = 1 | 2-4 | 5-16 | 17-64 | 65+.
 *
 * Lookups are lock-guarded but allocation-free, so steady-state
 * forwards through a warm (or empty) cache stay zero-alloc.
 */
class GemmTileCache
{
  public:
    static GemmTileCache& instance();

    /** Bucket index (0..4) for a batch size. */
    static int bucketOf(std::size_t batch);

    /** Representative batch size used to tune bucket @p bucket. */
    static std::size_t bucketRepresentative(int bucket);

    /** Number of m-buckets. */
    static constexpr int numBuckets = 5;

    /**
     * Cached tile for this point, or defaultGemmTile on a miss.
     * @p trans keys the n-major (transposed-activation) engine
     * variant separately — its streaming pattern over the activations
     * differs, so the best blocking can too.
     */
    GemmTile lookup(std::size_t batch, std::size_t in_dim,
                    std::size_t out_dim, SimdLevel level,
                    bool trans = false) const;

    /** True when this exact point has an autotuned entry. */
    bool contains(std::size_t batch, std::size_t in_dim,
                  std::size_t out_dim, SimdLevel level,
                  bool trans = false) const;

    /** Installs @p tile for (bucketOf(batch), shape, level, trans). */
    void install(std::size_t batch, std::size_t in_dim,
                 std::size_t out_dim, SimdLevel level, GemmTile tile,
                 bool trans = false);

    /** Number of installed entries. */
    std::size_t size() const;

    /** Drops every entry (testing / re-tuning). */
    void clear();

  private:
    using Key = std::tuple<int, std::size_t, std::size_t, int, int>;

    mutable std::mutex _mu;
    std::map<Key, GemmTile> _tiles;
};

/**
 * Packed-weight dense layer: out = act(in * W^T + b) through the
 * register-blocked microkernel engine, dispatched on
 * currentSimdLevel() with the tile from GemmTileCache (autotuned if
 * installed, heuristic otherwise).
 *
 * Same degenerate-shape contract as denseLayerForward. Performs no
 * heap allocation.
 *
 * @param in Input activations, row-major [batch x w.inDim()].
 * @param bias Bias vector of length w.outDim(), or nullptr.
 * @param out Output activations, row-major [batch x w.outDim()].
 */
void denseLayerForwardPacked(const float *in, std::size_t batch,
                             const PackedWeights& w, const float *bias,
                             float *out, bool relu);

/**
 * denseLayerForwardPacked with a forced ISA level and explicit tile
 * (testing / ablation / autotuning). Levels above the compiled or
 * detected capability degrade like the other forced kernels
 * (AVX-512 -> AVX2 -> scalar). Results are bitwise-identical across
 * levels and tiles by construction.
 */
void denseLayerForwardPackedLevel(SimdLevel level, const float *in,
                                  std::size_t batch,
                                  const PackedWeights& w,
                                  const float *bias, float *out,
                                  bool relu, const GemmTile& tile = {});

/**
 * n-major (transposed-activation) packed dense layer:
 * out = act(A^T * W^T + b) where @p in_t holds the activations
 * feature-major, [w.inDim() x batch] row-major (element (m, k) at
 * in_t[k*batch + m]). The output stays row-major [batch x w.outDim()],
 * so one trans call converts a feature-major producer (the streaming
 * pipeline's interaction stage) back into the standard layout without
 * a separate repack pass.
 *
 * Only the activation load addresses differ from the m-major engine —
 * each output element runs the identical fmaf chain over ascending k
 * with the same fused epilogue — so results are bitwise-identical to
 * denseLayerForwardPacked on the same (untransposed) activations,
 * across SimdLevels and tiles alike.
 */
void denseLayerForwardPackedTrans(const float *in_t, std::size_t batch,
                                  const PackedWeights& w,
                                  const float *bias, float *out,
                                  bool relu);

/** denseLayerForwardPackedTrans with a forced ISA level and explicit
 *  tile (testing / ablation / autotuning). */
void denseLayerForwardPackedTransLevel(SimdLevel level,
                                       const float *in_t,
                                       std::size_t batch,
                                       const PackedWeights& w,
                                       const float *bias, float *out,
                                       bool relu,
                                       const GemmTile& tile = {});

/** Logistic sigmoid applied elementwise in place. */
void sigmoidInplace(float *data, std::size_t n);

} // namespace dlrmopt::core

#endif // DLRMOPT_CORE_GEMM_HPP
