/**
 * @file
 * Common type aliases, constants, and memory utilities shared across the
 * dlrmopt libraries.
 */

#ifndef DLRMOPT_CORE_TYPES_HPP
#define DLRMOPT_CORE_TYPES_HPP

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <new>

#if defined(__linux__)
#include <sys/mman.h>
#endif

namespace dlrmopt
{

/** Size of one cache line on all modeled platforms, in bytes. */
constexpr std::size_t cachelineBytes = 64;

/**
 * x86 huge-page size. Allocations at least this large are worth
 * backing with huge pages: a multi-hundred-MB embedding table under
 * 4 KiB pages turns every random lookup into a DTLB miss whose page
 * walk (~tens of ns) rivals the row fetch itself, flattening the
 * bandwidth advantage of reduced-precision rows.
 */
constexpr std::size_t hugePageBytes = std::size_t{2} << 20;

/** Number of 32-bit floats that fit in one cache line. */
constexpr std::size_t floatsPerLine = cachelineBytes / sizeof(float);

/** Row index into an embedding table (PyTorch uses int64 indices). */
using RowIndex = std::int64_t;

/**
 * Minimal STL-compatible allocator that over-aligns allocations to a
 * cache-line boundary. Used for tensors and embedding tables so SIMD
 * loads never split lines and false sharing is avoided.
 */
template <typename T>
struct AlignedAllocator
{
    using value_type = T;

    AlignedAllocator() noexcept = default;

    template <typename U>
    AlignedAllocator(const AlignedAllocator<U>&) noexcept
    {
    }

    T *
    allocate(std::size_t n)
    {
        if (n == 0)
            return nullptr;
        const std::size_t bytes = n * sizeof(T);
        if (bytes >= hugePageBytes) {
            // Huge-page-aligned plus MADV_HUGEPAGE: with THP in
            // madvise mode the kernel backs the region with 2 MiB
            // pages on first touch, so random embedding lookups stay
            // DTLB-resident. Harmless no-op where THP is disabled.
            void *p = ::operator new[](bytes,
                                       std::align_val_t(hugePageBytes));
#if defined(__linux__)
            ::madvise(p, bytes, MADV_HUGEPAGE);
#endif
            return static_cast<T *>(p);
        }
        void *p = ::operator new[](bytes,
                                   std::align_val_t(cachelineBytes));
        return static_cast<T *>(p);
    }

    void
    deallocate(T *p, std::size_t n) noexcept
    {
        if (n * sizeof(T) >= hugePageBytes) {
            ::operator delete[](p, std::align_val_t(hugePageBytes));
            return;
        }
        ::operator delete[](p, std::align_val_t(cachelineBytes));
    }

    template <typename U>
    bool operator==(const AlignedAllocator<U>&) const noexcept
    {
        return true;
    }
};

/**
 * Deterministic 64-bit mixing function (splitmix64 finalizer). Used
 * wherever the library needs cheap, reproducible pseudo-randomness
 * derived from a counter, e.g. weight initialization and synthetic
 * index draws.
 *
 * @param x Input word (typically seed ^ counter).
 * @return Well-mixed 64-bit value.
 */
constexpr std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/**
 * Map a 64-bit random word to a uniform double in [0, 1).
 */
constexpr double
toUnitInterval(std::uint64_t x)
{
    return static_cast<double>(x >> 11) * 0x1.0p-53;
}

} // namespace dlrmopt

#endif // DLRMOPT_CORE_TYPES_HPP
