/**
 * @file
 * DLRM dot-product feature interaction (Fig. 2 of the paper).
 *
 * The interaction stage takes the bottom-MLP output plus one pooled
 * embedding vector per table (T + 1 vectors of the embedding
 * dimension) and computes all pairwise dot products; the result is
 * concatenated with the bottom-MLP output to form the top-MLP input.
 */

#ifndef DLRMOPT_CORE_INTERACTION_HPP
#define DLRMOPT_CORE_INTERACTION_HPP

#include <cstddef>
#include <vector>

namespace dlrmopt::core
{

/**
 * Output feature width of the interaction stage.
 *
 * @param num_tables Number of embedding tables (T).
 * @param dim Embedding dimension (also bottom-MLP output width).
 * @return dim + T*(T+1)/2 (pairwise dots among T+1 vectors, plus the
 *         passthrough bottom-MLP features).
 */
constexpr std::size_t
interactionOutputDim(std::size_t num_tables, std::size_t dim)
{
    return dim + num_tables * (num_tables + 1) / 2;
}

/**
 * Computes the dot interaction for a batch.
 *
 * @param bottom Bottom-MLP output, [batch x dim].
 * @param emb Per-table pooled embeddings; emb[t] points to a
 *            [batch x dim] buffer for table t.
 * @param num_tables Number of embedding tables.
 * @param batch Batch size.
 * @param dim Embedding dimension.
 * @param out Output, [batch x interactionOutputDim(num_tables, dim)].
 */
void dotInteraction(const float *bottom,
                    const std::vector<const float *>& emb,
                    std::size_t num_tables, std::size_t batch,
                    std::size_t dim, float *out);

/**
 * dotInteraction with a feature-major (n-major / transposed) output:
 * @p out_t is [interactionOutputDim(num_tables, dim) x batch], with
 * sample b's feature f at out_t[f*batch + b]. Each value is computed
 * by the identical dot-product chain as dotInteraction — only the
 * store address differs — so the transposed output is bitwise-equal
 * to the row-major one, element for element. This is the layout the
 * n-major packed GEMM consumes directly, letting the streaming
 * pipeline feed the top-MLP first layer without a repack pass.
 */
void dotInteractionTransposed(const float *bottom,
                              const std::vector<const float *>& emb,
                              std::size_t num_tables, std::size_t batch,
                              std::size_t dim, float *out_t);

} // namespace dlrmopt::core

#endif // DLRMOPT_CORE_INTERACTION_HPP
