#include "core/embedding_store.hpp"

#include <cstring>
#include <stdexcept>
#include <string>

namespace dlrmopt::core
{

namespace
{

/**
 * FNV-1a over a float span, folding four bytes at a time. Fast enough
 * to sweep multi-GB stores and sensitive to any single flipped bit,
 * which is all an integrity checksum needs (this is corruption
 * *detection*, not an adversarial MAC).
 */
std::uint64_t
fnv1a(const float *data, std::size_t count)
{
    std::uint64_t h = 1469598103934665603ull;
    for (std::size_t i = 0; i < count; ++i) {
        std::uint32_t u;
        std::memcpy(&u, data + i, sizeof(u));
        h = (h ^ u) * 1099511628211ull;
        h = (h ^ (u >> 16)) * 1099511628211ull;
    }
    return h;
}

} // namespace

EmbeddingStore::EmbeddingStore(const ModelConfig& cfg, std::uint64_t seed,
                               std::size_t blockRows)
    : _rows(cfg.rows), _dim(cfg.dim),
      _blockRows(blockRows < cfg.rows ? blockRows : cfg.rows)
{
    if (cfg.tables == 0) {
        throw std::invalid_argument(
            "EmbeddingStore: model needs at least one table");
    }
    if (blockRows == 0) {
        throw std::invalid_argument(
            "EmbeddingStore: blockRows must be positive");
    }
    _tables.reserve(cfg.tables);
    _tableSeeds.reserve(cfg.tables);
    for (std::size_t t = 0; t < cfg.tables; ++t) {
        _tableSeeds.push_back(mix64(seed + 100 + t));
        _tables.push_back(std::make_unique<EmbeddingTable>(
            cfg.rows, cfg.dim, _tableSeeds.back()));
    }
    const std::size_t blocks = numBlocks();
    _checksums.resize(cfg.tables * blocks);
    for (std::size_t t = 0; t < cfg.tables; ++t)
        for (std::size_t b = 0; b < blocks; ++b)
            _checksums[t * blocks + b] = computeChecksum(t, b);
}

std::uint64_t
EmbeddingStore::computeChecksum(std::size_t t, std::size_t b) const
{
    const std::size_t first = b * _blockRows;
    const std::size_t count =
        first + _blockRows <= _rows ? _blockRows : _rows - first;
    return fnv1a(_tables[t]->rowPtr(static_cast<RowIndex>(first)),
                 count * _dim);
}

std::vector<BlockRef>
EmbeddingStore::findCorruptBlocks() const
{
    std::vector<BlockRef> bad;
    for (std::size_t t = 0; t < _tables.size(); ++t)
        for (std::size_t b = 0; b < numBlocks(); ++b)
            if (!verifyBlock(t, b))
                bad.push_back({t, b});
    return bad;
}

void
EmbeddingStore::flipBit(std::size_t t, std::size_t row, std::size_t bit)
{
    if (t >= _tables.size()) {
        throw std::invalid_argument(
            "EmbeddingStore::flipBit: table " + std::to_string(t) +
            " out of range [0, " + std::to_string(_tables.size()) + ")");
    }
    _tables[t]->flipBit(row, bit);
}

void
EmbeddingStore::repairBlock(std::size_t t, std::size_t b)
{
    if (t >= _tables.size() || b >= numBlocks()) {
        throw std::invalid_argument(
            "EmbeddingStore::repairBlock: block (" + std::to_string(t) +
            ", " + std::to_string(b) + ") out of range");
    }
    const std::size_t first = b * _blockRows;
    const std::size_t count =
        first + _blockRows <= _rows ? _blockRows : _rows - first;
    _tables[t]->regenerateRows(first, count, _tableSeeds[t]);
}

} // namespace dlrmopt::core
