#include "core/embedding_store.hpp"

#include <cstring>
#include <stdexcept>
#include <string>

namespace dlrmopt::core
{

namespace
{

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

/**
 * FNV-1a over a float span, folding four bytes at a time. Fast enough
 * to sweep multi-GB stores and sensitive to any single flipped bit,
 * which is all an integrity checksum needs (this is corruption
 * *detection*, not an adversarial MAC).
 */
std::uint64_t
fnv1a(const float *data, std::size_t count,
      std::uint64_t h = kFnvOffset)
{
    for (std::size_t i = 0; i < count; ++i) {
        std::uint32_t u;
        std::memcpy(&u, data + i, sizeof(u));
        h = (h ^ u) * kFnvPrime;
        h = (h ^ (u >> 16)) * kFnvPrime;
    }
    return h;
}

/** FNV-1a over stored bf16 patterns, one 16-bit fold per element. */
std::uint64_t
fnv1aU16(const std::uint16_t *data, std::size_t count,
         std::uint64_t h = kFnvOffset)
{
    for (std::size_t i = 0; i < count; ++i)
        h = (h ^ data[i]) * kFnvPrime;
    return h;
}

/** FNV-1a over stored int8 codes, one byte fold per element. */
std::uint64_t
fnv1aU8(const std::uint8_t *data, std::size_t count,
        std::uint64_t h = kFnvOffset)
{
    for (std::size_t i = 0; i < count; ++i)
        h = (h ^ data[i]) * kFnvPrime;
    return h;
}

} // namespace

EmbeddingStore::EmbeddingStore(const ModelConfig& cfg, std::uint64_t seed,
                               std::size_t blockRows, EmbDtype dtype)
    : _rows(cfg.rows), _dim(cfg.dim), _dtype(dtype),
      _blockRows(blockRows < cfg.rows ? blockRows : cfg.rows)
{
    if (cfg.tables == 0) {
        throw std::invalid_argument(
            "EmbeddingStore: model needs at least one table");
    }
    if (blockRows == 0) {
        throw std::invalid_argument(
            "EmbeddingStore: blockRows must be positive");
    }
    _tables.reserve(cfg.tables);
    _tableSeeds.reserve(cfg.tables);
    for (std::size_t t = 0; t < cfg.tables; ++t) {
        _tableSeeds.push_back(mix64(seed + 100 + t));
        _tables.push_back(std::make_unique<EmbeddingTable>(
            cfg.rows, cfg.dim, _tableSeeds.back(), _dtype));
    }
    rebuildChecksums();
}

EmbeddingStore::EmbeddingStore(
    const ModelConfig& cfg, EmbDtype dtype, std::size_t blockRows,
    std::vector<std::unique_ptr<EmbeddingTable>> tables,
    std::vector<std::uint64_t> tableSeeds)
    : _rows(cfg.rows), _dim(cfg.dim), _dtype(dtype),
      _blockRows(blockRows < cfg.rows ? blockRows : cfg.rows),
      _tables(std::move(tables)), _tableSeeds(std::move(tableSeeds))
{
    if (_tables.empty() || _tables.size() != cfg.tables) {
        throw std::invalid_argument(
            "EmbeddingStore: adopted " + std::to_string(_tables.size()) +
            " tables for a " + std::to_string(cfg.tables) +
            "-table config");
    }
    if (_tableSeeds.size() != _tables.size()) {
        throw std::invalid_argument(
            "EmbeddingStore: need one build seed per adopted table");
    }
    if (blockRows == 0) {
        throw std::invalid_argument(
            "EmbeddingStore: blockRows must be positive");
    }
    for (std::size_t t = 0; t < _tables.size(); ++t) {
        const EmbeddingTable *tab = _tables[t].get();
        if (tab == nullptr || tab->rows() != cfg.rows ||
            tab->dim() != cfg.dim || tab->dtype() != dtype) {
            throw std::invalid_argument(
                "EmbeddingStore: adopted table " + std::to_string(t) +
                " does not match the config geometry/dtype");
        }
    }
    rebuildChecksums();
}

void
EmbeddingStore::rebuildChecksums()
{
    const std::size_t blocks = numBlocks();
    _checksums.resize(_tables.size() * blocks);
    for (std::size_t t = 0; t < _tables.size(); ++t)
        for (std::size_t b = 0; b < blocks; ++b)
            _checksums[t * blocks + b] = computeChecksum(t, b);
}

std::uint64_t
EmbeddingStore::computeChecksum(std::size_t t, std::size_t b) const
{
    const std::size_t first = b * _blockRows;
    const std::size_t count =
        first + _blockRows <= _rows ? _blockRows : _rows - first;
    const EmbeddingTable& tab = *_tables[t];
    switch (_dtype) {
      case EmbDtype::Bf16:
        return payloadChecksum(
            _dtype, tab.bf16Row(static_cast<RowIndex>(first)),
            count * _dim);
      case EmbDtype::Int8:
        // The fused rows carry codes AND the per-row scale/bias
        // words in one contiguous span, so one pass covers both: a
        // metadata upset corrupts every dequantized value of its
        // row and must trip verifyBlock exactly like a payload bit.
        return payloadChecksum(
            _dtype, tab.int8Row(static_cast<RowIndex>(first)),
            count * tab.storedRowBytes());
      default:
        return payloadChecksum(
            _dtype, tab.rowPtr(static_cast<RowIndex>(first)),
            count * _dim);
    }
}

std::uint64_t
EmbeddingStore::payloadChecksum(EmbDtype dtype, const void *data,
                                std::size_t count)
{
    switch (dtype) {
      case EmbDtype::Bf16:
        return fnv1aU16(static_cast<const std::uint16_t *>(data),
                        count);
      case EmbDtype::Int8:
        return fnv1aU8(static_cast<const std::uint8_t *>(data), count);
      default:
        return fnv1a(static_cast<const float *>(data), count);
    }
}

std::vector<BlockRef>
EmbeddingStore::findCorruptBlocks() const
{
    std::vector<BlockRef> bad;
    for (std::size_t t = 0; t < _tables.size(); ++t)
        for (std::size_t b = 0; b < numBlocks(); ++b)
            if (!verifyBlock(t, b))
                bad.push_back({t, b});
    return bad;
}

void
EmbeddingStore::flipBit(std::size_t t, std::size_t row, std::size_t bit)
{
    if (t >= _tables.size()) {
        throw std::invalid_argument(
            "EmbeddingStore::flipBit: table " + std::to_string(t) +
            " out of range [0, " + std::to_string(_tables.size()) + ")");
    }
    _tables[t]->flipBit(row, bit);
}

void
EmbeddingStore::repairBlock(std::size_t t, std::size_t b)
{
    if (t >= _tables.size() || b >= numBlocks()) {
        throw std::invalid_argument(
            "EmbeddingStore::repairBlock: block (" + std::to_string(t) +
            ", " + std::to_string(b) + ") out of range");
    }
    const std::size_t first = b * _blockRows;
    const std::size_t count =
        first + _blockRows <= _rows ? _blockRows : _rows - first;
    _tables[t]->regenerateRows(first, count, _tableSeeds[t]);
}

} // namespace dlrmopt::core
