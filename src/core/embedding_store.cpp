#include "core/embedding_store.hpp"

#include <stdexcept>

namespace dlrmopt::core
{

EmbeddingStore::EmbeddingStore(const ModelConfig& cfg,
                               std::uint64_t seed)
    : _rows(cfg.rows), _dim(cfg.dim)
{
    if (cfg.tables == 0) {
        throw std::invalid_argument(
            "EmbeddingStore: model needs at least one table");
    }
    _tables.reserve(cfg.tables);
    for (std::size_t t = 0; t < cfg.tables; ++t) {
        _tables.push_back(std::make_unique<EmbeddingTable>(
            cfg.rows, cfg.dim, mix64(seed + 100 + t)));
    }
}

} // namespace dlrmopt::core
