/**
 * @file
 * Multi-layer perceptron built from dense layers.
 *
 * DLRM uses two MLPs: the bottom MLP transforms dense (continuous)
 * features into the embedding dimension, and the top MLP maps the
 * feature-interaction output to a click-through-rate prediction
 * (Fig. 2 of the paper).
 */

#ifndef DLRMOPT_CORE_MLP_HPP
#define DLRMOPT_CORE_MLP_HPP

#include <cstdint>
#include <vector>

#include "core/gemm.hpp"
#include "core/tensor.hpp"

namespace dlrmopt::core
{

/**
 * A feed-forward MLP. Hidden layers use ReLU; the final layer is
 * linear (a sigmoid is applied separately for CTR outputs).
 */
class Mlp
{
  public:
    /** Creates an empty MLP (no layers). */
    Mlp() = default;

    /**
     * Builds an MLP from a size list.
     *
     * @param dims Layer sizes including the input dimension, e.g.
     *             {256, 128, 128} is a 256-input MLP with two layers.
     * @param seed Seed for deterministic weight initialization.
     */
    Mlp(const std::vector<std::size_t>& dims, std::uint64_t seed);

    /**
     * Rebuilds an MLP from explicit layer parameters (a snapshot's
     * MLP section): weights[l] is [dims[l+1] x dims[l]], biases[l]
     * has dims[l+1] entries. Both packed-weight engines are rebuilt
     * from the adopted fp32 weights, so forwards through a loaded MLP
     * are bitwise-identical to the saved one's.
     *
     * @throws std::invalid_argument on a size list shorter than 2 or
     *         any layer whose weight/bias shape mismatches @p dims.
     */
    Mlp(const std::vector<std::size_t>& dims, std::vector<Tensor> weights,
        std::vector<std::vector<float>> biases);

    /** Input feature dimension. */
    std::size_t inputDim() const { return _dims.empty() ? 0 : _dims.front(); }

    /** Output feature dimension. */
    std::size_t outputDim() const { return _dims.empty() ? 0 : _dims.back(); }

    /** Number of dense layers. */
    std::size_t numLayers() const { return _weights.size(); }

    /** Layer size list including the input dimension. */
    const std::vector<std::size_t>& dims() const { return _dims; }

    /**
     * Multiply-accumulate count for one sample (2 * sum of products of
     * consecutive dims). Used by the analytic timing model.
     */
    double flopsPerSample() const;

    /**
     * Runs the MLP on a batch.
     *
     * @param in Input activations [batch x inputDim()].
     * @param out Output activations; reshaped to [batch x outputDim()].
     */
    void forward(const Tensor& in, Tensor& out) const;

    /**
     * forward() with caller-owned ping-pong scratch: bitwise-identical
     * outputs, but heap-allocation-free once the scratch tensors'
     * capacities cover [batch x widest hidden layer] — the first layer
     * reads @p in directly instead of copying it. @p in must not alias
     * @p out or either scratch tensor.
     */
    void forward(const Tensor& in, Tensor& out, Tensor& scratch_a,
                 Tensor& scratch_b) const;

    /**
     * forward() from a feature-major (transposed) input: @p in_t is
     * [inputDim() x batch] with sample m's feature k at
     * in_t[k*batch + m]. The first layer runs through the n-major
     * packed engine (no repack pass); later layers and the output are
     * row-major as usual. Bitwise-identical to forward() on the
     * untransposed activations — the n-major microkernels run the
     * same per-element fmaf chain, only the load addresses differ.
     */
    void forwardFromTransposed(const Tensor& in_t, Tensor& out,
                               Tensor& scratch_a,
                               Tensor& scratch_b) const;

    /**
     * forward() through the u8·s8 packed engine: each layer quantizes
     * its input activations to uint8 (per-tensor, qmax 127) and runs
     * the int8 microkernels against the layer's s8-quantized weights
     * with the fused dequant+bias+ReLU epilogue. An approximation of
     * the fp32 forward (weights carry ~7 bits, activations re-quantize
     * per layer) — accuracy-budget-tested, not bitwise-comparable to
     * fp32; but bitwise deterministic and SimdLevel/tile/batch-position
     * invariant in its own right.
     */
    void forwardInt8(const Tensor& in, Tensor& out) const;

    /**
     * forwardInt8() with caller-owned scratch: @p qscratch stages each
     * layer's quantized activation codes. Heap-allocation-free once
     * the scratch capacities have warmed up.
     */
    void forwardInt8(const Tensor& in, Tensor& out, Tensor& scratch_a,
                     Tensor& scratch_b,
                     std::vector<std::uint8_t>& qscratch) const;

    /**
     * Panel-packed weights of layer @p l, built once at construction
     * and shared read-only by every forward (both overloads run
     * through the packed microkernel engine).
     */
    const PackedWeights& packedLayer(std::size_t l) const
    {
        return _packed[l];
    }

    /** Int8-quantized panel pack of layer @p l (the forwardInt8 path),
     *  also built once at construction. */
    const PackedWeightsInt8& packedInt8Layer(std::size_t l) const
    {
        return _packedInt8[l];
    }

    /** fp32 weight matrix of layer @p l ([dims[l+1] x dims[l]]) — the
     *  serialization source for snapshots. */
    const Tensor& layerWeights(std::size_t l) const
    {
        return _weights[l];
    }

    /** Bias vector of layer @p l (dims[l+1] entries). */
    const std::vector<float>& layerBias(std::size_t l) const
    {
        return _biases[l];
    }

    /** Bytes of packed-weight storage across all layers (the one-time
     *  prepack overhead on top of the nn.Linear weights). */
    std::size_t packedBytes() const;

    /** Largest paddedK across layers (sizing for int8 activation
     *  staging buffers: batch * maxPaddedK bytes cover every layer). */
    std::size_t maxPaddedK() const;

  private:
    std::vector<std::size_t> _dims;
    std::vector<Tensor> _weights;          //!< per layer [out x in]
    std::vector<std::vector<float>> _biases;
    std::vector<PackedWeights> _packed;    //!< per layer panel pack
    std::vector<PackedWeightsInt8> _packedInt8; //!< u8·s8 path pack
};

} // namespace dlrmopt::core

#endif // DLRMOPT_CORE_MLP_HPP
