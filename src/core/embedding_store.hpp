/**
 * @file
 * Shared embedding-table storage with block-level integrity checksums.
 *
 * Embedding tables dominate DLRM capacity (Table 2: up to ~100 GB),
 * so multi-instance serving cannot afford one private copy per
 * instance. An EmbeddingStore owns the full table set once; any
 * number of DlrmModel views — full replicas or table-subset shards —
 * reference it through a shared_ptr without copying a byte. The store
 * is immutable on the serving read path, which is what makes
 * concurrent lock-free reads from every serving instance safe; the
 * only mutations are the integrity operations (flipBit to model a
 * silent bit upset, repairBlock to restore as-built bytes), which the
 * resilience layer performs on the single virtual-clock thread,
 * never concurrently with kernel execution.
 *
 * At that capacity a handful of flipped DRAM bits per day is the
 * expected case, not a tail event, so each table is checksummed in
 * blocks of blockRows() rows at build time. A block can be verified
 * on demand and — because table contents are a pure counter hash of
 * (table seed, row) — repaired in O(block) by regenerating exactly
 * the as-built bytes.
 */

#ifndef DLRMOPT_CORE_EMBEDDING_STORE_HPP
#define DLRMOPT_CORE_EMBEDDING_STORE_HPP

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/embedding.hpp"
#include "core/model_config.hpp"

namespace dlrmopt::core
{

/** Identifies one checksummed block: rows [block * blockRows, ...) of
 *  table @c table. */
struct BlockRef
{
    std::size_t table = 0;
    std::size_t block = 0;

    friend bool
    operator==(const BlockRef& a, const BlockRef& b)
    {
        return a.table == b.table && a.block == b.block;
    }
};

/**
 * The single owned copy of a model's embedding tables.
 *
 * Construction allocates rows * dim * 4 bytes per table; everything
 * downstream (DlrmModel replicas/shards, Server instances, the
 * Router) only holds references.
 */
class EmbeddingStore
{
  public:
    /**
     * Builds all cfg.tables tables with deterministic pseudo-random
     * contents. Table t is seeded with mix64(seed + 100 + t) — the
     * exact derivation DlrmModel used when it owned its tables, so
     * store-backed models are bitwise-identical to the old layout.
     * Per-block checksums are computed over the freshly built bytes.
     *
     * @param cfg Architecture description (rows/dim/tables).
     * @param seed Seed for reproducible table contents.
     * @param blockRows Rows per checksum block (clamped to cfg.rows).
     * @param dtype Storage precision of every table in this store.
     *
     * @throws std::invalid_argument when cfg.tables or blockRows is 0.
     */
    explicit EmbeddingStore(const ModelConfig& cfg,
                            std::uint64_t seed = 42,
                            std::size_t blockRows = 256,
                            EmbDtype dtype = EmbDtype::Fp32);

    /**
     * Adopts snapshot-loaded tables instead of generating contents.
     * Every per-block checksum is rebuilt from the adopted bytes (a
     * snapshot loader cross-checks them against the file's recorded
     * checksums separately). @p tableSeeds must carry each table's
     * original build seed so repairBlock() can still regenerate
     * as-built bytes after corruption.
     *
     * @throws std::invalid_argument on an empty table set, a seed
     *         count mismatching the table count, a zero blockRows, or
     *         a table whose geometry/dtype differs from cfg/@p dtype.
     */
    EmbeddingStore(const ModelConfig& cfg, EmbDtype dtype,
                   std::size_t blockRows,
                   std::vector<std::unique_ptr<EmbeddingTable>> tables,
                   std::vector<std::uint64_t> tableSeeds);

    /** Convenience: heap-allocates a store ready for sharing. */
    static std::shared_ptr<const EmbeddingStore>
    create(const ModelConfig& cfg, std::uint64_t seed = 42,
           std::size_t blockRows = 256, EmbDtype dtype = EmbDtype::Fp32)
    {
        return std::make_shared<const EmbeddingStore>(cfg, seed, blockRows,
                                                      dtype);
    }

    /**
     * Heap-allocates a store the caller may also mutate through the
     * integrity API (flipBit / repairBlock). The chaos harness holds
     * this handle; serving components still see it as const.
     */
    static std::shared_ptr<EmbeddingStore>
    createMutable(const ModelConfig& cfg, std::uint64_t seed = 42,
                  std::size_t blockRows = 256,
                  EmbDtype dtype = EmbDtype::Fp32)
    {
        return std::make_shared<EmbeddingStore>(cfg, seed, blockRows,
                                                dtype);
    }

    std::size_t numTables() const { return _tables.size(); }
    std::size_t rows() const { return _rows; }
    std::size_t dim() const { return _dim; }
    EmbDtype dtype() const { return _dtype; }

    const EmbeddingTable& table(std::size_t t) const
    {
        return *_tables[t];
    }

    /** Build seed of table @p t (what repairBlock regenerates from;
     *  recorded in snapshots so loaded stores stay repairable). */
    std::uint64_t tableSeed(std::size_t t) const
    {
        return _tableSeeds[t];
    }

    /** Total bytes held across all tables (the one real copy). */
    std::size_t
    bytes() const
    {
        std::size_t n = 0;
        for (const auto& t : _tables)
            n += t->bytes();
        return n;
    }

    /// @name Block-level integrity
    /// @{

    /** Rows per checksum block (last block of a table may be short). */
    std::size_t blockRows() const { return _blockRows; }

    /** Number of checksum blocks per table. */
    std::size_t
    numBlocks() const
    {
        return (_rows + _blockRows - 1) / _blockRows;
    }

    /** Block index covering row @p row. */
    std::size_t blockOfRow(std::size_t row) const
    {
        return row / _blockRows;
    }

    /** The checksum recorded at build time for (table, block). */
    std::uint64_t
    storedChecksum(std::size_t t, std::size_t b) const
    {
        return _checksums[t * numBlocks() + b];
    }

    /** Recomputes the checksum of (table, block) from current bytes. */
    std::uint64_t computeChecksum(std::size_t t, std::size_t b) const;

    /**
     * The FNV-1a fold computeChecksum() runs, exposed over a raw
     * stored-payload span so snapshot verification can checksum file
     * bytes without materializing tables. @p count is the element
     * count at @p dtype: floats for fp32, 16-bit patterns for bf16,
     * stored bytes (codes + fused scale/bias) for int8.
     */
    static std::uint64_t payloadChecksum(EmbDtype dtype,
                                         const void *data,
                                         std::size_t count);

    /** True when the current bytes of (table, block) still match the
     *  build-time checksum. */
    bool
    verifyBlock(std::size_t t, std::size_t b) const
    {
        return computeChecksum(t, b) == storedChecksum(t, b);
    }

    /** Full sweep: every block whose bytes no longer checksum. */
    std::vector<BlockRef> findCorruptBlocks() const;

    /**
     * Silently flips one payload bit of (table t, row, bit) — the
     * store-level corruption a FaultInjector bit-flip fault performs.
     * Deliberately does NOT touch the stored checksum: detection is
     * the serving layer's job.
     *
     * @throws std::invalid_argument on out-of-range table/row/bit.
     */
    void flipBit(std::size_t t, std::size_t row, std::size_t bit);

    /**
     * Regenerates every row of (table, block) from the table's build
     * seed, restoring the exact as-built bytes (the stored checksum
     * verifies again afterwards). O(blockRows * dim).
     *
     * @throws std::invalid_argument on out-of-range table/block.
     */
    void repairBlock(std::size_t t, std::size_t b);

    /// @}

  private:
    /** Recomputes every stored per-block checksum from current bytes
     *  (construction, and adoption of snapshot-loaded tables). */
    void rebuildChecksums();

    std::size_t _rows;
    std::size_t _dim;
    EmbDtype _dtype;
    std::size_t _blockRows;
    std::vector<std::unique_ptr<EmbeddingTable>> _tables;
    std::vector<std::uint64_t> _tableSeeds;
    std::vector<std::uint64_t> _checksums; ///< [table][block], row-major.
};

} // namespace dlrmopt::core

#endif // DLRMOPT_CORE_EMBEDDING_STORE_HPP
