/**
 * @file
 * Shared, immutable embedding-table storage.
 *
 * Embedding tables dominate DLRM capacity (Table 2: up to ~100 GB),
 * so multi-instance serving cannot afford one private copy per
 * instance. An EmbeddingStore owns the full table set once; any
 * number of DlrmModel views — full replicas or table-subset shards —
 * reference it through a shared_ptr without copying a byte. The store
 * is immutable after construction, which is what makes concurrent
 * lock-free reads from every serving instance safe.
 */

#ifndef DLRMOPT_CORE_EMBEDDING_STORE_HPP
#define DLRMOPT_CORE_EMBEDDING_STORE_HPP

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/embedding.hpp"
#include "core/model_config.hpp"

namespace dlrmopt::core
{

/**
 * The single owned copy of a model's embedding tables.
 *
 * Construction allocates rows * dim * 4 bytes per table; everything
 * downstream (DlrmModel replicas/shards, Server instances, the
 * Router) only holds references.
 */
class EmbeddingStore
{
  public:
    /**
     * Builds all cfg.tables tables with deterministic pseudo-random
     * contents. Table t is seeded with mix64(seed + 100 + t) — the
     * exact derivation DlrmModel used when it owned its tables, so
     * store-backed models are bitwise-identical to the old layout.
     *
     * @param cfg Architecture description (rows/dim/tables).
     * @param seed Seed for reproducible table contents.
     */
    explicit EmbeddingStore(const ModelConfig& cfg,
                            std::uint64_t seed = 42);

    /** Convenience: heap-allocates a store ready for sharing. */
    static std::shared_ptr<const EmbeddingStore>
    create(const ModelConfig& cfg, std::uint64_t seed = 42)
    {
        return std::make_shared<const EmbeddingStore>(cfg, seed);
    }

    std::size_t numTables() const { return _tables.size(); }
    std::size_t rows() const { return _rows; }
    std::size_t dim() const { return _dim; }

    const EmbeddingTable& table(std::size_t t) const
    {
        return *_tables[t];
    }

    /** Total bytes held across all tables (the one real copy). */
    std::size_t
    bytes() const
    {
        std::size_t n = 0;
        for (const auto& t : _tables)
            n += t->bytes();
        return n;
    }

  private:
    std::size_t _rows;
    std::size_t _dim;
    std::vector<std::unique_ptr<EmbeddingTable>> _tables;
};

} // namespace dlrmopt::core

#endif // DLRMOPT_CORE_EMBEDDING_STORE_HPP
