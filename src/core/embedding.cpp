#include "core/embedding.hpp"

#include "core/errors.hpp"
#include "core/simd.hpp"

#include <algorithm>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <string>

namespace dlrmopt::core
{

namespace
{

/**
 * Validates the table geometry before any allocation happens and
 * returns the element count. Kept as a helper so the constructor can
 * run it inside the member-initializer list, ahead of the _data
 * allocation.
 */
std::size_t
checkedTableSize(std::size_t rows, std::size_t dim)
{
    if (rows == 0 || dim == 0) {
        throw std::invalid_argument(
            "EmbeddingTable: rows and dim must be positive, got " +
            std::to_string(rows) + " x " + std::to_string(dim));
    }
    const std::size_t max_elems =
        std::numeric_limits<std::size_t>::max() / sizeof(float);
    if (rows > max_elems / dim) {
        throw std::invalid_argument(
            "EmbeddingTable: " + std::to_string(rows) + " x " +
            std::to_string(dim) + " overflows the byte-size computation");
    }
    return rows * dim;
}

/**
 * Issues __builtin_prefetch for the first @p lines cache lines of the
 * embedding row at @p row_ptr. GCC requires the locality argument to
 * be a compile-time constant, hence the switch.
 */
inline void
prefetchRow(const float *row_ptr, int lines, std::size_t dim, int locality)
{
    const std::size_t max_lines = (dim + floatsPerLine - 1) / floatsPerLine;
    const std::size_t n =
        std::min<std::size_t>(static_cast<std::size_t>(lines), max_lines);
    switch (locality) {
      case 3:
        for (std::size_t cb = 0; cb < n; ++cb)
            __builtin_prefetch(row_ptr + cb * floatsPerLine, 0, 3);
        break;
      case 2:
        for (std::size_t cb = 0; cb < n; ++cb)
            __builtin_prefetch(row_ptr + cb * floatsPerLine, 0, 2);
        break;
      case 1:
        for (std::size_t cb = 0; cb < n; ++cb)
            __builtin_prefetch(row_ptr + cb * floatsPerLine, 0, 1);
        break;
      default:
        for (std::size_t cb = 0; cb < n; ++cb)
            __builtin_prefetch(row_ptr + cb * floatsPerLine, 0, 0);
        break;
    }
}

} // namespace

void
PrefetchSpec::validate() const
{
    if (distance < 0) {
        throw std::invalid_argument(
            "PrefetchSpec: distance must be >= 0, got " +
            std::to_string(distance));
    }
    if (lines < 0) {
        throw std::invalid_argument(
            "PrefetchSpec: lines must be >= 0, got " +
            std::to_string(lines));
    }
    if (locality < 0 || locality > 3) {
        throw std::invalid_argument(
            "PrefetchSpec: locality must be in [0, 3] (NTA..T0), got " +
            std::to_string(locality));
    }
}

EmbeddingTable::EmbeddingTable(std::size_t rows, std::size_t dim,
                               std::uint64_t seed)
    : _rows(rows), _dim(dim), _data(checkedTableSize(rows, dim))
{
    regenerateRows(0, rows, seed);
}

void
EmbeddingTable::regenerateRows(std::size_t first, std::size_t count,
                               std::uint64_t seed)
{
    if (first > _rows || count > _rows - first) {
        throw std::invalid_argument(
            "EmbeddingTable::regenerateRows: range [" +
            std::to_string(first) + ", " + std::to_string(first + count) +
            ") exceeds " + std::to_string(_rows) + " rows");
    }
    // Row contents only need to be deterministic and nonuniform enough
    // for checksum-style validation; a cheap counter hash suffices and
    // keeps multi-GB table construction fast. Each row is a pure
    // function of (seed, r), so any subrange can be restored from the
    // original seed without touching its neighbours.
    for (std::size_t r = first; r < first + count; ++r) {
        const float base =
            static_cast<float>(toUnitInterval(mix64(seed ^ r)) - 0.5);
        float *p = _data.data() + r * _dim;
        for (std::size_t d = 0; d < _dim; ++d)
            p[d] = base + 0.001f * static_cast<float>(d % 16);
    }
}

void
EmbeddingTable::flipBit(std::size_t row, std::size_t bit)
{
    if (row >= _rows) {
        throw std::invalid_argument(
            "EmbeddingTable::flipBit: row " + std::to_string(row) +
            " out of range [0, " + std::to_string(_rows) + ")");
    }
    if (bit >= _dim * 32) {
        throw std::invalid_argument(
            "EmbeddingTable::flipBit: bit " + std::to_string(bit) +
            " out of range [0, " + std::to_string(_dim * 32) + ")");
    }
    float *p = _data.data() + row * _dim + bit / 32;
    std::uint32_t u;
    std::memcpy(&u, p, sizeof(u));
    u ^= std::uint32_t{1} << (bit % 32);
    std::memcpy(p, &u, sizeof(u));
}

void
EmbeddingTable::bag(const RowIndex *indices, const RowIndex *offsets,
                    std::size_t samples, float *out,
                    const PrefetchSpec& pf) const
{
    const std::size_t total =
        static_cast<std::size_t>(offsets[samples]);
    const bool do_pf = pf.enabled();
    const std::size_t pf_dist = do_pf
        ? static_cast<std::size_t>(pf.distance) : 0;

    for (std::size_t i = 0; i < samples; ++i) {
        float *out_ptr = out + i * _dim;
        std::memset(out_ptr, 0, _dim * sizeof(float));
        const std::size_t begin = static_cast<std::size_t>(offsets[i]);
        const std::size_t end = static_cast<std::size_t>(offsets[i + 1]);
        for (std::size_t s = begin; s < end; ++s) {
            // One unsigned compare per lookup: a negative index wraps
            // to a huge value, so this also rejects idx < 0. The
            // branch is perfectly predicted on valid streams.
            if (static_cast<std::uint64_t>(indices[s]) >=
                static_cast<std::uint64_t>(_rows)) {
                throw IndexError(
                    "embedding_bag: index " +
                    std::to_string(indices[s]) + " out of range [0, " +
                    std::to_string(_rows) + ") at lookup " +
                    std::to_string(s));
            }
            const float *row_ptr = rowPtr(indices[s]);
            if (do_pf && s + pf_dist < total) {
                // Look ahead in the indices array (the "what to
                // prefetch" insight of Sec. 4.2) and pull the future
                // row's lines toward the core before the demand load.
                prefetchRow(rowPtr(indices[s + pf_dist]), pf.lines, _dim,
                            pf.locality);
            }
            accumulateRow(out_ptr, row_ptr, _dim);
        }
    }
}

void
embeddingBagRef(const float *table, std::size_t dim,
                const RowIndex *indices, const RowIndex *offsets,
                std::size_t samples, float *out)
{
    for (std::size_t i = 0; i < samples; ++i) {
        for (std::size_t d = 0; d < dim; ++d)
            out[i * dim + d] = 0.0f;
        for (RowIndex s = offsets[i]; s < offsets[i + 1]; ++s) {
            const float *row =
                table + static_cast<std::size_t>(indices[s]) * dim;
            for (std::size_t d = 0; d < dim; ++d)
                out[i * dim + d] += row[d];
        }
    }
}

} // namespace dlrmopt::core
