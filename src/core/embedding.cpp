#include "core/embedding.hpp"

#include "core/errors.hpp"
#include "core/simd.hpp"

#include <algorithm>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <string>

namespace dlrmopt::core
{

namespace
{

/**
 * Validates the table geometry before any allocation happens and
 * returns the element count. Kept as a helper so the constructor can
 * run it inside the member-initializer list, ahead of the _data
 * allocation.
 */
std::size_t
checkedTableSize(std::size_t rows, std::size_t dim)
{
    if (rows == 0 || dim == 0) {
        throw std::invalid_argument(
            "EmbeddingTable: rows and dim must be positive, got " +
            std::to_string(rows) + " x " + std::to_string(dim));
    }
    const std::size_t max_elems =
        std::numeric_limits<std::size_t>::max() / sizeof(float);
    if (rows > max_elems / dim) {
        throw std::invalid_argument(
            "EmbeddingTable: " + std::to_string(rows) + " x " +
            std::to_string(dim) + " overflows the byte-size computation");
    }
    return rows * dim;
}

} // namespace

/**
 * Quantized rows span fewer lines than fp32 ones, so the same
 * PrefetchSpec naturally pulls less data — that shrinkage is the
 * bandwidth win. GCC requires the locality argument to be a
 * compile-time constant, hence the switch.
 */
void
prefetchRowBytes(const void *row_ptr, int lines, std::size_t row_bytes,
                 int locality)
{
    const std::size_t max_lines =
        (row_bytes + cachelineBytes - 1) / cachelineBytes;
    const std::size_t n =
        std::min<std::size_t>(static_cast<std::size_t>(lines), max_lines);
    const char *p = static_cast<const char *>(row_ptr);
    switch (locality) {
      case 3:
        for (std::size_t cb = 0; cb < n; ++cb)
            __builtin_prefetch(p + cb * cachelineBytes, 0, 3);
        break;
      case 2:
        for (std::size_t cb = 0; cb < n; ++cb)
            __builtin_prefetch(p + cb * cachelineBytes, 0, 2);
        break;
      case 1:
        for (std::size_t cb = 0; cb < n; ++cb)
            __builtin_prefetch(p + cb * cachelineBytes, 0, 1);
        break;
      default:
        for (std::size_t cb = 0; cb < n; ++cb)
            __builtin_prefetch(p + cb * cachelineBytes, 0, 0);
        break;
    }
}

void
PrefetchSpec::validate() const
{
    if (distance < 0) {
        throw std::invalid_argument(
            "PrefetchSpec: distance must be >= 0, got " +
            std::to_string(distance));
    }
    if (lines < 0) {
        throw std::invalid_argument(
            "PrefetchSpec: lines must be >= 0, got " +
            std::to_string(lines));
    }
    if (locality < 0 || locality > 3) {
        throw std::invalid_argument(
            "PrefetchSpec: locality must be in [0, 3] (NTA..T0), got " +
            std::to_string(locality));
    }
}

EmbeddingTable::EmbeddingTable(std::size_t rows, std::size_t dim,
                               std::uint64_t seed, EmbDtype dtype)
    : _rows(rows), _dim(dim), _dtype(dtype)
{
    const std::size_t elems = checkedTableSize(rows, dim);
    switch (_dtype) {
      case EmbDtype::Bf16:
        _bf16.resize(elems);
        break;
      case EmbDtype::Int8:
        // Fused rows: dim codes + fp32 scale + fp32 bias, contiguous.
        _q8.resize(rows * int8Stride());
        break;
      default:
        _data.resize(elems);
        break;
    }
    regenerateRows(0, rows, seed);
}

EmbeddingTable::EmbeddingTable(std::size_t rows, std::size_t dim,
                               EmbDtype dtype, const void *bytes,
                               std::size_t nbytes)
    : _rows(rows), _dim(dim), _dtype(dtype)
{
    const std::size_t elems = checkedTableSize(rows, dim);
    if (bytes == nullptr) {
        throw std::invalid_argument(
            "EmbeddingTable: null payload for a loading construction");
    }
    switch (_dtype) {
      case EmbDtype::Bf16:
        _bf16.resize(elems);
        break;
      case EmbDtype::Int8:
        _q8.resize(rows * int8Stride());
        break;
      default:
        _data.resize(elems);
        break;
    }
    if (nbytes != this->bytes()) {
        throw std::invalid_argument(
            "EmbeddingTable: payload is " + std::to_string(nbytes) +
            " bytes but a " + std::to_string(rows) + " x " +
            std::to_string(dim) + " " + embDtypeName(dtype) +
            " table stores " + std::to_string(this->bytes()));
    }
    switch (_dtype) {
      case EmbDtype::Bf16:
        std::memcpy(_bf16.data(), bytes, nbytes);
        break;
      case EmbDtype::Int8:
        std::memcpy(_q8.data(), bytes, nbytes);
        break;
      default:
        std::memcpy(_data.data(), bytes, nbytes);
        break;
    }
}

void
EmbeddingTable::regenerateRows(std::size_t first, std::size_t count,
                               std::uint64_t seed)
{
    if (first > _rows || count > _rows - first) {
        throw std::invalid_argument(
            "EmbeddingTable::regenerateRows: range [" +
            std::to_string(first) + ", " + std::to_string(first + count) +
            ") exceeds " + std::to_string(_rows) + " rows");
    }
    // Row contents only need to be deterministic and nonuniform enough
    // for checksum-style validation; a cheap counter hash suffices and
    // keeps multi-GB table construction fast. Each row is a pure
    // function of (seed, r) — the fp32 pattern is generated and then
    // quantized to the storage dtype — so any subrange can be restored
    // from the original seed without touching its neighbours, at every
    // precision.
    std::vector<float> tmp;
    if (_dtype != EmbDtype::Fp32)
        tmp.resize(_dim);
    for (std::size_t r = first; r < first + count; ++r) {
        const float base =
            static_cast<float>(toUnitInterval(mix64(seed ^ r)) - 0.5);
        float *p = _dtype == EmbDtype::Fp32 ? _data.data() + r * _dim
                                            : tmp.data();
        for (std::size_t d = 0; d < _dim; ++d)
            p[d] = base + 0.001f * static_cast<float>(d % 16);
        if (_dtype == EmbDtype::Bf16) {
            std::uint16_t *q = _bf16.data() + r * _dim;
            for (std::size_t d = 0; d < _dim; ++d)
                q[d] = fp32ToBf16(p[d]);
        } else if (_dtype == EmbDtype::Int8) {
            std::uint8_t *row = _q8.data() + r * int8Stride();
            const QuantParams qp = quantizeBlockInt8(p, _dim, row);
            std::memcpy(row + _dim, &qp.scale, sizeof(float));
            std::memcpy(row + _dim + sizeof(float), &qp.bias,
                        sizeof(float));
        }
    }
}

void
EmbeddingTable::flipBit(std::size_t row, std::size_t bit)
{
    if (row >= _rows) {
        throw std::invalid_argument(
            "EmbeddingTable::flipBit: row " + std::to_string(row) +
            " out of range [0, " + std::to_string(_rows) + ")");
    }
    if (bit >= payloadBits()) {
        throw std::invalid_argument(
            "EmbeddingTable::flipBit: bit " + std::to_string(bit) +
            " out of range [0, " + std::to_string(payloadBits()) + ")");
    }
    switch (_dtype) {
      case EmbDtype::Bf16:
        _bf16[row * _dim + bit / 16] ^=
            static_cast<std::uint16_t>(1u << (bit % 16));
        return;
      case EmbDtype::Int8:
        // The fused row is little-endian flat bytes: dim codes, then
        // the scale word, then the bias word — bit / 8 indexes
        // straight into it for payload and metadata alike.
        _q8[row * int8Stride() + bit / 8] ^=
            static_cast<std::uint8_t>(1u << (bit % 8));
        return;
      default: {
        float *p = _data.data() + row * _dim + bit / 32;
        std::uint32_t u;
        std::memcpy(&u, p, sizeof(u));
        u ^= std::uint32_t{1} << (bit % 32);
        std::memcpy(p, &u, sizeof(u));
        return;
      }
    }
}

const void *
EmbeddingTable::rowBytesPtr(std::size_t idx) const
{
    switch (_dtype) {
      case EmbDtype::Bf16:
        return _bf16.data() + idx * _dim;
      case EmbDtype::Int8:
        return _q8.data() + idx * int8Stride();
      default:
        return _data.data() + idx * _dim;
    }
}

void
EmbeddingTable::dequantRow(std::size_t row, float *dst) const
{
    if (row >= _rows) {
        throw std::invalid_argument(
            "EmbeddingTable::dequantRow: row " + std::to_string(row) +
            " out of range [0, " + std::to_string(_rows) + ")");
    }
    switch (_dtype) {
      case EmbDtype::Bf16: {
        const std::uint16_t *q = _bf16.data() + row * _dim;
        for (std::size_t d = 0; d < _dim; ++d)
            dst[d] = bf16ToFp32(q[d]);
        return;
      }
      case EmbDtype::Int8: {
        const std::uint8_t *q = int8Row(static_cast<RowIndex>(row));
        const QuantParams qp = int8Params(row);
        for (std::size_t d = 0; d < _dim; ++d)
            dst[d] = static_cast<float>(q[d]) * qp.scale + qp.bias;
        return;
      }
      default:
        std::memcpy(dst, _data.data() + row * _dim,
                    _dim * sizeof(float));
        return;
    }
}

void
EmbeddingTable::bag(const RowIndex *indices, const RowIndex *offsets,
                    std::size_t samples, float *out,
                    const PrefetchSpec& pf) const
{
    const std::size_t total =
        static_cast<std::size_t>(offsets[samples]);
    const bool do_pf = pf.enabled();
    // The look-ahead distance is tuned in fp32-row units (Fig. 10b).
    // Quantized rows are 2-4x shorter, so each one occupies the
    // memory system for a fraction of the time; keeping the same
    // *byte* look-ahead (scaling the distance by the storage ratio)
    // keeps the prefetch far enough ahead of the demand stream to
    // cover DRAM latency. fp32 is unchanged (ratio 1).
    const std::size_t pf_dist = do_pf
        ? static_cast<std::size_t>(pf.distance) *
              (32 / embDtypeBits(_dtype))
        : 0;
    // The whole-sample register-blocked kernels only issue T0
    // prefetches (the paper's choice and the default); other
    // localities fall back to the per-row path, which supports all
    // four hints.
    const bool sample_kernel_ok =
        _dtype != EmbDtype::Fp32 && (!do_pf || pf.locality == 3);
    const std::size_t max_pf_lines =
        (storedRowBytes() + cachelineBytes - 1) / cachelineBytes;
    const int pf_lines = do_pf
        ? static_cast<int>(std::min<std::size_t>(
              static_cast<std::size_t>(pf.lines), max_pf_lines))
        : 0;

    for (std::size_t i = 0; i < samples; ++i) {
        float *out_ptr = out + i * _dim;
        const std::size_t begin = static_cast<std::size_t>(offsets[i]);
        const std::size_t end = static_cast<std::size_t>(offsets[i + 1]);
        if (sample_kernel_ok) {
            // The fused kernels need pre-validated indices (they have
            // no per-lookup bounds branch); the validation pass is
            // cheap — the indices span is about to be re-read anyway.
            for (std::size_t s = begin; s < end; ++s) {
                if (static_cast<std::uint64_t>(indices[s]) >=
                    static_cast<std::uint64_t>(_rows)) {
                    throw IndexError(
                        "embedding_bag: index " +
                        std::to_string(indices[s]) +
                        " out of range [0, " + std::to_string(_rows) +
                        ") at lookup " + std::to_string(s));
                }
            }
            const bool done =
                _dtype == EmbDtype::Bf16
                    ? bagSampleBf16(out_ptr, _bf16.data(), _dim,
                                    indices, begin, end, total, pf_dist,
                                    pf_lines)
                    : bagSampleInt8(out_ptr, _q8.data(), int8Stride(),
                                    _dim, indices, begin, end, total,
                                    pf_dist, pf_lines);
            if (done)
                continue;
        }
        std::memset(out_ptr, 0, _dim * sizeof(float));
        for (std::size_t s = begin; s < end; ++s) {
            // One unsigned compare per lookup: a negative index wraps
            // to a huge value, so this also rejects idx < 0. The
            // branch is perfectly predicted on valid streams.
            if (static_cast<std::uint64_t>(indices[s]) >=
                static_cast<std::uint64_t>(_rows)) {
                throw IndexError(
                    "embedding_bag: index " +
                    std::to_string(indices[s]) + " out of range [0, " +
                    std::to_string(_rows) + ") at lookup " +
                    std::to_string(s));
            }
            const std::size_t idx =
                static_cast<std::size_t>(indices[s]);
            if (do_pf && s + pf_dist < total) {
                // Look ahead in the indices array (the "what to
                // prefetch" insight of Sec. 4.2) and pull the future
                // row's lines toward the core before the demand load.
                // Quantized rows are shorter, so the clamp inside
                // prefetchRow issues proportionally fewer prefetches.
                const std::size_t nidx =
                    static_cast<std::size_t>(indices[s + pf_dist]);
                prefetchRowBytes(rowBytesPtr(nidx), pf.lines,
                                 storedRowBytes(), pf.locality);
            }
            // Fused-dequant accumulate: one pass over the stored
            // bytes whatever the precision.
            switch (_dtype) {
              case EmbDtype::Bf16:
                accumulateRowBf16(out_ptr, _bf16.data() + idx * _dim,
                                  _dim);
                break;
              case EmbDtype::Int8: {
                const std::uint8_t *row =
                    _q8.data() + idx * int8Stride();
                float scale, bias;
                std::memcpy(&scale, row + _dim, sizeof(float));
                std::memcpy(&bias, row + _dim + sizeof(float),
                            sizeof(float));
                accumulateRowInt8(out_ptr, row, scale, bias, _dim);
                break;
              }
              default:
                accumulateRow(out_ptr, _data.data() + idx * _dim, _dim);
                break;
            }
        }
    }
}

void
EmbeddingTable::bagRef(const RowIndex *indices, const RowIndex *offsets,
                       std::size_t samples, float *out) const
{
    for (std::size_t i = 0; i < samples; ++i) {
        float *out_ptr = out + i * _dim;
        std::memset(out_ptr, 0, _dim * sizeof(float));
        const std::size_t begin = static_cast<std::size_t>(offsets[i]);
        const std::size_t end = static_cast<std::size_t>(offsets[i + 1]);
        for (std::size_t s = begin; s < end; ++s) {
            const std::size_t idx =
                static_cast<std::size_t>(indices[s]);
            switch (_dtype) {
              case EmbDtype::Bf16:
                accumulateRowBf16Scalar(
                    out_ptr, _bf16.data() + idx * _dim, _dim);
                break;
              case EmbDtype::Int8: {
                const std::uint8_t *row =
                    _q8.data() + idx * int8Stride();
                float scale, bias;
                std::memcpy(&scale, row + _dim, sizeof(float));
                std::memcpy(&bias, row + _dim + sizeof(float),
                            sizeof(float));
                accumulateRowInt8Scalar(out_ptr, row, scale, bias,
                                        _dim);
                break;
              }
              default:
                accumulateRowScalar(
                    out_ptr, _data.data() + idx * _dim, _dim);
                break;
            }
        }
    }
}

void
embeddingBagRef(const float *table, std::size_t dim,
                const RowIndex *indices, const RowIndex *offsets,
                std::size_t samples, float *out)
{
    for (std::size_t i = 0; i < samples; ++i) {
        for (std::size_t d = 0; d < dim; ++d)
            out[i * dim + d] = 0.0f;
        for (RowIndex s = offsets[i]; s < offsets[i + 1]; ++s) {
            const float *row =
                table + static_cast<std::size_t>(indices[s]) * dim;
            for (std::size_t d = 0; d < dim; ++d)
                out[i * dim + d] += row[d];
        }
    }
}

} // namespace dlrmopt::core
