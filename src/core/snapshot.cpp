#include "core/snapshot.hpp"

#include <cerrno>
#include <cstring>
#include <new>
#include <stdexcept>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "core/errors.hpp"
#include "core/types.hpp"

namespace dlrmopt::core
{

namespace
{

// "DLRMSNP1" / "DLRMEND1" as little-endian u64s.
constexpr std::uint64_t kMagic = 0x31504E534D524C44ull;
constexpr std::uint64_t kEndMagic = 0x31444E454D524C44ull;

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

/** Byte-granular FNV-1a for the file-structure checksums (header /
 *  MLP / whole-file). Payload blocks use the store's per-element fold
 *  (EmbeddingStore::payloadChecksum) so the recorded values equal
 *  what a loaded store rebuilds. */
std::uint64_t
fnv1aBytes(const std::uint8_t *data, std::size_t n,
           std::uint64_t h = kFnvOffset)
{
    for (std::size_t i = 0; i < n; ++i)
        h = (h ^ data[i]) * kFnvPrime;
    return h;
}

/** Serialization buffer with POD appends. */
struct Writer
{
    std::vector<std::uint8_t> buf;

    template <typename T>
    void
    pod(T v)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        const std::size_t at = buf.size();
        buf.resize(at + sizeof(T));
        std::memcpy(buf.data() + at, &v, sizeof(T));
    }

    void
    bytes(const void *p, std::size_t n)
    {
        const std::size_t at = buf.size();
        buf.resize(at + n);
        std::memcpy(buf.data() + at, p, n);
    }

    void
    str(const std::string& s)
    {
        pod(static_cast<std::uint32_t>(s.size()));
        bytes(s.data(), s.size());
    }

    void
    dimList(const std::vector<std::size_t>& d)
    {
        pod(static_cast<std::uint32_t>(d.size()));
        for (std::size_t v : d)
            pod(static_cast<std::uint64_t>(v));
    }
};

/** Bounds-checked cursor over the file bytes; every overrun names the
 *  section being parsed. */
struct Reader
{
    const std::uint8_t *p;
    std::size_t size;
    std::size_t off = 0;
    const char *section = "header";

    void
    need(std::size_t n) const
    {
        if (size - off < n) {
            throw IoError("snapshot truncated in " +
                          std::string(section) + " section at byte " +
                          std::to_string(off) + " (need " +
                          std::to_string(n) + " more of " +
                          std::to_string(size) + ")");
        }
    }

    template <typename T>
    T
    pod()
    {
        static_assert(std::is_trivially_copyable_v<T>);
        need(sizeof(T));
        T v;
        std::memcpy(&v, p + off, sizeof(T));
        off += sizeof(T);
        return v;
    }

    const std::uint8_t *
    bytes(std::size_t n)
    {
        need(n);
        const std::uint8_t *at = p + off;
        off += n;
        return at;
    }

    std::string
    str()
    {
        const std::uint32_t n = pod<std::uint32_t>();
        if (n > size) {
            throw IoError("snapshot " + std::string(section) +
                          " section carries an absurd string length");
        }
        const std::uint8_t *at = bytes(n);
        return std::string(reinterpret_cast<const char *>(at), n);
    }

    std::vector<std::size_t>
    dimList()
    {
        const std::uint32_t n = pod<std::uint32_t>();
        if (n > 1024) {
            throw IoError("snapshot " + std::string(section) +
                          " section carries an absurd size-list "
                          "length");
        }
        std::vector<std::size_t> d(n);
        for (std::uint32_t i = 0; i < n; ++i)
            d[i] = static_cast<std::size_t>(pod<std::uint64_t>());
        return d;
    }
};

void
writeConfig(Writer& w, const ModelConfig& cfg)
{
    w.str(cfg.name);
    w.pod(static_cast<std::uint32_t>(cfg.cls));
    w.pod(static_cast<std::uint64_t>(cfg.rows));
    w.pod(static_cast<std::uint64_t>(cfg.dim));
    w.pod(static_cast<std::uint64_t>(cfg.tables));
    w.pod(static_cast<std::uint64_t>(cfg.lookups));
    w.pod(cfg.embTimePercent);
    w.dimList(cfg.bottomMlp);
    w.dimList(cfg.topMlp);
}

ModelConfig
readConfig(Reader& r)
{
    ModelConfig cfg;
    cfg.name = r.str();
    const std::uint32_t cls = r.pod<std::uint32_t>();
    if (cls > static_cast<std::uint32_t>(ModelClass::RMC3))
        throw IoError("snapshot header carries an unknown model class");
    cfg.cls = static_cast<ModelClass>(cls);
    cfg.rows = static_cast<std::size_t>(r.pod<std::uint64_t>());
    cfg.dim = static_cast<std::size_t>(r.pod<std::uint64_t>());
    cfg.tables = static_cast<std::size_t>(r.pod<std::uint64_t>());
    cfg.lookups = static_cast<std::size_t>(r.pod<std::uint64_t>());
    cfg.embTimePercent = r.pod<double>();
    cfg.bottomMlp = r.dimList();
    cfg.topMlp = r.dimList();
    if (cfg.rows == 0 || cfg.dim == 0 || cfg.tables == 0 ||
        cfg.bottomMlp.size() < 2 || cfg.topMlp.empty()) {
        throw IoError(
            "snapshot header describes a degenerate model config");
    }
    return cfg;
}

bool
sameConfig(const ModelConfig& a, const ModelConfig& b)
{
    return a.name == b.name && a.cls == b.cls && a.rows == b.rows &&
           a.dim == b.dim && a.tables == b.tables &&
           a.lookups == b.lookups && a.bottomMlp == b.bottomMlp &&
           a.topMlp == b.topMlp;
}

std::string
errnoText()
{
    return std::string(std::strerror(errno));
}

/**
 * Publishes @p buf at @p path crash-consistently: temp file, fsync,
 * atomic rename, directory fsync. Returns false when a scripted torn
 * write "crashed" before the rename (target untouched, torn temp
 * left behind like a real crash would).
 */
bool
writeAtomic(const std::string& path,
            const std::vector<std::uint8_t>& buf,
            const SnapshotFaults *faults)
{
    const std::string tmp = path + ".tmp";
    const int fd = ::open(tmp.c_str(), O_CREAT | O_TRUNC | O_WRONLY,
                          0644);
    if (fd < 0) {
        throw IoError("snapshot save: cannot create temp file " + tmp +
                      ": " + errnoText());
    }
    const bool torn = faults != nullptr && faults->tornWrite;
    const std::size_t limit =
        torn ? std::min(faults->tornBytes, buf.size()) : buf.size();
    std::size_t done = 0;
    while (done < limit) {
        const ssize_t n = ::write(fd, buf.data() + done, limit - done);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            const std::string what = errnoText();
            ::close(fd);
            throw IoError("snapshot save: write to " + tmp +
                          " failed: " + what);
        }
        done += static_cast<std::size_t>(n);
    }
    if (::fsync(fd) != 0) {
        const std::string what = errnoText();
        ::close(fd);
        throw IoError("snapshot save: fsync of " + tmp +
                      " failed: " + what);
    }
    ::close(fd);
    if (torn)
        return false;
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        throw IoError("snapshot save: rename " + tmp + " -> " + path +
                      " failed: " + errnoText());
    }
    // Make the rename itself durable. Best-effort: some filesystems
    // refuse directory fsync; the rename is still atomic.
    const std::size_t slash = path.find_last_of('/');
    const std::string dir =
        slash == std::string::npos ? "." : path.substr(0, slash + 1);
    const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (dfd >= 0) {
        ::fsync(dfd);
        ::close(dfd);
    }
    if (faults != nullptr && faults->flipBit) {
        // Storage-level corruption of the *published* file.
        const int cfd = ::open(path.c_str(), O_RDWR);
        if (cfd < 0) {
            throw IoError("snapshot fault: cannot reopen " + path +
                          ": " + errnoText());
        }
        const off_t at = static_cast<off_t>(
            faults->flipByteOffset % buf.size());
        std::uint8_t b = 0;
        if (::pread(cfd, &b, 1, at) != 1) {
            ::close(cfd);
            throw IoError("snapshot fault: pread of " + path +
                          " failed");
        }
        b ^= faults->flipMask ? faults->flipMask : std::uint8_t{1};
        if (::pwrite(cfd, &b, 1, at) != 1) {
            ::close(cfd);
            throw IoError("snapshot fault: pwrite of " + path +
                          " failed");
        }
        ::close(cfd);
    }
    return true;
}

std::vector<std::uint8_t>
slurp(const std::string& path)
{
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
        throw IoError("snapshot load: cannot open " + path + ": " +
                      errnoText());
    }
    struct stat st;
    if (::fstat(fd, &st) != 0 || st.st_size < 0) {
        ::close(fd);
        throw IoError("snapshot load: cannot stat " + path);
    }
    std::vector<std::uint8_t> buf(static_cast<std::size_t>(st.st_size));
    std::size_t done = 0;
    while (done < buf.size()) {
        const ssize_t n =
            ::read(fd, buf.data() + done, buf.size() - done);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            const std::string what = errnoText();
            ::close(fd);
            throw IoError("snapshot load: read of " + path +
                          " failed: " + what);
        }
        if (n == 0)
            break;
        done += static_cast<std::size_t>(n);
    }
    ::close(fd);
    if (done != buf.size())
        throw IoError("snapshot load: short read of " + path);
    return buf;
}

std::size_t
blocksPerTableOf(std::size_t rows, std::size_t blockRows)
{
    return (rows + blockRows - 1) / blockRows;
}

/** Everything the section parse yields besides the raw payloads. */
struct ParsedFile
{
    SnapshotInfo info;
    std::vector<std::uint64_t> tableSeeds;
    /** Byte offsets of each table's payload within the file. */
    std::vector<std::size_t> payloadOffsets;
    std::size_t payloadBytesPerTable = 0;
    std::vector<std::size_t> mlpDimsBottom;
    std::vector<std::size_t> mlpDimsTop;
    /** Byte offset of the MLP weight data (layer-major, weights then
     *  bias per layer, bottom then top). */
    std::size_t mlpDataOffset = 0;
    std::vector<float> probe;
};

/**
 * Parses and verifies the whole file: magic, end marker, whole-file
 * checksum, header checksum, section structure, per-block payload
 * checksums (recorded vs recomputed from the stored bytes), MLP
 * section checksum. Throws IoError naming the failing section.
 */
ParsedFile
parseAndVerify(const std::vector<std::uint8_t>& buf,
               const std::string& path)
{
    if (buf.size() < sizeof(std::uint64_t))
        throw IoError("snapshot " + path + " is too small to be one");
    Reader r{buf.data(), buf.size()};
    if (r.pod<std::uint64_t>() != kMagic) {
        throw IoError("snapshot " + path +
                      " does not start with the snapshot magic");
    }

    // Footer first: one whole-file pass catches truncation and bit
    // flips anywhere before section parsing trips over the debris.
    if (buf.size() < 3 * sizeof(std::uint64_t)) {
        throw IoError("snapshot " + path +
                      " is truncated before the footer");
    }
    std::uint64_t endMagic, fileCrc;
    std::memcpy(&endMagic, buf.data() + buf.size() - 8, 8);
    std::memcpy(&fileCrc, buf.data() + buf.size() - 16, 8);
    if (endMagic != kEndMagic) {
        throw IoError("snapshot " + path +
                      " is missing its end marker — torn or truncated "
                      "write");
    }
    if (fnv1aBytes(buf.data(), buf.size() - 16) != fileCrc) {
        throw IoError("snapshot " + path +
                      " fails its whole-file checksum — the stored "
                      "bytes were corrupted after the write");
    }

    ParsedFile f;
    f.info.fileBytes = buf.size();

    // ---- Header -------------------------------------------------
    f.info.formatVersion = r.pod<std::uint32_t>();
    if (f.info.formatVersion != ModelSnapshot::kFormatVersion) {
        throw IoError("snapshot " + path + " has format version " +
                      std::to_string(f.info.formatVersion) +
                      "; this build reads version " +
                      std::to_string(ModelSnapshot::kFormatVersion));
    }
    const std::uint32_t dt = r.pod<std::uint32_t>();
    if (dt > static_cast<std::uint32_t>(EmbDtype::Int8))
        throw IoError("snapshot header carries an unknown dtype");
    f.info.dtype = static_cast<EmbDtype>(dt);
    f.info.modelVersion = r.pod<std::uint64_t>();
    f.info.weightSeed = r.pod<std::uint64_t>();
    f.info.blockRows =
        static_cast<std::size_t>(r.pod<std::uint64_t>());
    f.info.cfg = readConfig(r);
    f.info.probeCount =
        static_cast<std::size_t>(r.pod<std::uint32_t>());
    if (f.info.blockRows == 0 || f.info.blockRows > f.info.cfg.rows)
        throw IoError("snapshot header blockRows is out of range");
    const std::uint64_t headerCrc = r.pod<std::uint64_t>();
    if (fnv1aBytes(buf.data(), r.off - sizeof(std::uint64_t)) !=
        headerCrc) {
        throw IoError("snapshot " + path +
                      " fails its header checksum");
    }

    const ModelConfig& cfg = f.info.cfg;
    f.info.blocksPerTable =
        blocksPerTableOf(cfg.rows, f.info.blockRows);

    // ---- Tables -------------------------------------------------
    r.section = "tables";
    EmbeddingTable probeGeom(1, cfg.dim, 0, f.info.dtype);
    const std::size_t expectBytes = cfg.rows * probeGeom.storedRowBytes();
    f.payloadBytesPerTable = expectBytes;
    f.info.blockChecksums.resize(cfg.tables * f.info.blocksPerTable);
    for (std::size_t t = 0; t < cfg.tables; ++t) {
        f.tableSeeds.push_back(r.pod<std::uint64_t>());
        const std::size_t nbytes =
            static_cast<std::size_t>(r.pod<std::uint64_t>());
        if (nbytes != expectBytes) {
            throw IoError("snapshot table " + std::to_string(t) +
                          " stores " + std::to_string(nbytes) +
                          " bytes; the header geometry requires " +
                          std::to_string(expectBytes));
        }
        f.payloadOffsets.push_back(r.off);
        const std::uint8_t *payload = r.bytes(nbytes);
        const std::size_t rowBytes = probeGeom.storedRowBytes();
        for (std::size_t b = 0; b < f.info.blocksPerTable; ++b) {
            const std::uint64_t recorded = r.pod<std::uint64_t>();
            const std::size_t first = b * f.info.blockRows;
            const std::size_t count =
                first + f.info.blockRows <= cfg.rows
                    ? f.info.blockRows
                    : cfg.rows - first;
            // Element count matches EmbeddingStore::computeChecksum:
            // values for fp32/bf16, stored bytes for fused int8 rows.
            const std::size_t elems =
                f.info.dtype == EmbDtype::Int8 ? count * rowBytes
                                               : count * cfg.dim;
            const std::uint64_t computed =
                EmbeddingStore::payloadChecksum(
                    f.info.dtype, payload + first * rowBytes, elems);
            if (computed != recorded) {
                throw IoError(
                    "snapshot " + path + " table " +
                    std::to_string(t) + " block " + std::to_string(b) +
                    " fails its payload checksum — stored rows were "
                    "corrupted");
            }
            f.info.blockChecksums[t * f.info.blocksPerTable + b] =
                recorded;
        }
    }

    // ---- MLPs ---------------------------------------------------
    r.section = "mlps";
    const std::size_t mlpStart = r.off;
    f.mlpDimsBottom = r.dimList();
    if (f.mlpDimsBottom != cfg.bottomMlp) {
        throw IoError("snapshot bottom-MLP size list mismatches the "
                      "header config");
    }
    std::size_t weightFloats = 0;
    for (std::size_t l = 0; l + 1 < f.mlpDimsBottom.size(); ++l)
        weightFloats += f.mlpDimsBottom[l] * f.mlpDimsBottom[l + 1] +
                        f.mlpDimsBottom[l + 1];
    f.mlpDataOffset = r.off;
    r.bytes(weightFloats * sizeof(float));
    f.mlpDimsTop = r.dimList();
    if (f.mlpDimsTop != cfg.topMlpDims()) {
        throw IoError("snapshot top-MLP size list mismatches the "
                      "header config");
    }
    weightFloats = 0;
    for (std::size_t l = 0; l + 1 < f.mlpDimsTop.size(); ++l)
        weightFloats += f.mlpDimsTop[l] * f.mlpDimsTop[l + 1] +
                        f.mlpDimsTop[l + 1];
    r.bytes(weightFloats * sizeof(float));
    const std::uint64_t mlpCrc = r.pod<std::uint64_t>();
    if (fnv1aBytes(buf.data() + mlpStart,
                   r.off - sizeof(std::uint64_t) - mlpStart) != mlpCrc) {
        throw IoError("snapshot " + path +
                      " fails its MLP section checksum");
    }

    // ---- Probe --------------------------------------------------
    r.section = "probe";
    if (f.info.probeCount > 65536) {
        throw IoError(
            "snapshot header carries an absurd probe count");
    }
    f.probe.resize(f.info.probeCount);
    if (f.info.probeCount > 0) {
        std::memcpy(f.probe.data(),
                    r.bytes(f.info.probeCount * sizeof(float)),
                    f.info.probeCount * sizeof(float));
    }

    // ---- Footer -------------------------------------------------
    r.section = "footer";
    r.pod<std::uint64_t>(); // fileCrc, verified above
    r.pod<std::uint64_t>(); // endMagic, verified above
    if (r.off != buf.size()) {
        throw IoError("snapshot " + path + " carries " +
                      std::to_string(buf.size() - r.off) +
                      " trailing bytes past its footer");
    }
    return f;
}

} // namespace

bool
ModelSnapshot::save(const std::string& path, const DlrmModel& model,
                    std::uint64_t modelVersion,
                    std::uint64_t weightSeed,
                    const SnapshotFaults *faults)
{
    if (!model.isFullView()) {
        throw std::invalid_argument(
            "ModelSnapshot: snapshots hold whole models, not shard "
            "views");
    }
    const EmbeddingStore& store = *model.store();
    const ModelConfig& cfg = model.config();

    Writer w;
    w.pod(kMagic);
    w.pod(kFormatVersion);
    w.pod(static_cast<std::uint32_t>(store.dtype()));
    w.pod(modelVersion);
    w.pod(weightSeed);
    w.pod(static_cast<std::uint64_t>(store.blockRows()));
    writeConfig(w, cfg);
    w.pod(static_cast<std::uint32_t>(kProbeBatch));
    w.pod(fnv1aBytes(w.buf.data(), w.buf.size()));

    for (std::size_t t = 0; t < store.numTables(); ++t) {
        const EmbeddingTable& tab = store.table(t);
        w.pod(store.tableSeed(t));
        w.pod(static_cast<std::uint64_t>(tab.bytes()));
        w.bytes(tab.rawBytes(), tab.bytes());
        // Checksums of the bytes actually being written (not the
        // build-time values: a store corrupted since build snapshots
        // consistently, and verification still passes end to end).
        for (std::size_t b = 0; b < store.numBlocks(); ++b)
            w.pod(store.computeChecksum(t, b));
    }

    const std::size_t mlpStart = w.buf.size();
    const auto writeMlp = [&](const Mlp& mlp) {
        w.dimList(mlp.dims());
        for (std::size_t l = 0; l < mlp.numLayers(); ++l) {
            const Tensor& lw = mlp.layerWeights(l);
            w.bytes(lw.data(), lw.rows() * lw.cols() * sizeof(float));
            const std::vector<float>& lb = mlp.layerBias(l);
            w.bytes(lb.data(), lb.size() * sizeof(float));
        }
    };
    writeMlp(model.bottomMlp());
    writeMlp(model.topMlp());
    w.pod(fnv1aBytes(w.buf.data() + mlpStart, w.buf.size() - mlpStart));

    const std::vector<float> probe = probePredictions(model);
    w.bytes(probe.data(), probe.size() * sizeof(float));

    w.pod(fnv1aBytes(w.buf.data(), w.buf.size()));
    w.pod(kEndMagic);

    return writeAtomic(path, w.buf, faults);
}

SnapshotInfo
ModelSnapshot::verifyFile(const std::string& path)
{
    const std::vector<std::uint8_t> buf = slurp(path);
    return parseAndVerify(buf, path).info;
}

LoadedSnapshot
ModelSnapshot::load(const std::string& path, const ModelConfig *expect,
                    const SnapshotFaults *faults)
{
    const std::vector<std::uint8_t> buf = slurp(path);
    ParsedFile f = parseAndVerify(buf, path);
    const ModelConfig& cfg = f.info.cfg;

    if (expect != nullptr && !sameConfig(*expect, cfg)) {
        throw IoError("snapshot " + path + " describes model '" +
                      cfg.name + "' (" + std::to_string(cfg.tables) +
                      "x" + std::to_string(cfg.rows) + "x" +
                      std::to_string(cfg.dim) +
                      "), not the expected '" + expect->name + "'");
    }
    if (faults != nullptr && faults->loadBadAlloc) {
        // An allocation failure while materializing multi-GB tables.
        throw std::bad_alloc();
    }

    // Materialize tables from the verified payload spans.
    std::vector<std::unique_ptr<EmbeddingTable>> tables;
    tables.reserve(cfg.tables);
    for (std::size_t t = 0; t < cfg.tables; ++t) {
        tables.push_back(std::make_unique<EmbeddingTable>(
            cfg.rows, cfg.dim, f.info.dtype,
            buf.data() + f.payloadOffsets[t], f.payloadBytesPerTable));
    }
    auto store = std::make_shared<EmbeddingStore>(
        cfg, f.info.dtype, f.info.blockRows, std::move(tables),
        std::move(f.tableSeeds));

    // The adopted store rebuilt its block checksums from the loaded
    // bytes; cross-check them against the file's recorded values so
    // a divergence between the two integrity domains is loud.
    for (std::size_t t = 0; t < cfg.tables; ++t) {
        for (std::size_t b = 0; b < store->numBlocks(); ++b) {
            if (store->storedChecksum(t, b) !=
                f.info.blockChecksums[t * f.info.blocksPerTable + b]) {
                throw IoError(
                    "snapshot " + path + " table " +
                    std::to_string(t) + " block " + std::to_string(b) +
                    ": rebuilt checksum diverges from the recorded "
                    "one");
            }
        }
    }

    // Rebuild the MLPs from the saved fp32 parameters.
    Reader mr{buf.data(), buf.size(), f.mlpDataOffset, "mlps"};
    const auto readMlp = [&](const std::vector<std::size_t>& dims) {
        std::vector<Tensor> weights;
        std::vector<std::vector<float>> biases;
        for (std::size_t l = 0; l + 1 < dims.size(); ++l) {
            Tensor lw(dims[l + 1], dims[l]);
            std::memcpy(
                lw.data(),
                mr.bytes(dims[l + 1] * dims[l] * sizeof(float)),
                dims[l + 1] * dims[l] * sizeof(float));
            std::vector<float> lb(dims[l + 1]);
            std::memcpy(lb.data(),
                        mr.bytes(dims[l + 1] * sizeof(float)),
                        dims[l + 1] * sizeof(float));
            weights.push_back(std::move(lw));
            biases.push_back(std::move(lb));
        }
        return Mlp(dims, std::move(weights), std::move(biases));
    };
    Mlp bottom = readMlp(f.mlpDimsBottom);
    mr.dimList(); // top size list (already validated)
    Mlp top = readMlp(f.mlpDimsTop);

    LoadedSnapshot out;
    out.model = std::make_shared<const DlrmModel>(
        cfg, store, std::move(bottom), std::move(top));
    out.store = std::move(store);
    out.probePredictions = std::move(f.probe);
    out.info = std::move(f.info);

    // End-to-end: the materialized model must reproduce the golden
    // probe bitwise (the forward is SimdLevel-invariant, so this
    // holds across hosts too).
    const std::vector<float> replay = probePredictions(*out.model);
    if (replay.size() != out.probePredictions.size() ||
        std::memcmp(replay.data(), out.probePredictions.data(),
                    replay.size() * sizeof(float)) != 0) {
        throw IoError("snapshot " + path +
                      " loaded, but the rebuilt model does not "
                      "reproduce the golden probe predictions");
    }
    return out;
}

void
ModelSnapshot::makeProbeBatch(const ModelConfig& cfg, Tensor& dense,
                              SparseBatch& sparse)
{
    // Pure function of the architecture, NOT of the version: any two
    // versions of the same config are comparable on this batch.
    dense.reshape(kProbeBatch, cfg.denseDim());
    dense.randomize(mix64(0x70726F6265ull), 0.25f);
    const std::size_t lookups = std::max<std::size_t>(1, cfg.lookups);
    sparse.batchSize = kProbeBatch;
    sparse.indices.assign(cfg.tables, {});
    sparse.offsets.assign(cfg.tables, {});
    for (std::size_t t = 0; t < cfg.tables; ++t) {
        auto& off = sparse.offsets[t];
        auto& idx = sparse.indices[t];
        off.push_back(0);
        for (std::size_t s = 0; s < kProbeBatch; ++s) {
            for (std::size_t j = 0; j < lookups; ++j) {
                const std::uint64_t h = mix64(
                    0x6C6F6F6Bull ^ (t * 1000003ull + s * 131ull + j));
                idx.push_back(static_cast<RowIndex>(h % cfg.rows));
            }
            off.push_back(static_cast<RowIndex>(idx.size()));
        }
    }
}

std::vector<float>
ModelSnapshot::probePredictions(const DlrmModel& model)
{
    Tensor dense;
    SparseBatch sparse;
    makeProbeBatch(model.config(), dense, sparse);
    DlrmWorkspace ws;
    model.forward(dense, sparse, ws, PrefetchSpec{},
                  model.store()->dtype());
    return std::vector<float>(ws.pred.data(),
                              ws.pred.data() + kProbeBatch);
}

} // namespace dlrmopt::core
