/**
 * @file
 * Request coalescing for batched inference: concatenation of
 * per-request SparseBatches into one larger batch, per-request views
 * of the coalesced prediction tensor, and a fully preallocated
 * ForwardWorkspace whose steady-state batched forward performs zero
 * heap allocations.
 *
 * Every kernel on the forward path (packed register-blocked GEMM,
 * embedding_bag, dot interaction, sigmoid) processes samples
 * independently, so a coalesced forward is bitwise-identical to
 * running each member request alone — batching is purely a throughput
 * lever: it amortizes per-dispatch fixed costs (small-batch GEMM
 * inefficiency, stage setup) across requests, which is what the
 * serving layer's deadline-aware BatchQueue exploits. The packed GEMM
 * keeps that guarantee by construction (each output element's fmaf
 * chain is independent of the sample's position, the SimdLevel, and
 * the blocking tile), and its batch-shape-aware tile dispatch
 * (GemmTileCache keyed on the coalesced m) is what the coalesced
 * shapes are tuned for; weights are prepacked at model construction,
 * so the steady-state batched forward still performs zero heap
 * allocations.
 */

#ifndef DLRMOPT_CORE_BATCHING_HPP
#define DLRMOPT_CORE_BATCHING_HPP

#include <array>
#include <cstddef>
#include <vector>

#include "core/dlrm.hpp"
#include "core/sparse_input.hpp"
#include "core/tensor.hpp"

namespace dlrmopt::core
{

/**
 * Concatenates per-request sparse batches into one coalesced batch.
 *
 * Sample order is parts[0]'s samples, then parts[1]'s, and so on, so
 * rows [start_i, start_i + parts[i]->batchSize) of any per-sample
 * output tensor belong to request i (see splitPredictions).
 *
 * The single-request case is a no-op view: the function returns a
 * reference to *parts[0] without touching @p scratch, so coalescing
 * degenerates gracefully when the queue holds one request. Otherwise
 * @p scratch is filled (reusing its vectors' capacity — steady-state
 * concatenation of same-shaped requests allocates nothing) and a
 * reference to it is returned.
 *
 * @param parts Non-empty list of requests to coalesce.
 * @param scratch Reusable concatenation buffer.
 *
 * @throws IndexError when @p parts is empty or the requests disagree
 *         on the number of embedding tables (heterogeneous bag
 *         counts cannot share one embeddingForward call).
 */
const SparseBatch&
concatSparseBatches(const std::vector<const SparseBatch *>& parts,
                    SparseBatch& scratch);

/** One request's slice of a coalesced per-sample output tensor. */
struct PredictionSpan
{
    const float *data = nullptr; //!< first prediction of the request
    std::size_t batch = 0;       //!< samples belonging to the request
};

/**
 * Splits a coalesced per-sample prediction tensor back into
 * per-request views (no copies: spans point into @p pred and stay
 * valid until it is next written).
 *
 * @param pred Coalesced predictions, [sum(batch_sizes) x 1].
 * @param batch_sizes Member batch sizes in concatenation order.
 * @param out Reused output vector, resized to batch_sizes.size().
 *
 * @throws IndexError when pred's row count does not equal the sum of
 *         @p batch_sizes.
 */
void splitPredictions(const Tensor& pred,
                      const std::vector<std::size_t>& batch_sizes,
                      std::vector<PredictionSpan>& out);

/**
 * One rotating buffer set of the stage-pipelined forward: everything
 * the gather stage (sparse concat + dense staging + embedding bag)
 * writes for one dispatch, plus the compute stage's private scratch
 * and outputs for the same dispatch.
 *
 * The streaming pipeline keeps two of these. While the compute stage
 * (bottom MLP -> interaction -> top MLP -> sigmoid) consumes set k,
 * the gather stage for dispatch k+1 fills the sibling set — the two
 * touch disjoint storage, which is what makes the overlap race-free.
 */
struct StageBuffers
{
    // --- gather-stage outputs (handed off to the compute stage) ---
    SparseBatch concat;      //!< coalesced sparse lookups
    Tensor dense;            //!< staged dense rows [batch x denseDim]
    Tensor embOut;           //!< pooled embeddings [tables x batch*dim]
    std::size_t batch = 0;   //!< coalesced batch size staged here

    // --- compute-stage scratch and outputs ---
    Tensor bottomOut;        //!< [batch x dim]
    Tensor interOut;         //!< row-major [batch x topInputDim]
    Tensor interOutT;        //!< feature-major [topInputDim x batch]
    Tensor pred;             //!< [batch x 1]
    Tensor mlpA;             //!< MLP ping-pong scratch
    Tensor mlpB;
    std::vector<const float *> embPtrs; //!< interaction pointer table
    std::vector<std::uint8_t> qact;     //!< int8 activation staging
};

/**
 * Preallocated scratch state for the batched forward path, organized
 * as two rotating StageBuffers sets.
 *
 * reserve() sizes every buffer of both sets — stage tensors, MLP
 * ping-pong scratch, the interaction pointer table, the dense staging
 * tensor, and the sparse concatenation buffer — for a maximum
 * coalesced batch, after which forward(), coalesce(), and the
 * stageGather()/stageCompute() pipeline perform no heap allocations
 * for any batch up to that size. bufferFingerprint() exposes the
 * backing-store addresses of both sets so tests can assert the steady
 * state really reuses storage.
 *
 * Two usage modes:
 *
 *  - Sequential (forward() / coalesce()): the pre-pipeline behaviour,
 *    operating on set 0 with the row-major interaction + m-major top
 *    MLP. Bitwise-identical to DlrmModel::forward.
 *
 *  - Pipelined (stageGather() / stageCompute()): stageGather stages
 *    dispatch k+1's sparse/dense inputs and runs the memory-bound
 *    embedding bag into the next rotation set while stageCompute runs
 *    the compute-bound half of dispatch k on the sibling set — the
 *    interaction writes feature-major and the top-MLP first layer
 *    consumes it through the n-major packed engine, so the handoff
 *    needs no repack. Predictions are bitwise-identical to the
 *    sequential path (the n-major kernels run the same per-element
 *    fmaf chains). The two calls touch disjoint sets and may run
 *    concurrently on different cores.
 */
class ForwardWorkspace
{
  public:
    ForwardWorkspace() = default;

    /**
     * Preallocates for coalesced batches of up to @p max_batch
     * samples with up to @p max_lookups lookups per sample per table.
     *
     * @throws std::invalid_argument on a zero max_batch.
     */
    void reserve(const DlrmModel& model, std::size_t max_batch,
                 std::size_t max_lookups);

    std::size_t maxBatch() const { return _maxBatch; }

    /**
     * Full forward pass into set 0's buffers; returns the prediction
     * tensor [batch x 1] (owned by the workspace, valid until the
     * next call). Zero heap allocations for batches within the
     * reserved capacity; bitwise-identical to DlrmModel::forward with
     * a fresh DlrmWorkspace.
     *
     * @param dense Dense features [sparse.batchSize x denseDim].
     * @param dtype Inference precision (see DlrmModel::forward):
     *        Bf16 swaps in the bf16 fused-dequant bags, Int8 the int8
     *        bags plus the u8·s8 MLP engine staged through the set's
     *        qact buffer. (The streamed pipeline quantizes only its
     *        gather stage — see stageGather — its compute stages run
     *        fp32.)
     * @param tier Optional hot tier for the embedding stage (see
     *        DlrmModel::embeddingForward); bitwise-identical output
     *        with or without it.
     */
    const Tensor& forward(const DlrmModel& model, const Tensor& dense,
                          const SparseBatch& sparse,
                          const PrefetchSpec& pf = {},
                          EmbDtype dtype = EmbDtype::Fp32,
                          HotTierCache *tier = nullptr);

    /**
     * Coalesces member requests (sparse inputs plus their dense
     * feature blocks) into set 0's staging buffers.
     *
     * @param parts Member sparse batches.
     * @param dense_parts dense_parts[i] is member i's dense features,
     *        [parts[i]->batchSize x denseDim].
     * @retval Coalesced sparse batch (a view of *parts[0] for a
     *         single member). stagedDense() holds the matching dense
     *         rows.
     */
    const SparseBatch&
    coalesce(const std::vector<const SparseBatch *>& parts,
             const std::vector<const Tensor *>& dense_parts);

    /** Dense rows staged by the last coalesce(). */
    const Tensor& stagedDense() const { return _sets[0].dense; }

    /** Predictions of the last forward() / stageCompute(). */
    const Tensor& predictions() const
    {
        return _sets[_lastCompute].pred;
    }

    /** Predictions held by rotation set @p set. */
    const Tensor& predictions(std::size_t set) const
    {
        return _sets[set].pred;
    }

    /**
     * Pipeline gather stage: coalesces the members into the next
     * rotation set and runs the memory-bound embedding bag there.
     * Returns the set index staged (pass it to stageCompute). Safe to
     * run concurrently with a stageCompute on the other set; the
     * caller serializes successive gathers.
     *
     * @param dtype Precision of the embedding bags (the stage this
     *        lane exists to overlap is exactly the bandwidth-bound
     *        one quantization accelerates). The compute stages stay
     *        fp32 regardless — pooled bag outputs are fp32 at every
     *        precision, so the handoff is unchanged.
     * @param tier Optional hot tier for the staged bags (see
     *        DlrmModel::embeddingForward).
     */
    std::size_t stageGather(const DlrmModel& model,
                            const std::vector<const SparseBatch *>& parts,
                            const std::vector<const Tensor *>& dense_parts,
                            const PrefetchSpec& pf = {},
                            EmbDtype dtype = EmbDtype::Fp32,
                            HotTierCache *tier = nullptr);

    /**
     * Pipeline compute stage over rotation set @p set: bottom MLP,
     * feature-major interaction, top MLP through the n-major packed
     * engine, sigmoid. Returns the set's prediction tensor
     * [batch x 1]; bitwise-identical to forward() on the same inputs.
     */
    const Tensor& stageCompute(const DlrmModel& model, std::size_t set);

    /**
     * Resets the rotation so the next stageGather uses set 0
     * (deterministic pipeline starts in tests/benches).
     */
    void resetRotation() { _gatherNext = 0; }

    /** Number of rotating buffer sets (double buffering). */
    static constexpr std::size_t numSets = 2;

    /**
     * Hash of every backing-store address across both rotation sets.
     * Unchanged across calls means no buffer was reallocated — the
     * workspace-reuse assertion behind the zero-allocation claim, and
     * the corruption probe the pipeline fault tests lean on (a failed
     * in-flight stage must leave the sibling set's storage alone).
     */
    std::size_t bufferFingerprint() const;

  private:
    /** Coalesce @p parts into set @p s; returns the merged view. */
    const SparseBatch&
    coalesceInto(std::size_t s,
                 const std::vector<const SparseBatch *>& parts,
                 const std::vector<const Tensor *>& dense_parts);

    std::array<StageBuffers, numSets> _sets;
    std::size_t _gatherNext = 0;  //!< set the next stageGather fills
    std::size_t _lastCompute = 0; //!< set holding the latest pred
    std::size_t _maxBatch = 0;
};

} // namespace dlrmopt::core

#endif // DLRMOPT_CORE_BATCHING_HPP
