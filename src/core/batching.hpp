/**
 * @file
 * Request coalescing for batched inference: concatenation of
 * per-request SparseBatches into one larger batch, per-request views
 * of the coalesced prediction tensor, and a fully preallocated
 * ForwardWorkspace whose steady-state batched forward performs zero
 * heap allocations.
 *
 * Every kernel on the forward path (packed register-blocked GEMM,
 * embedding_bag, dot interaction, sigmoid) processes samples
 * independently, so a coalesced forward is bitwise-identical to
 * running each member request alone — batching is purely a throughput
 * lever: it amortizes per-dispatch fixed costs (small-batch GEMM
 * inefficiency, stage setup) across requests, which is what the
 * serving layer's deadline-aware BatchQueue exploits. The packed GEMM
 * keeps that guarantee by construction (each output element's fmaf
 * chain is independent of the sample's position, the SimdLevel, and
 * the blocking tile), and its batch-shape-aware tile dispatch
 * (GemmTileCache keyed on the coalesced m) is what the coalesced
 * shapes are tuned for; weights are prepacked at model construction,
 * so the steady-state batched forward still performs zero heap
 * allocations.
 */

#ifndef DLRMOPT_CORE_BATCHING_HPP
#define DLRMOPT_CORE_BATCHING_HPP

#include <cstddef>
#include <vector>

#include "core/dlrm.hpp"
#include "core/sparse_input.hpp"
#include "core/tensor.hpp"

namespace dlrmopt::core
{

/**
 * Concatenates per-request sparse batches into one coalesced batch.
 *
 * Sample order is parts[0]'s samples, then parts[1]'s, and so on, so
 * rows [start_i, start_i + parts[i]->batchSize) of any per-sample
 * output tensor belong to request i (see splitPredictions).
 *
 * The single-request case is a no-op view: the function returns a
 * reference to *parts[0] without touching @p scratch, so coalescing
 * degenerates gracefully when the queue holds one request. Otherwise
 * @p scratch is filled (reusing its vectors' capacity — steady-state
 * concatenation of same-shaped requests allocates nothing) and a
 * reference to it is returned.
 *
 * @param parts Non-empty list of requests to coalesce.
 * @param scratch Reusable concatenation buffer.
 *
 * @throws IndexError when @p parts is empty or the requests disagree
 *         on the number of embedding tables (heterogeneous bag
 *         counts cannot share one embeddingForward call).
 */
const SparseBatch&
concatSparseBatches(const std::vector<const SparseBatch *>& parts,
                    SparseBatch& scratch);

/** One request's slice of a coalesced per-sample output tensor. */
struct PredictionSpan
{
    const float *data = nullptr; //!< first prediction of the request
    std::size_t batch = 0;       //!< samples belonging to the request
};

/**
 * Splits a coalesced per-sample prediction tensor back into
 * per-request views (no copies: spans point into @p pred and stay
 * valid until it is next written).
 *
 * @param pred Coalesced predictions, [sum(batch_sizes) x 1].
 * @param batch_sizes Member batch sizes in concatenation order.
 * @param out Reused output vector, resized to batch_sizes.size().
 *
 * @throws IndexError when pred's row count does not equal the sum of
 *         @p batch_sizes.
 */
void splitPredictions(const Tensor& pred,
                      const std::vector<std::size_t>& batch_sizes,
                      std::vector<PredictionSpan>& out);

/**
 * Preallocated scratch state for the batched forward path.
 *
 * reserve() sizes every buffer — stage tensors, MLP ping-pong
 * scratch, the interaction pointer table, the dense staging tensor,
 * and the sparse concatenation buffer — for a maximum coalesced
 * batch, after which forward() and coalesce() perform no heap
 * allocations for any batch up to that size. bufferFingerprint()
 * exposes the backing-store addresses so tests can assert the
 * steady state really reuses storage.
 */
class ForwardWorkspace
{
  public:
    ForwardWorkspace() = default;

    /**
     * Preallocates for coalesced batches of up to @p max_batch
     * samples with up to @p max_lookups lookups per sample per table.
     *
     * @throws std::invalid_argument on a zero max_batch.
     */
    void reserve(const DlrmModel& model, std::size_t max_batch,
                 std::size_t max_lookups);

    std::size_t maxBatch() const { return _maxBatch; }

    /**
     * Full forward pass into this workspace's buffers; returns the
     * prediction tensor [batch x 1] (owned by the workspace, valid
     * until the next call). Zero heap allocations for batches within
     * the reserved capacity; bitwise-identical to
     * DlrmModel::forward with a fresh DlrmWorkspace.
     *
     * @param dense Dense features [sparse.batchSize x denseDim].
     */
    const Tensor& forward(const DlrmModel& model, const Tensor& dense,
                          const SparseBatch& sparse,
                          const PrefetchSpec& pf = {});

    /**
     * Coalesces member requests (sparse inputs plus their dense
     * feature blocks) into this workspace's staging buffers.
     *
     * @param parts Member sparse batches.
     * @param dense_parts dense_parts[i] is member i's dense features,
     *        [parts[i]->batchSize x denseDim].
     * @retval Coalesced sparse batch (a view of *parts[0] for a
     *         single member). stagedDense() holds the matching dense
     *         rows.
     */
    const SparseBatch&
    coalesce(const std::vector<const SparseBatch *>& parts,
             const std::vector<const Tensor *>& dense_parts);

    /** Dense rows staged by the last coalesce(). */
    const Tensor& stagedDense() const { return _dense; }

    /** Predictions of the last forward(). */
    const Tensor& predictions() const { return _ws.pred; }

    /** Stage tensors (shared with the per-request forward path). */
    DlrmWorkspace& stages() { return _ws; }

    /**
     * Hash of every backing-store address. Unchanged across calls
     * means no buffer was reallocated — the workspace-reuse
     * assertion behind the zero-allocation claim.
     */
    std::size_t bufferFingerprint() const;

  private:
    DlrmWorkspace _ws;
    Tensor _mlpA;    //!< MLP ping-pong scratch
    Tensor _mlpB;
    Tensor _dense;   //!< staged dense rows of a coalesced batch
    SparseBatch _concat;
    std::vector<const float *> _embPtrs;
    std::size_t _maxBatch = 0;
};

} // namespace dlrmopt::core

#endif // DLRMOPT_CORE_BATCHING_HPP
