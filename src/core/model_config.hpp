/**
 * @file
 * DLRM model architecture descriptions.
 *
 * Encodes Table 1 (model classes / SLA targets) and Table 2 (the four
 * models evaluated: rm1 and rm2_1..3) of the paper, plus helpers for
 * deriving stage shapes and scaling models down to fit small hosts
 * for real-execution runs.
 */

#ifndef DLRMOPT_CORE_MODEL_CONFIG_HPP
#define DLRMOPT_CORE_MODEL_CONFIG_HPP

#include <cstddef>
#include <string>
#include <vector>

#include "core/interaction.hpp"

namespace dlrmopt::core
{

/** Model classes from Gupta et al. as reused in the paper (Table 1). */
enum class ModelClass
{
    RMC1, //!< Embedding ~60% of time, small model, 100 ms SLA.
    RMC2, //!< Embedding ~90%+, large model, 400 ms SLA.
    RMC3, //!< MLP ~80%, medium model, 100 ms SLA.
};

/** SLA latency target in milliseconds for a model class (Table 1). */
double slaTargetMs(ModelClass cls);

/**
 * Full architecture of one DLRM variant (one row of Table 2).
 */
struct ModelConfig
{
    std::string name;
    ModelClass cls = ModelClass::RMC2;

    std::size_t rows = 0;        //!< rows per embedding table
    std::size_t dim = 0;         //!< embedding dimension
    std::size_t tables = 0;      //!< number of embedding tables
    std::size_t lookups = 0;     //!< lookups per sample per table

    /** Bottom-MLP sizes including the dense input dim; the last entry
     *  equals the embedding dimension. */
    std::vector<std::size_t> bottomMlp;

    /** Top-MLP hidden sizes ending in 1 (the CTR output). The input
     *  width is derived from the interaction stage. */
    std::vector<std::size_t> topMlp;

    /** Embedding share of execution time reported in Table 2 (%). */
    double embTimePercent = 0.0;

    std::size_t denseDim() const { return bottomMlp.front(); }

    /** Bytes of one embedding table ("Per table capacity", Table 2). */
    double tableBytes() const
    {
        return static_cast<double>(rows) * dim * sizeof(float);
    }

    /** Total embedding bytes ("Emb. Size", Table 2). */
    double embeddingBytes() const { return tableBytes() * tables; }

    /** Width of the interaction-stage output / top-MLP input. */
    std::size_t
    topInputDim() const
    {
        return interactionOutputDim(tables, dim);
    }

    /** Top-MLP size list including its derived input dimension. */
    std::vector<std::size_t>
    topMlpDims() const
    {
        std::vector<std::size_t> d;
        d.push_back(topInputDim());
        d.insert(d.end(), topMlp.begin(), topMlp.end());
        return d;
    }

    double slaMs() const { return slaTargetMs(cls); }

    /**
     * Returns a copy scaled down for real execution on small hosts:
     * row count and table count are reduced while keeping the
     * embedding dimension and lookup structure (and therefore the
     * per-lookup memory behaviour) intact.
     *
     * @param max_bytes Upper bound for total embedding bytes.
     */
    ModelConfig scaledToFit(double max_bytes) const;
};

/** The four evaluated models (Table 2). */
ModelConfig rm1();
ModelConfig rm2_1();
ModelConfig rm2_2();
ModelConfig rm2_3();

/** All Table 2 models in paper order: rm2_1, rm2_2, rm2_3, rm1. */
const std::vector<ModelConfig>& allModels();

/** Looks up a Table 2 model by name; throws std::out_of_range. */
const ModelConfig& modelByName(const std::string& name);

/** Batch size used throughout the paper's evaluation (Sec. 5). */
constexpr std::size_t paperBatchSize = 64;

/** Number of batches each latency figure is averaged over (Sec. 6). */
constexpr std::size_t paperNumBatches = 120;

} // namespace dlrmopt::core

#endif // DLRMOPT_CORE_MODEL_CONFIG_HPP
