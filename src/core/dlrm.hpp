/**
 * @file
 * The full DLRM inference model: bottom MLP, embedding tables,
 * feature interaction, and top MLP (Fig. 2 of the paper).
 *
 * Model parameters are split by weight class: the capacity-dominant
 * embedding tables live in a shared, immutable EmbeddingStore, and
 * DlrmModel is a cheap *view* over it — either a full replica
 * (referencing every table) or a table-subset shard. N serving
 * instances over one store therefore cost N small MLPs and zero extra
 * embedding bytes, which is what makes multi-instance serving fit on
 * one host.
 */

#ifndef DLRMOPT_CORE_DLRM_HPP
#define DLRMOPT_CORE_DLRM_HPP

#include <cstdint>
#include <memory>
#include <vector>

#include "core/embedding.hpp"
#include "core/embedding_store.hpp"
#include "core/hot_tier.hpp"
#include "core/mlp.hpp"
#include "core/model_config.hpp"
#include "core/sparse_input.hpp"
#include "core/tensor.hpp"

namespace dlrmopt::core
{

/**
 * Scratch buffers for one in-flight inference batch. Reused across
 * batches to keep the steady-state allocation-free.
 */
struct DlrmWorkspace
{
    Tensor bottomOut; //!< [batch x dim]
    Tensor embOut;    //!< [tables x (batch * dim)]
    Tensor interOut;  //!< [batch x topInputDim]
    Tensor pred;      //!< [batch x 1]
};

/**
 * A DLRM view: private MLP weights plus a shared reference to the
 * embedding store.
 *
 * A *full view* references every table and supports the complete
 * forward pass. A *shard view* references a contiguous table subset
 * [firstTable, firstTable + numLocalTables); its embeddingForward
 * produces the partial [numLocalTables x (batch * dim)] block, and
 * mergeShardEmbeddings() reassembles the full tensor before the
 * interaction stage.
 */
class DlrmModel
{
  public:
    /**
     * Builds a standalone model with deterministic pseudo-random
     * parameters, allocating a private store (the pre-refactor
     * behaviour; bitwise-identical contents).
     *
     * @param cfg Architecture description (see Table 2 presets).
     * @param seed Seed for reproducible weights/table contents.
     */
    explicit DlrmModel(const ModelConfig& cfg, std::uint64_t seed = 42);

    /**
     * Builds a full replica view over an existing store: fresh MLP
     * weights (seed-derived, so equal seeds give bitwise-equal
     * replicas), zero embedding bytes allocated.
     *
     * @throws std::invalid_argument when the store geometry does not
     *         match cfg (tables/rows/dim).
     */
    DlrmModel(const ModelConfig& cfg,
              std::shared_ptr<const EmbeddingStore> store,
              std::uint64_t seed = 42);

    /**
     * Builds a shard view over tables
     * [first_table, first_table + num_tables).
     *
     * @throws std::invalid_argument on an empty or out-of-range table
     *         span, or on store/cfg geometry mismatch.
     */
    DlrmModel(const ModelConfig& cfg,
              std::shared_ptr<const EmbeddingStore> store,
              std::size_t first_table, std::size_t num_tables,
              std::uint64_t seed = 42);

    /**
     * Rebuilds a full view from explicit MLPs (a snapshot's weights)
     * over an already-loaded store: no seed-derived initialization
     * runs, so the model is bitwise-identical to the one the MLPs
     * were saved from.
     *
     * @throws std::invalid_argument on store/cfg geometry mismatch or
     *         MLPs whose size lists mismatch cfg.
     */
    DlrmModel(const ModelConfig& cfg,
              std::shared_ptr<const EmbeddingStore> store, Mlp bottom,
              Mlp top);

    const ModelConfig& config() const { return _cfg; }

    /** The shared table storage backing this view. */
    const std::shared_ptr<const EmbeddingStore>& store() const
    {
        return _store;
    }

    /**
     * Attaches a reduced-precision copy of the embedding store for
     * quantized forwards: a bf16 or int8 store with the same
     * rows/dim/tables geometry as the primary. Once attached,
     * forward(..., dtype) and embeddingForward(..., dtype) route the
     * lookup stage through it (serving's degradation tiers switch
     * dtype per request without touching the model otherwise). Must
     * be called before the model is shared across threads — stores
     * are immutable on the read path, attachment is not.
     *
     * @throws std::invalid_argument when the store is null, is fp32
     *         (attach only quantized copies; the primary already
     *         serves fp32), or its geometry mismatches the primary.
     */
    void attachQuantizedStore(
        std::shared_ptr<const EmbeddingStore> store);

    /**
     * Store serving @p dtype: the attached quantized copy when one
     * matches, else the primary store (graceful fallback — a
     * degradation tier asking for a precision that was never
     * provisioned runs at the primary's precision instead).
     */
    const EmbeddingStore& storeFor(EmbDtype dtype) const
    {
        if (dtype == EmbDtype::Bf16 && _bf16Store)
            return *_bf16Store;
        if (dtype == EmbDtype::Int8 && _int8Store)
            return *_int8Store;
        return *_store;
    }

    /** storeFor() as a shareable handle (what a HotTierCache is built
     *  over — the tier must front the exact store the bags run on). */
    const std::shared_ptr<const EmbeddingStore>&
    sharedStoreFor(EmbDtype dtype) const
    {
        if (dtype == EmbDtype::Bf16 && _bf16Store)
            return _bf16Store;
        if (dtype == EmbDtype::Int8 && _int8Store)
            return _int8Store;
        return _store;
    }

    /** True when a quantized store is attached for @p dtype. */
    bool
    hasQuantizedStore(EmbDtype dtype) const
    {
        return (dtype == EmbDtype::Bf16 && _bf16Store != nullptr) ||
               (dtype == EmbDtype::Int8 && _int8Store != nullptr);
    }

    /** Table by *global* table id (same id space as the store). */
    const EmbeddingTable& table(std::size_t t) const
    {
        return _store->table(t);
    }

    /** True when this view references every table of the model. */
    bool
    isFullView() const
    {
        return _firstTable == 0 && _numTables == _cfg.tables;
    }

    /** First global table id referenced by this view. */
    std::size_t firstTable() const { return _firstTable; }

    /** Number of tables this view references. */
    std::size_t numLocalTables() const { return _numTables; }

    /**
     * Runs the bottom MLP: dense [batch x denseDim] -> [batch x dim].
     * @p dtype Int8 routes through the u8·s8 packed engine; Fp32 and
     * Bf16 run the fp32 engine (bf16 is an embedding-storage format —
     * the MLPs have no bf16 kernel, so a bf16 tier pairs bf16 bags
     * with fp32 GEMMs).
     */
    void bottomForward(const Tensor& dense, Tensor& out,
                       EmbDtype dtype = EmbDtype::Fp32) const;

    /**
     * Runs the embedding lookup stage over this view's tables.
     *
     * @param sparse Lookup indices/offsets for the *full* batch (all
     *               cfg.tables tables); a shard view reads only its
     *               own tables' streams.
     * @param emb_out Output reshaped to
     *                [numLocalTables() x (batch * dim)]; row i holds
     *                the pooled block of global table firstTable()+i.
     *                For a full view this is the usual
     *                [tables x (batch * dim)] layout.
     * @param pf Software-prefetch configuration for embedding_bag.
     * @param dtype Selects the store (storeFor(dtype)) the bags run
     *        over; the fused-dequant kernels match its precision.
     * @param tier Optional hot tier: when non-null AND it fronts
     *        exactly storeFor(dtype) (tier->matches()), bags probe
     *        the tier before gathering cold — bitwise-identical
     *        output either way. A tier built over a different store
     *        (a reload canary's old version, a mismatched dtype) is
     *        silently bypassed, never wrongly served.
     */
    void embeddingForward(const SparseBatch& sparse, Tensor& emb_out,
                          const PrefetchSpec& pf = {},
                          EmbDtype dtype = EmbDtype::Fp32,
                          HotTierCache *tier = nullptr) const;

    /**
     * Runs feature interaction given both stage outputs. Requires the
     * *full* [tables x (batch * dim)] embedding tensor (merge shard
     * blocks first).
     */
    void interactionForward(const Tensor& bottom_out, const Tensor& emb_out,
                            std::size_t batch, Tensor& out) const;

    /**
     * interactionForward() with a caller-owned pointer table:
     * bitwise-identical, but allocation-free once @p emb_scratch has
     * capacity for cfg.tables entries.
     */
    void interactionForward(const Tensor& bottom_out, const Tensor& emb_out,
                            std::size_t batch, Tensor& out,
                            std::vector<const float *>& emb_scratch) const;

    /**
     * Feature-major interaction: @p out_t is reshaped to
     * [topInputDim() x batch] (sample b's feature f at row f, column
     * b) — the layout Mlp::forwardFromTransposed consumes without a
     * repack. Every value is computed by the identical dot chain as
     * interactionForward, so the two outputs are bitwise-equal
     * transposes of each other.
     */
    void interactionForwardTransposed(
        const Tensor& bottom_out, const Tensor& emb_out,
        std::size_t batch, Tensor& out_t,
        std::vector<const float *>& emb_scratch) const;

    /** Runs the top MLP and sigmoid, producing CTR predictions.
     *  @p dtype routes the MLP like bottomForward. */
    void topForward(const Tensor& inter_out, Tensor& pred,
                    EmbDtype dtype = EmbDtype::Fp32) const;

    /**
     * Full end-to-end forward pass (sequential stage order).
     *
     * @param dense Dense features [batch x denseDim].
     * @param sparse Sparse lookups for the same batch.
     * @param ws Scratch workspace (reused across calls).
     * @param pf Software-prefetch configuration.
     * @param dtype Inference precision: Fp32 is the exact baseline;
     *        Bf16 runs bf16 fused-dequant bags (fp32 MLPs); Int8 runs
     *        int8 bags plus the u8·s8 MLP path. Quantized dtypes are
     *        accuracy-budget approximations of fp32, each bitwise
     *        deterministic in its own right.
     * @param tier Optional hot tier for the embedding stage (see
     *        embeddingForward); predictions are bitwise-identical
     *        with or without it.
     *
     * @throws std::logic_error on a shard view — the interaction
     *         stage needs every table's block; run embeddingForward
     *         per shard and mergeShardEmbeddings() instead.
     */
    void forward(const Tensor& dense, const SparseBatch& sparse,
                 DlrmWorkspace& ws, const PrefetchSpec& pf = {},
                 EmbDtype dtype = EmbDtype::Fp32,
                 HotTierCache *tier = nullptr) const;

    const Mlp& bottomMlp() const { return _bottom; }
    const Mlp& topMlp() const { return _top; }

    /**
     * Bytes of embedding storage *referenced* by this view (the full
     * store for a replica, the subset for a shard). Views share the
     * store: constructing more of them allocates nothing.
     */
    std::size_t
    embeddingBytes() const
    {
        std::size_t n = 0;
        for (std::size_t t = 0; t < _numTables; ++t)
            n += _store->table(_firstTable + t).bytes();
        return n;
    }

    /**
     * Bytes of panel-packed MLP weights this view owns (built once at
     * construction; the dense layers' forward always runs through the
     * packed microkernel engine). Per-replica — unlike the embedding
     * store, MLP weights are private to each view — but negligible
     * next to embeddingBytes().
     */
    std::size_t
    packedMlpBytes() const
    {
        return _bottom.packedBytes() + _top.packedBytes();
    }

  private:
    ModelConfig _cfg;
    Mlp _bottom;
    Mlp _top;
    std::shared_ptr<const EmbeddingStore> _store;
    std::shared_ptr<const EmbeddingStore> _bf16Store;
    std::shared_ptr<const EmbeddingStore> _int8Store;
    std::size_t _firstTable = 0;
    std::size_t _numTables = 0;
};

/**
 * Reassembles per-shard partial embedding outputs into the full
 * [tables x (batch * dim)] tensor a full view's interactionForward
 * expects.
 *
 * @param shards Shard views that together cover every table of the
 *        model exactly once (any order).
 * @param parts parts[i] is shards[i]'s embeddingForward output.
 * @param batch Batch size the blocks were produced with.
 * @param out Reshaped to [tables x (batch * dim)] and filled.
 *
 * @throws std::invalid_argument on size mismatch between shards and
 *         parts, a part with the wrong shape, or a table covered
 *         zero or multiple times.
 */
void mergeShardEmbeddings(const std::vector<const DlrmModel *>& shards,
                          const std::vector<const Tensor *>& parts,
                          std::size_t batch, Tensor& out);

} // namespace dlrmopt::core

#endif // DLRMOPT_CORE_DLRM_HPP
