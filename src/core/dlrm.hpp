/**
 * @file
 * The full DLRM inference model: bottom MLP, embedding tables,
 * feature interaction, and top MLP (Fig. 2 of the paper).
 */

#ifndef DLRMOPT_CORE_DLRM_HPP
#define DLRMOPT_CORE_DLRM_HPP

#include <cstdint>
#include <memory>
#include <vector>

#include "core/embedding.hpp"
#include "core/mlp.hpp"
#include "core/model_config.hpp"
#include "core/sparse_input.hpp"
#include "core/tensor.hpp"

namespace dlrmopt::core
{

/**
 * Scratch buffers for one in-flight inference batch. Reused across
 * batches to keep the steady-state allocation-free.
 */
struct DlrmWorkspace
{
    Tensor bottomOut; //!< [batch x dim]
    Tensor embOut;    //!< [tables x (batch * dim)]
    Tensor interOut;  //!< [batch x topInputDim]
    Tensor pred;      //!< [batch x 1]
};

/**
 * A materialized DLRM with real weights and embedding tables.
 *
 * Construction allocates rows * dim * 4 bytes per table; use
 * ModelConfig::scaledToFit() before constructing on small hosts.
 */
class DlrmModel
{
  public:
    /**
     * Builds the model with deterministic pseudo-random parameters.
     *
     * @param cfg Architecture description (see Table 2 presets).
     * @param seed Seed for reproducible weights/table contents.
     */
    explicit DlrmModel(const ModelConfig& cfg, std::uint64_t seed = 42);

    const ModelConfig& config() const { return _cfg; }

    const EmbeddingTable& table(std::size_t t) const { return *_tables[t]; }

    /** Runs the bottom MLP: dense [batch x denseDim] -> [batch x dim]. */
    void bottomForward(const Tensor& dense, Tensor& out) const;

    /**
     * Runs the embedding lookup stage over all tables.
     *
     * @param sparse Lookup indices/offsets for the batch.
     * @param emb_out Output reshaped to [tables x (batch * dim)];
     *                row t holds table t's pooled [batch x dim] block.
     * @param pf Software-prefetch configuration for embedding_bag.
     */
    void embeddingForward(const SparseBatch& sparse, Tensor& emb_out,
                          const PrefetchSpec& pf = {}) const;

    /** Runs feature interaction given both stage outputs. */
    void interactionForward(const Tensor& bottom_out, const Tensor& emb_out,
                            std::size_t batch, Tensor& out) const;

    /** Runs the top MLP and sigmoid, producing CTR predictions. */
    void topForward(const Tensor& inter_out, Tensor& pred) const;

    /**
     * Full end-to-end forward pass (sequential stage order).
     *
     * @param dense Dense features [batch x denseDim].
     * @param sparse Sparse lookups for the same batch.
     * @param ws Scratch workspace (reused across calls).
     * @param pf Software-prefetch configuration.
     */
    void forward(const Tensor& dense, const SparseBatch& sparse,
                 DlrmWorkspace& ws, const PrefetchSpec& pf = {}) const;

    const Mlp& bottomMlp() const { return _bottom; }
    const Mlp& topMlp() const { return _top; }

    /** Total bytes held in embedding tables. */
    std::size_t
    embeddingBytes() const
    {
        std::size_t n = 0;
        for (const auto& t : _tables)
            n += t->bytes();
        return n;
    }

  private:
    ModelConfig _cfg;
    Mlp _bottom;
    Mlp _top;
    std::vector<std::unique_ptr<EmbeddingTable>> _tables;
};

} // namespace dlrmopt::core

#endif // DLRMOPT_CORE_DLRM_HPP
