/**
 * @file
 * Reduced-precision storage types for embedding rows and the
 * activation/weight quantization helpers shared by the fused-dequant
 * embedding_bag kernels and the u8·s8 packed GEMM path.
 *
 * Two storage dtypes below fp32:
 *
 *  - bf16: the upper 16 bits of the IEEE-754 fp32 pattern (sign,
 *    exponent, truncated 7-bit mantissa). Conversion is a pure bit
 *    shift both ways — no rounding step — so widening a stored bf16
 *    value is exact and bitwise-deterministic on every ISA.
 *
 *  - int8: asymmetric per-block affine quantization. A block (one
 *    embedding row, or one GEMM operand tensor) stores uint8 codes q
 *    plus (scale, bias) metadata with value ≈ q * scale + bias, where
 *    scale = (max - min) / range and bias = min. Dequantization is a
 *    single fma per element, which is what lets the bag kernels fuse
 *    it into the accumulate without a second pass over the bytes.
 *
 * Codes are quantized with nearbyintf (round-to-nearest-even), the
 * scalar twin of the vector cvtps rounding mode, so quantization is
 * also bitwise-deterministic.
 */

#ifndef DLRMOPT_CORE_QUANT_HPP
#define DLRMOPT_CORE_QUANT_HPP

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>

namespace dlrmopt::core
{

/** Storage precision of an embedding table (and, for Int8, the MLP
 *  GEMM path a degraded forward runs through). */
enum class EmbDtype
{
    Fp32,
    Bf16,
    Int8,
};

/** Human-readable name ("fp32", "bf16", "int8"). */
std::string embDtypeName(EmbDtype dtype);

/** Parses "fp32" / "bf16" / "int8".
 *  @throws std::invalid_argument on anything else. */
EmbDtype parseEmbDtype(const std::string& name);

/** Stored payload bits per element (32 / 16 / 8). */
std::size_t embDtypeBits(EmbDtype dtype);

/** fp32 -> bf16 by mantissa truncation (keep the upper 16 bits). */
inline std::uint16_t
fp32ToBf16(float v)
{
    std::uint32_t u;
    std::memcpy(&u, &v, sizeof(u));
    return static_cast<std::uint16_t>(u >> 16);
}

/** bf16 -> fp32 widening (shift back into the upper half; exact). */
inline float
bf16ToFp32(std::uint16_t b)
{
    const std::uint32_t u = static_cast<std::uint32_t>(b) << 16;
    float v;
    std::memcpy(&v, &u, sizeof(v));
    return v;
}

/** Affine dequantization parameters of one int8 block:
 *  value = code * scale + bias. */
struct QuantParams
{
    float scale = 1.0f;
    float bias = 0.0f;
};

/**
 * Quantizes @p n floats to uint8 codes in [0, qmax] with the affine
 * min/max scheme: scale = (max - min) / qmax, bias = min,
 * code = nearbyintf((v - bias) / scale). A constant block (max == min)
 * gets scale 1 and all-zero codes, so dequantization is exact.
 *
 * @param qmax Top of the code range: 255 for storage rows, 127 for
 *        GEMM activations (keeping u8·s8 pair products inside s16).
 */
QuantParams quantizeBlockInt8(const float *src, std::size_t n,
                              std::uint8_t *dst, int qmax = 255);

} // namespace dlrmopt::core

#endif // DLRMOPT_CORE_QUANT_HPP
