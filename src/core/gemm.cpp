#include "core/gemm.hpp"

#include <algorithm>
#include <cmath>

#include "core/simd.hpp"

namespace dlrmopt::core
{

namespace
{

/** Tile sizes chosen so one (in-tile x out-tile) weight block stays in
 *  L1D alongside the activation rows. */
constexpr std::size_t tileIn = 256;
constexpr std::size_t tileOut = 64;

} // namespace

void
denseLayerForward(const float *in, std::size_t batch, std::size_t in_dim,
                  const float *weights, const float *bias,
                  std::size_t out_dim, float *out, bool relu)
{
    // Initialize outputs with the bias (or zero).
    for (std::size_t b = 0; b < batch; ++b) {
        float *o = out + b * out_dim;
        if (bias) {
            std::copy(bias, bias + out_dim, o);
        } else {
            std::fill(o, o + out_dim, 0.0f);
        }
    }

    for (std::size_t k0 = 0; k0 < in_dim; k0 += tileIn) {
        const std::size_t k1 = std::min(in_dim, k0 + tileIn);
        for (std::size_t n0 = 0; n0 < out_dim; n0 += tileOut) {
            const std::size_t n1 = std::min(out_dim, n0 + tileOut);
            for (std::size_t b = 0; b < batch; ++b) {
                const float *x = in + b * in_dim;
                float *o = out + b * out_dim;
                for (std::size_t n = n0; n < n1; ++n) {
                    const float *w = weights + n * in_dim;
                    float acc = 0.0f;
                    for (std::size_t k = k0; k < k1; ++k)
                        acc += x[k] * w[k];
                    o[n] += acc;
                }
            }
        }
    }

    if (relu) {
        for (std::size_t i = 0; i < batch * out_dim; ++i)
            out[i] = std::max(out[i], 0.0f);
    }
}

void
denseLayerForwardRef(const float *in, std::size_t batch, std::size_t in_dim,
                     const float *weights, const float *bias,
                     std::size_t out_dim, float *out, bool relu)
{
    for (std::size_t b = 0; b < batch; ++b) {
        for (std::size_t n = 0; n < out_dim; ++n) {
            double acc = bias ? bias[n] : 0.0;
            for (std::size_t k = 0; k < in_dim; ++k)
                acc += static_cast<double>(in[b * in_dim + k]) *
                       weights[n * in_dim + k];
            float v = static_cast<float>(acc);
            out[b * out_dim + n] = relu ? std::max(v, 0.0f) : v;
        }
    }
}

void
sigmoidInplace(float *data, std::size_t n)
{
    switch (currentSimdLevel()) {
      case SimdLevel::Avx512:
        sigmoidInplaceAvx512(data, n);
        return;
      case SimdLevel::Avx2:
        sigmoidInplaceAvx2(data, n);
        return;
      default:
        sigmoidInplaceScalar(data, n);
        return;
    }
}

} // namespace dlrmopt::core
