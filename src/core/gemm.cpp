#include "core/gemm.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "core/simd.hpp"

#if defined(__x86_64__) || defined(_M_X64)
#include <immintrin.h>
#define DLRMOPT_GEMM_X86 1
#else
#define DLRMOPT_GEMM_X86 0
#endif

namespace dlrmopt::core
{

namespace
{

/** Tile sizes chosen so one (in-tile x out-tile) weight block stays in
 *  L1D alongside the activation rows (blocked baseline kernel). */
constexpr std::size_t tileIn = 256;
constexpr std::size_t tileOut = 64;

constexpr std::size_t NR = PackedWeights::panelWidth;

/**
 * One microkernel invocation: rows [0, MR) of @p a against one packed
 * panel chunk, producing/updating an MR x NR block of @p c.
 *
 * @param a First sample's activations at the chunk's k offset.
 * @param lda Activation row stride (the layer's in_dim).
 * @param pb Packed panel data at the chunk's k offset (k-major).
 * @param kk Chunk depth (may be 0: epilogue-only call).
 * @param c Output block (row stride @p ldc = out_dim).
 * @param nv Valid columns of the panel (< NR only for the tail).
 * @param bias Panel's bias slice (already offset), or nullptr.
 * @param first True on the first k chunk (start from zero instead of
 *        reloading partial sums from c).
 * @param last True on the final k chunk (apply the fused epilogue:
 *        bias add + branchless ReLU in-register before the store).
 */
using MicroFn = void (*)(const float *a, std::size_t lda,
                         const float *pb, std::size_t kk, float *c,
                         std::size_t ldc, std::size_t nv,
                         const float *bias, bool relu, bool first,
                         bool last);

/**
 * Scalar mirror of the vector microkernels: per output element, the
 * identical fmaf chain over ascending k, then "+ bias" and the
 * branchless "acc > 0 ? acc : 0" ReLU — the same per-lane arithmetic
 * the masked AVX-512/AVX2 paths perform, so all levels are bitwise
 * equal.
 *
 * TA selects the activation layout: m-major (element (m,k) at
 * a[m*lda + k], lda = in_dim) or n-major/transposed (element (m,k) at
 * a[k*lda + m], lda = batch). Only the load address changes — the fmaf
 * chain itself is identical, so both layouts produce bitwise-equal
 * outputs for equal activation values.
 */
template <int MR, bool TA>
void
microScalar(const float *a, std::size_t lda, const float *pb,
            std::size_t kk, float *c, std::size_t ldc, std::size_t nv,
            const float *bias, bool relu, bool first, bool last)
{
    for (int m = 0; m < MR; ++m) {
        const std::size_t mu = static_cast<std::size_t>(m);
        float *cm = c + mu * ldc;
        for (std::size_t j = 0; j < nv; ++j) {
            float acc = first ? 0.0f : cm[j];
            for (std::size_t k = 0; k < kk; ++k) {
                const float av =
                    TA ? a[k * lda + mu] : a[mu * lda + k];
                acc = std::fmaf(av, pb[k * NR + j], acc);
            }
            if (last) {
                if (bias)
                    acc += bias[j];
                if (relu)
                    acc = acc > 0.0f ? acc : 0.0f;
            }
            cm[j] = acc;
        }
    }
}

constexpr std::array<MicroFn, 4> kScalarFns = {
    microScalar<1, false>, microScalar<2, false>,
    microScalar<3, false>, microScalar<4, false>};
constexpr std::array<MicroFn, 4> kScalarTFns = {
    microScalar<1, true>, microScalar<2, true>,
    microScalar<3, true>, microScalar<4, true>};

#if DLRMOPT_GEMM_X86 && defined(__AVX2__)

/** Lane mask covering the first @p valid of 8 lanes (AVX2 maskload
 *  form: top bit of each 32-bit lane). */
inline __m256i
avx2Mask(std::size_t valid)
{
    alignas(32) static constexpr std::int32_t table[16] = {
        -1, -1, -1, -1, -1, -1, -1, -1, 0, 0, 0, 0, 0, 0, 0, 0};
    return _mm256_loadu_si256(
        reinterpret_cast<const __m256i *>(table + (8 - valid)));
}

/** 4x16 AVX2 microkernel: two ymm accumulators per sample row.
 *  TA flips the activation broadcast address to the n-major layout
 *  (same FMA order, so bitwise-equal outputs). */
template <int MR, bool TA>
void
microAvx2(const float *a, std::size_t lda, const float *pb,
          std::size_t kk, float *c, std::size_t ldc, std::size_t nv,
          const float *bias, bool relu, bool first, bool last)
{
    const std::size_t v0 = nv < 8 ? nv : 8;
    const std::size_t v1 = nv > 8 ? nv - 8 : 0;
    const __m256i m0 = avx2Mask(v0);
    const __m256i m1 = avx2Mask(v1);

    __m256 acc[MR][2];
    for (int m = 0; m < MR; ++m) {
        float *cm = c + static_cast<std::size_t>(m) * ldc;
        acc[m][0] = first ? _mm256_setzero_ps()
                          : _mm256_maskload_ps(cm, m0);
        acc[m][1] = first ? _mm256_setzero_ps()
                          : _mm256_maskload_ps(cm + 8, m1);
    }
    for (std::size_t k = 0; k < kk; ++k) {
        const __m256 w0 = _mm256_loadu_ps(pb + k * NR);
        const __m256 w1 = _mm256_loadu_ps(pb + k * NR + 8);
        for (int m = 0; m < MR; ++m) {
            const std::size_t mu = static_cast<std::size_t>(m);
            const __m256 av = _mm256_broadcast_ss(
                TA ? a + k * lda + mu : a + mu * lda + k);
            acc[m][0] = _mm256_fmadd_ps(av, w0, acc[m][0]);
            acc[m][1] = _mm256_fmadd_ps(av, w1, acc[m][1]);
        }
    }
    if (last) {
        if (bias) {
            const __m256 b0 = _mm256_maskload_ps(bias, m0);
            const __m256 b1 = _mm256_maskload_ps(bias + 8, m1);
            for (int m = 0; m < MR; ++m) {
                acc[m][0] = _mm256_add_ps(acc[m][0], b0);
                acc[m][1] = _mm256_add_ps(acc[m][1], b1);
            }
        }
        if (relu) {
            const __m256 z = _mm256_setzero_ps();
            for (int m = 0; m < MR; ++m) {
                acc[m][0] = _mm256_max_ps(acc[m][0], z);
                acc[m][1] = _mm256_max_ps(acc[m][1], z);
            }
        }
    }
    for (int m = 0; m < MR; ++m) {
        float *cm = c + static_cast<std::size_t>(m) * ldc;
        _mm256_maskstore_ps(cm, m0, acc[m][0]);
        _mm256_maskstore_ps(cm + 8, m1, acc[m][1]);
    }
}

constexpr std::array<MicroFn, 4> kAvx2Fns = {
    microAvx2<1, false>, microAvx2<2, false>, microAvx2<3, false>,
    microAvx2<4, false>};
constexpr std::array<MicroFn, 4> kAvx2TFns = {
    microAvx2<1, true>, microAvx2<2, true>, microAvx2<3, true>,
    microAvx2<4, true>};
#define DLRMOPT_GEMM_HAVE_AVX2 1
#else
#define DLRMOPT_GEMM_HAVE_AVX2 0
#endif

#if DLRMOPT_GEMM_X86 && defined(__AVX512F__)

/** 6x16 AVX-512 microkernel: one zmm accumulator per sample row.
 *  TA flips the activation broadcast address to the n-major layout
 *  (same FMA order, so bitwise-equal outputs). */
template <int MR, bool TA>
void
microAvx512(const float *a, std::size_t lda, const float *pb,
            std::size_t kk, float *c, std::size_t ldc, std::size_t nv,
            const float *bias, bool relu, bool first, bool last)
{
    const __mmask16 mask =
        nv >= NR ? static_cast<__mmask16>(0xffff)
                 : static_cast<__mmask16>((1u << nv) - 1u);

    __m512 acc[MR];
    for (int m = 0; m < MR; ++m) {
        acc[m] = first
                     ? _mm512_setzero_ps()
                     : _mm512_maskz_loadu_ps(
                           mask, c + static_cast<std::size_t>(m) * ldc);
    }
    for (std::size_t k = 0; k < kk; ++k) {
        const __m512 wv = _mm512_loadu_ps(pb + k * NR);
        for (int m = 0; m < MR; ++m) {
            const std::size_t mu = static_cast<std::size_t>(m);
            const __m512 av = _mm512_set1_ps(
                TA ? a[k * lda + mu] : a[mu * lda + k]);
            acc[m] = _mm512_fmadd_ps(av, wv, acc[m]);
        }
    }
    if (last) {
        if (bias) {
            const __m512 bv = _mm512_maskz_loadu_ps(mask, bias);
            for (int m = 0; m < MR; ++m)
                acc[m] = _mm512_add_ps(acc[m], bv);
        }
        if (relu) {
            const __m512 z = _mm512_setzero_ps();
            for (int m = 0; m < MR; ++m)
                acc[m] = _mm512_max_ps(acc[m], z);
        }
    }
    for (int m = 0; m < MR; ++m) {
        _mm512_mask_storeu_ps(c + static_cast<std::size_t>(m) * ldc,
                              mask, acc[m]);
    }
}

constexpr std::array<MicroFn, 6> kAvx512Fns = {
    microAvx512<1, false>, microAvx512<2, false>, microAvx512<3, false>,
    microAvx512<4, false>, microAvx512<5, false>, microAvx512<6, false>};
constexpr std::array<MicroFn, 6> kAvx512TFns = {
    microAvx512<1, true>, microAvx512<2, true>, microAvx512<3, true>,
    microAvx512<4, true>, microAvx512<5, true>, microAvx512<6, true>};
#define DLRMOPT_GEMM_HAVE_AVX512 1
#else
#define DLRMOPT_GEMM_HAVE_AVX512 0
#endif

/** Per-level kernel family: MR-indexed variants plus the widest MR. */
struct MicroSet
{
    const MicroFn *fns;
    std::size_t maxMr;
};

MicroSet
microSetFor(SimdLevel level, bool trans = false)
{
#if DLRMOPT_GEMM_HAVE_AVX512
    if (level == SimdLevel::Avx512) {
        return trans ? MicroSet{kAvx512TFns.data(), kAvx512TFns.size()}
                     : MicroSet{kAvx512Fns.data(), kAvx512Fns.size()};
    }
#endif
#if DLRMOPT_GEMM_HAVE_AVX2
    if (level != SimdLevel::Scalar) {
        return trans ? MicroSet{kAvx2TFns.data(), kAvx2TFns.size()}
                     : MicroSet{kAvx2Fns.data(), kAvx2Fns.size()};
    }
#endif
    (void)level;
    return trans ? MicroSet{kScalarTFns.data(), kScalarTFns.size()}
                 : MicroSet{kScalarFns.data(), kScalarFns.size()};
}

/**
 * One u8·s8 microkernel invocation: rows [0, MR) of quantized
 * activations against one s8 panel, producing an MR x NR block of
 * fp32 output with the dequant+bias+ReLU epilogue fused into the
 * store. Unlike the fp32 MicroFn there is no k-chunking: the s32
 * accumulators live entirely in registers for the full depth (a
 * 127*127*2 pair-dot per step never saturates s16, and s32 overflow
 * would need a depth beyond 2^16 — far past any MLP here), so no
 * partial sums ever round-trip through memory.
 *
 * @param a Quantized activation row 0 (row stride @p lda = paddedK).
 * @param kp Number of k pairs (paddedK / 2; may be 0: epilogue only).
 * @param cscale Panel's colScale slice (already offset, padded).
 * @param cwsum Panel's colWsum slice (already offset, padded).
 * @param ascale / @p amin Activation (scale, bias) pair.
 */
using MicroFnInt8 = void (*)(const std::uint8_t *a, std::size_t lda,
                             const std::int8_t *pb, std::size_t kp,
                             float *c, std::size_t ldc, std::size_t nv,
                             const float *bias, const float *cscale,
                             const float *cwsum, float ascale,
                             float amin, bool relu);

/**
 * Scalar mirror of the u8·s8 kernels: the integer pair-dot is exact
 * (identical in every variant by arithmetic, not by op order), and the
 * float epilogue is the fixed 3-op chain
 *   v = fmaf((float)dot, ascale * cscale[j],
 *            fmaf(amin, cwsum[j], bias[j]))
 * matching the vector lanes bitwise ((float)dot and cvtepi32_ps both
 * round to nearest).
 */
template <int MR>
void
microScalarInt8(const std::uint8_t *a, std::size_t lda,
                const std::int8_t *pb, std::size_t kp, float *c,
                std::size_t ldc, std::size_t nv, const float *bias,
                const float *cscale, const float *cwsum, float ascale,
                float amin, bool relu)
{
    for (int m = 0; m < MR; ++m) {
        const std::size_t mu = static_cast<std::size_t>(m);
        const std::uint8_t *am = a + mu * lda;
        float *cm = c + mu * ldc;
        for (std::size_t j = 0; j < nv; ++j) {
            std::int32_t acc = 0;
            for (std::size_t k = 0; k < kp; ++k) {
                const int a0 = am[2 * k];
                const int a1 = am[2 * k + 1];
                const int w0 = pb[k * 2 * NR + j * 2];
                const int w1 = pb[k * 2 * NR + j * 2 + 1];
                acc += a0 * w0 + a1 * w1;
            }
            const float combined = ascale * cscale[j];
            const float off =
                std::fmaf(amin, cwsum[j], bias ? bias[j] : 0.0f);
            float v =
                std::fmaf(static_cast<float>(acc), combined, off);
            if (relu)
                v = v > 0.0f ? v : 0.0f;
            cm[j] = v;
        }
    }
}

constexpr std::array<MicroFnInt8, 4> kScalarInt8Fns = {
    microScalarInt8<1>, microScalarInt8<2>, microScalarInt8<3>,
    microScalarInt8<4>};

#if DLRMOPT_GEMM_HAVE_AVX2
/**
 * 4x16 AVX2 u8·s8 microkernel: maddubs one 32-byte panel row (16
 * columns x 2 k codes) against a broadcast activation byte pair,
 * widen the 16 s16 pair-dots to s32, and accumulate in two ymm per
 * sample row.
 */
template <int MR>
void
microAvx2Int8(const std::uint8_t *a, std::size_t lda,
              const std::int8_t *pb, std::size_t kp, float *c,
              std::size_t ldc, std::size_t nv, const float *bias,
              const float *cscale, const float *cwsum, float ascale,
              float amin, bool relu)
{
    const std::size_t v0 = nv < 8 ? nv : 8;
    const std::size_t v1 = nv > 8 ? nv - 8 : 0;
    const __m256i m0 = avx2Mask(v0);
    const __m256i m1 = avx2Mask(v1);

    __m256i acc[MR][2];
    for (int m = 0; m < MR; ++m) {
        acc[m][0] = _mm256_setzero_si256();
        acc[m][1] = _mm256_setzero_si256();
    }
    for (std::size_t k = 0; k < kp; ++k) {
        const __m256i wv = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(pb + k * 2 * NR));
        for (int m = 0; m < MR; ++m) {
            const std::uint8_t *am =
                a + static_cast<std::size_t>(m) * lda + 2 * k;
            const int pair = am[0] | (am[1] << 8);
            const __m256i av =
                _mm256_set1_epi16(static_cast<short>(pair));
            const __m256i prod = _mm256_maddubs_epi16(av, wv);
            acc[m][0] = _mm256_add_epi32(
                acc[m][0],
                _mm256_cvtepi16_epi32(_mm256_castsi256_si128(prod)));
            acc[m][1] = _mm256_add_epi32(
                acc[m][1],
                _mm256_cvtepi16_epi32(
                    _mm256_extracti128_si256(prod, 1)));
        }
    }
    const __m256 vscale = _mm256_set1_ps(ascale);
    const __m256 vmin = _mm256_set1_ps(amin);
    const __m256 comb0 =
        _mm256_mul_ps(vscale, _mm256_loadu_ps(cscale));
    const __m256 comb1 =
        _mm256_mul_ps(vscale, _mm256_loadu_ps(cscale + 8));
    const __m256 b0 =
        bias ? _mm256_maskload_ps(bias, m0) : _mm256_setzero_ps();
    const __m256 b1 =
        bias ? _mm256_maskload_ps(bias + 8, m1) : _mm256_setzero_ps();
    const __m256 off0 =
        _mm256_fmadd_ps(vmin, _mm256_loadu_ps(cwsum), b0);
    const __m256 off1 =
        _mm256_fmadd_ps(vmin, _mm256_loadu_ps(cwsum + 8), b1);
    const __m256 z = _mm256_setzero_ps();
    for (int m = 0; m < MR; ++m) {
        float *cm = c + static_cast<std::size_t>(m) * ldc;
        __m256 r0 = _mm256_fmadd_ps(_mm256_cvtepi32_ps(acc[m][0]),
                                    comb0, off0);
        __m256 r1 = _mm256_fmadd_ps(_mm256_cvtepi32_ps(acc[m][1]),
                                    comb1, off1);
        if (relu) {
            r0 = _mm256_max_ps(r0, z);
            r1 = _mm256_max_ps(r1, z);
        }
        _mm256_maskstore_ps(cm, m0, r0);
        _mm256_maskstore_ps(cm + 8, m1, r1);
    }
}

constexpr std::array<MicroFnInt8, 4> kAvx2Int8Fns = {
    microAvx2Int8<1>, microAvx2Int8<2>, microAvx2Int8<3>,
    microAvx2Int8<4>};
#endif

#if DLRMOPT_GEMM_HAVE_AVX512 && DLRMOPT_GEMM_HAVE_AVX2
/**
 * 6x16 AVX-512 u8·s8 microkernel: the same maddubs pair-dot widened
 * straight to one zmm s32 accumulator per sample row (no VNNI
 * dependence — vpmaddubsw + vpmovsxwd + vpaddd run on any AVX-512F
 * part).
 */
template <int MR>
void
microAvx512Int8(const std::uint8_t *a, std::size_t lda,
                const std::int8_t *pb, std::size_t kp, float *c,
                std::size_t ldc, std::size_t nv, const float *bias,
                const float *cscale, const float *cwsum, float ascale,
                float amin, bool relu)
{
    const __mmask16 mask =
        nv >= NR ? static_cast<__mmask16>(0xffff)
                 : static_cast<__mmask16>((1u << nv) - 1u);

    __m512i acc[MR];
    for (int m = 0; m < MR; ++m)
        acc[m] = _mm512_setzero_si512();
    for (std::size_t k = 0; k < kp; ++k) {
        const __m256i wv = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(pb + k * 2 * NR));
        for (int m = 0; m < MR; ++m) {
            const std::uint8_t *am =
                a + static_cast<std::size_t>(m) * lda + 2 * k;
            const int pair = am[0] | (am[1] << 8);
            const __m256i av =
                _mm256_set1_epi16(static_cast<short>(pair));
            const __m256i prod = _mm256_maddubs_epi16(av, wv);
            acc[m] =
                _mm512_add_epi32(acc[m], _mm512_cvtepi16_epi32(prod));
        }
    }
    const __m512 comb = _mm512_mul_ps(_mm512_set1_ps(ascale),
                                      _mm512_loadu_ps(cscale));
    const __m512 bv =
        bias ? _mm512_maskz_loadu_ps(mask, bias) : _mm512_setzero_ps();
    const __m512 off = _mm512_fmadd_ps(_mm512_set1_ps(amin),
                                       _mm512_loadu_ps(cwsum), bv);
    const __m512 z = _mm512_setzero_ps();
    for (int m = 0; m < MR; ++m) {
        __m512 r = _mm512_fmadd_ps(_mm512_cvtepi32_ps(acc[m]), comb,
                                   off);
        if (relu)
            r = _mm512_max_ps(r, z);
        _mm512_mask_storeu_ps(c + static_cast<std::size_t>(m) * ldc,
                              mask, r);
    }
}

constexpr std::array<MicroFnInt8, 6> kAvx512Int8Fns = {
    microAvx512Int8<1>, microAvx512Int8<2>, microAvx512Int8<3>,
    microAvx512Int8<4>, microAvx512Int8<5>, microAvx512Int8<6>};
#endif

#if DLRMOPT_GEMM_HAVE_AVX512 && defined(__AVX512VNNI__)
#define DLRMOPT_GEMM_HAVE_VNNI 1
/**
 * 6x16 AVX512-VNNI u8·s8 microkernel: one vpdpbusd per (sample row,
 * k quad) fuses the widening chain of the maddubs path — 4 u8·s8
 * products summed into the s32 accumulator directly, with no
 * saturation possible (each product fits s16, the quad-sum fits s32).
 * The integer dot is therefore the *exact* same value the widening
 * path accumulates, and the shared float epilogue makes the output
 * bitwise-identical. @p pb must be the quad-interleaved panelVnni
 * layout; @p kp stays the driver's pair count (quads = kp / 2).
 */
template <int MR>
void
microAvx512VnniInt8(const std::uint8_t *a, std::size_t lda,
                    const std::int8_t *pb, std::size_t kp, float *c,
                    std::size_t ldc, std::size_t nv, const float *bias,
                    const float *cscale, const float *cwsum,
                    float ascale, float amin, bool relu)
{
    const __mmask16 mask =
        nv >= NR ? static_cast<__mmask16>(0xffff)
                 : static_cast<__mmask16>((1u << nv) - 1u);

    __m512i acc[MR];
    for (int m = 0; m < MR; ++m)
        acc[m] = _mm512_setzero_si512();
    const std::size_t kq = kp / 2; // paddedK is a multiple of 4
    for (std::size_t q = 0; q < kq; ++q) {
        const __m512i wv = _mm512_loadu_si512(pb + q * 4 * NR);
        for (int m = 0; m < MR; ++m) {
            const std::uint8_t *am =
                a + static_cast<std::size_t>(m) * lda + 4 * q;
            std::uint32_t quad;
            std::memcpy(&quad, am, sizeof(quad));
            const __m512i av =
                _mm512_set1_epi32(static_cast<int>(quad));
            acc[m] = _mm512_dpbusd_epi32(acc[m], av, wv);
        }
    }
    const __m512 comb = _mm512_mul_ps(_mm512_set1_ps(ascale),
                                      _mm512_loadu_ps(cscale));
    const __m512 bv =
        bias ? _mm512_maskz_loadu_ps(mask, bias) : _mm512_setzero_ps();
    const __m512 off = _mm512_fmadd_ps(_mm512_set1_ps(amin),
                                       _mm512_loadu_ps(cwsum), bv);
    const __m512 z = _mm512_setzero_ps();
    for (int m = 0; m < MR; ++m) {
        __m512 r = _mm512_fmadd_ps(_mm512_cvtepi32_ps(acc[m]), comb,
                                   off);
        if (relu)
            r = _mm512_max_ps(r, z);
        _mm512_mask_storeu_ps(c + static_cast<std::size_t>(m) * ldc,
                              mask, r);
    }
}

constexpr std::array<MicroFnInt8, 6> kAvx512VnniInt8Fns = {
    microAvx512VnniInt8<1>, microAvx512VnniInt8<2>,
    microAvx512VnniInt8<3>, microAvx512VnniInt8<4>,
    microAvx512VnniInt8<5>, microAvx512VnniInt8<6>};
#else
#define DLRMOPT_GEMM_HAVE_VNNI 0
#endif

/** Per-level u8·s8 kernel family. @c vnni selects the
 *  quad-interleaved panel layout in the driver. */
struct MicroSetInt8
{
    const MicroFnInt8 *fns;
    std::size_t maxMr;
    bool vnni = false;
};

MicroSetInt8
microSetForInt8(SimdLevel level)
{
#if DLRMOPT_GEMM_HAVE_VNNI
    // Runtime-gated: compiled in whenever the build targets VNNI, but
    // dispatched only when the host exposes it (and tests haven't
    // forced the widening path via setVnniEnabled(false)).
    if (level == SimdLevel::Avx512 && vnniEnabled())
        return {kAvx512VnniInt8Fns.data(), kAvx512VnniInt8Fns.size(),
                true};
#endif
#if DLRMOPT_GEMM_HAVE_AVX512 && DLRMOPT_GEMM_HAVE_AVX2
    if (level == SimdLevel::Avx512)
        return {kAvx512Int8Fns.data(), kAvx512Int8Fns.size()};
#endif
#if DLRMOPT_GEMM_HAVE_AVX2
    if (level != SimdLevel::Scalar)
        return {kAvx2Int8Fns.data(), kAvx2Int8Fns.size()};
#endif
    (void)level;
    return {kScalarInt8Fns.data(), kScalarInt8Fns.size()};
}

/**
 * u8·s8 driver: panels outer, microtiles inner. No k loop — each
 * microtile runs the full (padded) depth out of registers.
 */
void
runPackedInt8(const std::uint8_t *qa, std::size_t batch,
              const PackedWeightsInt8& w, const float *bias, float *out,
              bool relu, float ascale, float amin, GemmTile tile,
              const MicroSetInt8& ms)
{
    const std::size_t N = w.outDim();
    if (batch == 0 || N == 0)
        return;
    std::size_t mr = tile.mr == 0 ? ms.maxMr : tile.mr;
    mr = std::min({mr, ms.maxMr, batch});
    const std::size_t lda = w.paddedK();
    const std::size_t kp = lda / 2;

    for (std::size_t p = 0; p < w.numPanels(); ++p) {
        const std::size_t n0 = p * NR;
        const std::size_t nv = std::min(NR, N - n0);
        const std::int8_t *pb =
            ms.vnni ? w.panelVnni(p) : w.panel(p);
        const float *pbias = bias ? bias + n0 : nullptr;
        const float *cs = w.colScale() + n0;
        const float *cw = w.colWsum() + n0;
        for (std::size_t m0 = 0; m0 < batch; m0 += mr) {
            const std::size_t mm = std::min(mr, batch - m0);
            ms.fns[mm - 1](qa + m0 * lda, lda, pb, kp,
                           out + m0 * N + n0, N, nv, pbias, cs, cw,
                           ascale, amin, relu);
        }
    }
}

/**
 * Packed-GEMM driver: panels outer, k-chunks middle (the active
 * kc x NR panel slice stays cache-resident across the m-tiles that
 * reuse it), microtiles inner. Chunked partial sums round-trip
 * through c exactly (a float store/reload is value-preserving), so
 * the per-element result is independent of kc; the fused epilogue
 * runs only on the final chunk.
 */
void
runPacked(const float *in, std::size_t batch, const PackedWeights& w,
          const float *bias, float *out, bool relu, GemmTile tile,
          const MicroSet& ms, bool trans = false)
{
    const std::size_t K = w.inDim();
    const std::size_t N = w.outDim();
    if (batch == 0 || N == 0)
        return;
    std::size_t mr = tile.mr == 0 ? ms.maxMr : tile.mr;
    mr = std::min({mr, ms.maxMr, batch});
    const std::size_t kc = (tile.kc == 0 || tile.kc > K) ? K : tile.kc;
    // m-major: activation rows stride by the depth. n-major
    // (transposed): feature rows stride by the batch, so the
    // (m0, k0) block starts at column m0 of feature row k0.
    const std::size_t lda = trans ? batch : K;

    for (std::size_t p = 0; p < w.numPanels(); ++p) {
        const std::size_t n0 = p * NR;
        const std::size_t nv = std::min(NR, N - n0);
        const float *pb = w.panel(p);
        const float *pbias = bias ? bias + n0 : nullptr;
        if (K == 0) {
            // Degenerate depth: epilogue only (bias + optional ReLU).
            for (std::size_t m0 = 0; m0 < batch; m0 += mr) {
                const std::size_t mm = std::min(mr, batch - m0);
                ms.fns[mm - 1](in, lda, pb, 0, out + m0 * N + n0, N,
                               nv, pbias, relu, true, true);
            }
            continue;
        }
        for (std::size_t k0 = 0; k0 < K; k0 += kc) {
            const std::size_t kk = std::min(kc, K - k0);
            const bool first = k0 == 0;
            const bool last = k0 + kk == K;
            for (std::size_t m0 = 0; m0 < batch; m0 += mr) {
                const std::size_t mm = std::min(mr, batch - m0);
                const float *ablk = trans ? in + k0 * batch + m0
                                          : in + m0 * K + k0;
                ms.fns[mm - 1](ablk, lda, pb + k0 * NR, kk,
                               out + m0 * N + n0, N, nv, pbias, relu,
                               first, last);
            }
        }
    }
}

} // namespace

PackedWeights::PackedWeights(const float *weights, std::size_t in_dim,
                             std::size_t out_dim)
    : _inDim(in_dim), _outDim(out_dim)
{
    if (weights == nullptr && in_dim * out_dim != 0) {
        throw std::invalid_argument(
            "PackedWeights: null weights for a non-empty shape");
    }
    _data.assign(numPanels() * in_dim * panelWidth, 0.0f);
    for (std::size_t p = 0; p < numPanels(); ++p) {
        const std::size_t n0 = p * panelWidth;
        const std::size_t nv = std::min(panelWidth, out_dim - n0);
        float *dst = _data.data() + p * in_dim * panelWidth;
        for (std::size_t j = 0; j < nv; ++j) {
            const float *src = weights + (n0 + j) * in_dim;
            for (std::size_t k = 0; k < in_dim; ++k)
                dst[k * panelWidth + j] = src[k];
        }
    }
}

PackedWeightsInt8::PackedWeightsInt8(const float *weights,
                                     std::size_t in_dim,
                                     std::size_t out_dim)
    : _inDim(in_dim), _outDim(out_dim),
      _paddedK((in_dim + 3) & ~std::size_t{3})
{
    if (weights == nullptr && in_dim * out_dim != 0) {
        throw std::invalid_argument(
            "PackedWeightsInt8: null weights for a non-empty shape");
    }
    _data.assign(numPanels() * _paddedK * panelWidth, 0);
    _vnni.assign(numPanels() * _paddedK * panelWidth, 0);
    _colScale.assign(numPanels() * panelWidth, 0.0f);
    _colWsum.assign(numPanels() * panelWidth, 0.0f);
    for (std::size_t p = 0; p < numPanels(); ++p) {
        const std::size_t n0 = p * panelWidth;
        const std::size_t nv = std::min(panelWidth, out_dim - n0);
        std::int8_t *dst = _data.data() + p * _paddedK * panelWidth;
        std::int8_t *dstV = _vnni.data() + p * _paddedK * panelWidth;
        for (std::size_t j = 0; j < nv; ++j) {
            const float *src = weights + (n0 + j) * in_dim;
            float maxabs = 0.0f;
            for (std::size_t k = 0; k < in_dim; ++k)
                maxabs = std::fmax(maxabs, std::fabs(src[k]));
            const float sw = maxabs > 0.0f ? maxabs / 127.0f : 1.0f;
            const float inv = 1.0f / sw;
            std::int32_t colsum = 0;
            for (std::size_t k = 0; k < in_dim; ++k) {
                const float q = std::nearbyintf(src[k] * inv);
                const float cl =
                    std::fmin(std::fmax(q, -127.0f), 127.0f);
                const std::int8_t code =
                    static_cast<std::int8_t>(cl);
                dst[(k / 2) * 2 * panelWidth + j * 2 + (k & 1)] = code;
                dstV[(k / 4) * 4 * panelWidth + j * 4 + (k & 3)] = code;
                colsum += code;
            }
            _colScale[n0 + j] = sw;
            _colWsum[n0 + j] = sw * static_cast<float>(colsum);
        }
    }
}

QuantParams
quantizeActivationsInt8(const float *in, std::size_t batch,
                        std::size_t k, std::size_t kp,
                        std::uint8_t *qout)
{
    QuantParams p;
    if (batch == 0)
        return p;
    if (k == 0) {
        std::fill(qout, qout + batch * kp, std::uint8_t{0});
        return p;
    }
    float lo = in[0], hi = in[0];
    for (std::size_t i = 1; i < batch * k; ++i) {
        lo = std::fmin(lo, in[i]);
        hi = std::fmax(hi, in[i]);
    }
    p.bias = lo;
    p.scale = hi > lo ? (hi - lo) / 127.0f : 1.0f;
    const float inv = 1.0f / p.scale;
    for (std::size_t m = 0; m < batch; ++m) {
        const float *src = in + m * k;
        std::uint8_t *dst = qout + m * kp;
        for (std::size_t i = 0; i < k; ++i) {
            const float q = std::nearbyintf((src[i] - lo) * inv);
            const float cl = std::fmin(std::fmax(q, 0.0f), 127.0f);
            dst[i] = static_cast<std::uint8_t>(cl);
        }
        for (std::size_t i = k; i < kp; ++i)
            dst[i] = 0;
    }
    return p;
}

std::size_t
gemmMaxRows(SimdLevel level)
{
    return microSetFor(level).maxMr;
}

GemmTile
defaultGemmTile(std::size_t batch, std::size_t in_dim,
                std::size_t /*out_dim*/, SimdLevel level)
{
    GemmTile t;
    t.mr = std::min(gemmMaxRows(level),
                    std::max<std::size_t>(batch, 1));
    // m = 1 is GEMV-shaped: every panel row is consumed exactly once,
    // so there is no k-reuse to block for — run the full depth.
    // Batched m: chunk k so the active kc x panelWidth panel slice
    // stays L1-resident across the m-tiles that re-stream it.
    t.kc = batch <= 1 ? in_dim
                      : std::min<std::size_t>(in_dim, tileIn);
    return t;
}

GemmTileCache&
GemmTileCache::instance()
{
    static GemmTileCache cache;
    return cache;
}

int
GemmTileCache::bucketOf(std::size_t batch)
{
    if (batch <= 1)
        return 0;
    if (batch <= 4)
        return 1;
    if (batch <= 16)
        return 2;
    if (batch <= 64)
        return 3;
    return 4;
}

std::size_t
GemmTileCache::bucketRepresentative(int bucket)
{
    static constexpr std::size_t reps[numBuckets] = {1, 4, 16, 64, 128};
    if (bucket < 0)
        bucket = 0;
    if (bucket >= numBuckets)
        bucket = numBuckets - 1;
    return reps[bucket];
}

GemmTile
GemmTileCache::lookup(std::size_t batch, std::size_t in_dim,
                      std::size_t out_dim, SimdLevel level,
                      bool trans, EmbDtype dtype) const
{
    const Key key{bucketOf(batch), in_dim, out_dim,
                  static_cast<int>(level), trans ? 1 : 0,
                  static_cast<int>(dtype)};
    {
        std::lock_guard<std::mutex> lock(_mu);
        const auto it = _tiles.find(key);
        if (it != _tiles.end())
            return it->second;
    }
    return defaultGemmTile(batch, in_dim, out_dim, level);
}

bool
GemmTileCache::contains(std::size_t batch, std::size_t in_dim,
                        std::size_t out_dim, SimdLevel level,
                        bool trans, EmbDtype dtype) const
{
    const Key key{bucketOf(batch), in_dim, out_dim,
                  static_cast<int>(level), trans ? 1 : 0,
                  static_cast<int>(dtype)};
    std::lock_guard<std::mutex> lock(_mu);
    return _tiles.count(key) != 0;
}

void
GemmTileCache::install(std::size_t batch, std::size_t in_dim,
                       std::size_t out_dim, SimdLevel level,
                       GemmTile tile, bool trans, EmbDtype dtype)
{
    const Key key{bucketOf(batch), in_dim, out_dim,
                  static_cast<int>(level), trans ? 1 : 0,
                  static_cast<int>(dtype)};
    std::lock_guard<std::mutex> lock(_mu);
    _tiles[key] = tile;
}

std::size_t
GemmTileCache::size() const
{
    std::lock_guard<std::mutex> lock(_mu);
    return _tiles.size();
}

void
GemmTileCache::clear()
{
    std::lock_guard<std::mutex> lock(_mu);
    _tiles.clear();
}

void
denseLayerForwardPacked(const float *in, std::size_t batch,
                        const PackedWeights& w, const float *bias,
                        float *out, bool relu)
{
    const SimdLevel level = currentSimdLevel();
    runPacked(in, batch, w, bias, out, relu,
              GemmTileCache::instance().lookup(batch, w.inDim(),
                                               w.outDim(), level),
              microSetFor(level));
}

void
denseLayerForwardPackedLevel(SimdLevel level, const float *in,
                             std::size_t batch, const PackedWeights& w,
                             const float *bias, float *out, bool relu,
                             const GemmTile& tile)
{
    runPacked(in, batch, w, bias, out, relu, tile, microSetFor(level));
}

void
denseLayerForwardPackedTrans(const float *in_t, std::size_t batch,
                             const PackedWeights& w, const float *bias,
                             float *out, bool relu)
{
    const SimdLevel level = currentSimdLevel();
    runPacked(in_t, batch, w, bias, out, relu,
              GemmTileCache::instance().lookup(batch, w.inDim(),
                                               w.outDim(), level,
                                               /*trans=*/true),
              microSetFor(level, /*trans=*/true), /*trans=*/true);
}

void
denseLayerForwardPackedTransLevel(SimdLevel level, const float *in_t,
                                  std::size_t batch,
                                  const PackedWeights& w,
                                  const float *bias, float *out,
                                  bool relu, const GemmTile& tile)
{
    runPacked(in_t, batch, w, bias, out, relu, tile,
              microSetFor(level, /*trans=*/true), /*trans=*/true);
}

void
denseLayerForwardPackedInt8(const std::uint8_t *qin, std::size_t batch,
                            const PackedWeightsInt8& w,
                            const float *bias, float *out, bool relu,
                            float ascale, float amin)
{
    const SimdLevel level = currentSimdLevel();
    runPackedInt8(qin, batch, w, bias, out, relu, ascale, amin,
                  GemmTileCache::instance().lookup(
                      batch, w.inDim(), w.outDim(), level,
                      /*trans=*/false, EmbDtype::Int8),
                  microSetForInt8(level));
}

void
denseLayerForwardPackedInt8Level(SimdLevel level, const std::uint8_t *qin,
                                 std::size_t batch,
                                 const PackedWeightsInt8& w,
                                 const float *bias, float *out,
                                 bool relu, float ascale, float amin,
                                 const GemmTile& tile)
{
    runPackedInt8(qin, batch, w, bias, out, relu, ascale, amin, tile,
                  microSetForInt8(level));
}

void
denseLayerForwardInt8(const float *in, std::size_t batch,
                      const PackedWeightsInt8& w, const float *bias,
                      float *out, bool relu,
                      std::vector<std::uint8_t>& qscratch)
{
    qscratch.resize(batch * w.paddedK());
    const QuantParams qp = quantizeActivationsInt8(
        in, batch, w.inDim(), w.paddedK(), qscratch.data());
    denseLayerForwardPackedInt8(qscratch.data(), batch, w, bias, out,
                                relu, qp.scale, qp.bias);
}

void
denseLayerForward(const float *in, std::size_t batch, std::size_t in_dim,
                  const float *weights, const float *bias,
                  std::size_t out_dim, float *out, bool relu)
{
    // Degenerate shapes: nothing to write (and no bias-init pass to
    // run) when the output block is empty.
    if (batch == 0 || out_dim == 0)
        return;

    // Initialize outputs with the bias (or zero).
    for (std::size_t b = 0; b < batch; ++b) {
        float *o = out + b * out_dim;
        if (bias) {
            std::copy(bias, bias + out_dim, o);
        } else {
            std::fill(o, o + out_dim, 0.0f);
        }
    }

    for (std::size_t k0 = 0; k0 < in_dim; k0 += tileIn) {
        const std::size_t k1 = std::min(in_dim, k0 + tileIn);
        for (std::size_t n0 = 0; n0 < out_dim; n0 += tileOut) {
            const std::size_t n1 = std::min(out_dim, n0 + tileOut);
            for (std::size_t b = 0; b < batch; ++b) {
                const float *x = in + b * in_dim;
                float *o = out + b * out_dim;
                for (std::size_t n = n0; n < n1; ++n) {
                    const float *w = weights + n * in_dim;
                    float acc = 0.0f;
                    for (std::size_t k = k0; k < k1; ++k)
                        acc += x[k] * w[k];
                    o[n] += acc;
                }
            }
        }
    }

    if (relu) {
        for (std::size_t i = 0; i < batch * out_dim; ++i)
            out[i] = std::max(out[i], 0.0f);
    }
}

void
denseLayerForwardRef(const float *in, std::size_t batch, std::size_t in_dim,
                     const float *weights, const float *bias,
                     std::size_t out_dim, float *out, bool relu)
{
    for (std::size_t b = 0; b < batch; ++b) {
        for (std::size_t n = 0; n < out_dim; ++n) {
            double acc = bias ? bias[n] : 0.0;
            for (std::size_t k = 0; k < in_dim; ++k)
                acc += static_cast<double>(in[b * in_dim + k]) *
                       weights[n * in_dim + k];
            float v = static_cast<float>(acc);
            out[b * out_dim + n] = relu ? std::max(v, 0.0f) : v;
        }
    }
}

void
sigmoidInplace(float *data, std::size_t n)
{
    switch (currentSimdLevel()) {
      case SimdLevel::Avx512:
        sigmoidInplaceAvx512(data, n);
        return;
      case SimdLevel::Avx2:
        sigmoidInplaceAvx2(data, n);
        return;
      default:
        sigmoidInplaceScalar(data, n);
        return;
    }
}

} // namespace dlrmopt::core
