#include "core/batching.hpp"

#include <cassert>
#include <cstring>
#include <functional>
#include <stdexcept>
#include <string>

#include "core/errors.hpp"
#include "core/gemm.hpp"

namespace dlrmopt::core
{

namespace
{

/** Combines one address into a running fingerprint hash. */
void
hashPtr(std::size_t& h, const void *p)
{
    h ^= std::hash<const void *>{}(p) + 0x9e3779b97f4a7c15ULL +
         (h << 6) + (h >> 2);
}

} // namespace

const SparseBatch&
concatSparseBatches(const std::vector<const SparseBatch *>& parts,
                    SparseBatch& scratch)
{
    if (parts.empty())
        throw IndexError("concatSparseBatches: empty part list");
    const std::size_t tables = parts.front()->numTables();
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (parts[i]->numTables() != tables) {
            throw IndexError(
                "concatSparseBatches: part " + std::to_string(i) +
                " has " + std::to_string(parts[i]->numTables()) +
                " tables, expected " + std::to_string(tables));
        }
        if (parts[i]->offsets.size() != tables) {
            throw IndexError(
                "concatSparseBatches: part " + std::to_string(i) +
                " has mismatched offsets/indices table counts");
        }
    }
    if (parts.size() == 1)
        return *parts.front();

    std::size_t total = 0;
    for (const SparseBatch *p : parts)
        total += p->batchSize;

    scratch.batchSize = total;
    scratch.indices.resize(tables);
    scratch.offsets.resize(tables);
    for (std::size_t t = 0; t < tables; ++t) {
        auto& idx = scratch.indices[t];
        auto& off = scratch.offsets[t];
        idx.clear();
        off.clear();
        off.push_back(0);
        RowIndex base = 0;
        for (const SparseBatch *p : parts) {
            const auto& pidx = p->indices[t];
            const auto& poff = p->offsets[t];
            assert(poff.size() == p->batchSize + 1);
            idx.insert(idx.end(), pidx.begin(), pidx.end());
            for (std::size_t i = 1; i < poff.size(); ++i)
                off.push_back(base + poff[i]);
            base += poff.back();
        }
    }
    return scratch;
}

void
splitPredictions(const Tensor& pred,
                 const std::vector<std::size_t>& batch_sizes,
                 std::vector<PredictionSpan>& out)
{
    std::size_t total = 0;
    for (std::size_t b : batch_sizes)
        total += b;
    if (pred.rows() != total) {
        throw IndexError(
            "splitPredictions: prediction tensor has " +
            std::to_string(pred.rows()) + " rows, member batches sum to " +
            std::to_string(total));
    }
    out.resize(batch_sizes.size());
    std::size_t start = 0;
    for (std::size_t i = 0; i < batch_sizes.size(); ++i) {
        out[i].data = pred.row(start);
        out[i].batch = batch_sizes[i];
        start += batch_sizes[i];
    }
}

void
ForwardWorkspace::reserve(const DlrmModel& model, std::size_t max_batch,
                          std::size_t max_lookups)
{
    if (max_batch == 0) {
        throw std::invalid_argument(
            "ForwardWorkspace::reserve: max_batch must be positive");
    }
    const ModelConfig& cfg = model.config();
    _maxBatch = max_batch;
    _gatherNext = 0;
    _lastCompute = 0;

    // Widest activation either MLP ever stages through the ping-pong
    // scratch (hidden layers only; the final layer writes the output
    // tensor directly).
    std::size_t widest = 1;
    for (const Mlp *mlp : {&model.bottomMlp(), &model.topMlp()}) {
        const auto& dims = mlp->dims();
        for (std::size_t l = 1; l + 1 < dims.size(); ++l)
            widest = std::max(widest, dims[l]);
    }

    for (StageBuffers& s : _sets) {
        s.batch = 0;
        s.dense.reshape(max_batch, cfg.denseDim());
        s.embOut.reshape(cfg.tables, max_batch * cfg.dim);
        s.bottomOut.reshape(max_batch, cfg.dim);
        s.interOut.reshape(max_batch, cfg.topInputDim());
        s.interOutT.reshape(cfg.topInputDim(), max_batch);
        s.pred.reshape(max_batch, 1);
        s.mlpA.reshape(max_batch, widest);
        s.mlpB.reshape(max_batch, widest);
        // Int8 activation staging: the widest quantized layer input
        // across both MLPs (paddedK is per-layer; the buffer is
        // resized down per call without reallocating).
        const std::size_t max_padded_k =
            std::max(model.bottomMlp().maxPaddedK(),
                     model.topMlp().maxPaddedK());
        s.qact.reserve(max_batch * max_padded_k);
        s.embPtrs.reserve(cfg.tables);
        s.concat.indices.resize(cfg.tables);
        s.concat.offsets.resize(cfg.tables);
        for (std::size_t t = 0; t < cfg.tables; ++t) {
            s.concat.indices[t].reserve(max_batch * max_lookups);
            s.concat.offsets[t].reserve(max_batch + 1);
        }
    }
}

const Tensor&
ForwardWorkspace::forward(const DlrmModel& model, const Tensor& dense,
                          const SparseBatch& sparse,
                          const PrefetchSpec& pf, EmbDtype dtype,
                          HotTierCache *tier)
{
    assert(sparse.batchSize <= _maxBatch);
    StageBuffers& s = _sets[0];
    if (dtype == EmbDtype::Int8) {
        model.bottomMlp().forwardInt8(dense, s.bottomOut, s.mlpA,
                                      s.mlpB, s.qact);
    } else {
        model.bottomMlp().forward(dense, s.bottomOut, s.mlpA, s.mlpB);
    }
    model.embeddingForward(sparse, s.embOut, pf, dtype, tier);
    model.interactionForward(s.bottomOut, s.embOut, sparse.batchSize,
                             s.interOut, s.embPtrs);
    if (dtype == EmbDtype::Int8) {
        model.topMlp().forwardInt8(s.interOut, s.pred, s.mlpA, s.mlpB,
                                   s.qact);
    } else {
        model.topMlp().forward(s.interOut, s.pred, s.mlpA, s.mlpB);
    }
    sigmoidInplace(s.pred.data(), s.pred.size());
    _lastCompute = 0;
    return s.pred;
}

const SparseBatch&
ForwardWorkspace::coalesceInto(
    std::size_t set, const std::vector<const SparseBatch *>& parts,
    const std::vector<const Tensor *>& dense_parts)
{
    if (parts.size() != dense_parts.size()) {
        throw IndexError(
            "ForwardWorkspace::coalesce: need one dense block per "
            "sparse part");
    }
    StageBuffers& s = _sets[set];
    const SparseBatch& merged = concatSparseBatches(parts, s.concat);

    const std::size_t dense_dim =
        dense_parts.empty() ? 0 : dense_parts.front()->cols();
    s.dense.reshape(merged.batchSize, dense_dim);
    std::size_t row = 0;
    for (const Tensor *d : dense_parts) {
        std::memcpy(s.dense.row(row), d->data(),
                    d->size() * sizeof(float));
        row += d->rows();
    }
    return merged;
}

const SparseBatch&
ForwardWorkspace::coalesce(const std::vector<const SparseBatch *>& parts,
                           const std::vector<const Tensor *>& dense_parts)
{
    return coalesceInto(0, parts, dense_parts);
}

std::size_t
ForwardWorkspace::stageGather(
    const DlrmModel& model, const std::vector<const SparseBatch *>& parts,
    const std::vector<const Tensor *>& dense_parts,
    const PrefetchSpec& pf, EmbDtype dtype, HotTierCache *tier)
{
    const std::size_t set = _gatherNext;
    StageBuffers& s = _sets[set];
    const SparseBatch& merged = coalesceInto(set, parts, dense_parts);
    assert(merged.batchSize <= _maxBatch);
    model.embeddingForward(merged, s.embOut, pf, dtype, tier);
    s.batch = merged.batchSize;
    _gatherNext = (_gatherNext + 1) % numSets;
    return set;
}

const Tensor&
ForwardWorkspace::stageCompute(const DlrmModel& model, std::size_t set)
{
    StageBuffers& s = _sets[set];
    model.bottomMlp().forward(s.dense, s.bottomOut, s.mlpA, s.mlpB);
    model.interactionForwardTransposed(s.bottomOut, s.embOut, s.batch,
                                       s.interOutT, s.embPtrs);
    model.topMlp().forwardFromTransposed(s.interOutT, s.pred, s.mlpA,
                                         s.mlpB);
    sigmoidInplace(s.pred.data(), s.pred.size());
    _lastCompute = set;
    return s.pred;
}

std::size_t
ForwardWorkspace::bufferFingerprint() const
{
    std::size_t h = 0;
    for (const StageBuffers& s : _sets) {
        hashPtr(h, s.bottomOut.data());
        hashPtr(h, s.embOut.data());
        hashPtr(h, s.interOut.data());
        hashPtr(h, s.interOutT.data());
        hashPtr(h, s.pred.data());
        hashPtr(h, s.mlpA.data());
        hashPtr(h, s.mlpB.data());
        hashPtr(h, s.qact.data());
        hashPtr(h, s.dense.data());
        hashPtr(h, s.embPtrs.data());
        for (const auto& v : s.concat.indices)
            hashPtr(h, v.data());
        for (const auto& v : s.concat.offsets)
            hashPtr(h, v.data());
    }
    return h;
}

} // namespace dlrmopt::core
