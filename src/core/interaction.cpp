#include "core/interaction.hpp"

namespace dlrmopt::core
{

namespace
{

/** Dot product of two dim-length vectors. */
inline float
dot(const float *a, const float *b, std::size_t dim)
{
    float acc = 0.0f;
    for (std::size_t d = 0; d < dim; ++d)
        acc += a[d] * b[d];
    return acc;
}

} // namespace

void
dotInteraction(const float *bottom, const std::vector<const float *>& emb,
               std::size_t num_tables, std::size_t batch, std::size_t dim,
               float *out)
{
    const std::size_t out_dim = interactionOutputDim(num_tables, dim);

    for (std::size_t b = 0; b < batch; ++b) {
        float *o = out + b * out_dim;
        const float *bot = bottom + b * dim;

        // Passthrough of the dense features.
        for (std::size_t d = 0; d < dim; ++d)
            o[d] = bot[d];

        // Lower-triangular pairwise dots among the T+1 vectors
        // {bottom, emb[0], ..., emb[T-1]}, excluding self-pairs.
        std::size_t k = dim;
        for (std::size_t i = 0; i < num_tables; ++i) {
            const float *vi = emb[i] + b * dim;
            o[k++] = dot(vi, bot, dim);
            for (std::size_t j = 0; j < i; ++j) {
                const float *vj = emb[j] + b * dim;
                o[k++] = dot(vi, vj, dim);
            }
        }
    }
}

void
dotInteractionTransposed(const float *bottom,
                         const std::vector<const float *>& emb,
                         std::size_t num_tables, std::size_t batch,
                         std::size_t dim, float *out_t)
{
    for (std::size_t b = 0; b < batch; ++b) {
        const float *bot = bottom + b * dim;

        // Passthrough of the dense features, scattered feature-major.
        for (std::size_t d = 0; d < dim; ++d)
            out_t[d * batch + b] = bot[d];

        // Identical lower-triangular dot chain as dotInteraction;
        // only the store address is transposed.
        std::size_t k = dim;
        for (std::size_t i = 0; i < num_tables; ++i) {
            const float *vi = emb[i] + b * dim;
            out_t[k++ * batch + b] = dot(vi, bot, dim);
            for (std::size_t j = 0; j < i; ++j) {
                const float *vj = emb[j] + b * dim;
                out_t[k++ * batch + b] = dot(vi, vj, dim);
            }
        }
    }
}

} // namespace dlrmopt::core
