#include "core/autotune.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <tuple>

#include "core/tensor.hpp"

namespace dlrmopt::core
{

namespace
{

using Clock = std::chrono::steady_clock;

double
timeBagMs(const EmbeddingTable& table, const RowIndex *indices,
          const RowIndex *offsets, std::size_t samples,
          const PrefetchSpec& spec, int repeats,
          std::vector<float>& out)
{
    double best = 1e300;
    for (int r = 0; r < repeats; ++r) {
        const auto t0 = Clock::now();
        table.bag(indices, offsets, samples, out.data(), spec);
        const double ms =
            std::chrono::duration<double, std::milli>(Clock::now() -
                                                      t0)
                .count();
        best = std::min(best, ms);
    }
    return best;
}

} // namespace

std::vector<PrefetchSpec>
defaultTuneGrid(std::size_t row_lines)
{
    std::vector<PrefetchSpec> grid;
    const int full = static_cast<int>(row_lines);
    for (int dist : {1, 2, 4, 8, 16}) {
        for (int lines : {2, 4, full}) {
            if (lines <= full)
                grid.push_back(PrefetchSpec{dist, lines, 3});
        }
    }
    // Deduplicate (e.g. when full == 2 or 4).
    std::sort(grid.begin(), grid.end(),
              [](const PrefetchSpec& a, const PrefetchSpec& b) {
                  return std::tie(a.distance, a.lines, a.locality) <
                         std::tie(b.distance, b.lines, b.locality);
              });
    grid.erase(std::unique(grid.begin(), grid.end(),
                           [](const PrefetchSpec& a,
                              const PrefetchSpec& b) {
                               return a.distance == b.distance &&
                                      a.lines == b.lines &&
                                      a.locality == b.locality;
                           }),
               grid.end());
    return grid;
}

TuneResult
tunePrefetch(const EmbeddingTable& table, const RowIndex *indices,
             const RowIndex *offsets, std::size_t samples,
             std::vector<PrefetchSpec> candidates, int repeats)
{
    if (candidates.empty()) {
        const std::size_t row_lines =
            (table.dim() * sizeof(float) + 63) / 64;
        candidates = defaultTuneGrid(row_lines);
    }
    // User-supplied candidates must fail loudly, not silently tune a
    // disabled or hint-degraded spec.
    for (const PrefetchSpec& spec : candidates)
        spec.validate();
    repeats = std::max(repeats, 1);

    std::vector<float> out(samples * table.dim());

    TuneResult res;
    // Warm the table's hot rows once so every candidate sees the
    // same cache state, then measure the baseline.
    table.bag(indices, offsets, samples, out.data(), {});
    res.baselineMs = timeBagMs(table, indices, offsets, samples, {},
                               repeats, out);
    res.best = PrefetchSpec{};
    res.bestMs = res.baselineMs;

    for (const PrefetchSpec& spec : candidates) {
        const double ms = timeBagMs(table, indices, offsets, samples,
                                    spec, repeats, out);
        res.measurements.push_back({spec, ms});
        if (ms < res.bestMs) {
            res.bestMs = ms;
            res.best = spec;
        }
    }
    return res;
}

namespace
{

/** Best-of-repeats time of one packed dense-layer call. */
double
timePackedMs(const float *in, std::size_t batch, const PackedWeights& w,
             const float *bias, float *out, const GemmTile& tile,
             SimdLevel level, int repeats, bool trans)
{
    double best = 1e300;
    for (int r = 0; r < repeats; ++r) {
        const auto t0 = Clock::now();
        if (trans) {
            denseLayerForwardPackedTransLevel(level, in, batch, w,
                                              bias, out, true, tile);
        } else {
            denseLayerForwardPackedLevel(level, in, batch, w, bias,
                                         out, true, tile);
        }
        const double ms =
            std::chrono::duration<double, std::milli>(Clock::now() -
                                                      t0)
                .count();
        best = std::min(best, ms);
    }
    return best;
}

/** Best-of-repeats time of one u8·s8 packed dense-layer call. */
double
timePackedInt8Ms(const std::uint8_t *qin, std::size_t batch,
                 const PackedWeightsInt8& w, const float *bias,
                 float *out, float ascale, float amin,
                 const GemmTile& tile, SimdLevel level, int repeats)
{
    double best = 1e300;
    for (int r = 0; r < repeats; ++r) {
        const auto t0 = Clock::now();
        denseLayerForwardPackedInt8Level(level, qin, batch, w, bias,
                                         out, true, ascale, amin,
                                         tile);
        const double ms =
            std::chrono::duration<double, std::milli>(Clock::now() -
                                                      t0)
                .count();
        best = std::min(best, ms);
    }
    return best;
}

} // namespace

std::vector<GemmTile>
defaultGemmTileGrid(std::size_t batch, std::size_t in_dim,
                    SimdLevel level)
{
    const std::size_t max_mr = gemmMaxRows(level);
    std::vector<std::size_t> mrs;
    for (std::size_t mr : {std::size_t(1), std::size_t(2),
                           std::size_t(4), max_mr}) {
        if (mr <= max_mr && mr <= std::max<std::size_t>(batch, 1))
            mrs.push_back(mr);
    }
    std::vector<std::size_t> kcs;
    for (std::size_t kc :
         {std::size_t(64), std::size_t(256), std::size_t(1024),
          in_dim}) {
        if (kc > 0 && kc <= std::max<std::size_t>(in_dim, 1))
            kcs.push_back(std::min(kc, std::max<std::size_t>(in_dim,
                                                             1)));
    }
    if (kcs.empty())
        kcs.push_back(std::max<std::size_t>(in_dim, 1));

    std::vector<GemmTile> grid;
    for (std::size_t mr : mrs)
        for (std::size_t kc : kcs)
            grid.push_back(GemmTile{mr, kc});
    // Make sure the dispatch default is always in the running.
    grid.push_back(defaultGemmTile(batch, in_dim, 0, level));

    std::sort(grid.begin(), grid.end(),
              [](const GemmTile& a, const GemmTile& b) {
                  return std::tie(a.mr, a.kc) < std::tie(b.mr, b.kc);
              });
    grid.erase(std::unique(grid.begin(), grid.end()), grid.end());
    return grid;
}

GemmTuneResult
tuneGemmTile(std::size_t batch, std::size_t in_dim, std::size_t out_dim,
             std::vector<GemmTile> candidates, int repeats,
             std::uint64_t seed, bool trans, EmbDtype dtype)
{
    if (batch == 0 || out_dim == 0) {
        throw std::invalid_argument(
            "tuneGemmTile: batch and out_dim must be >= 1");
    }
    if (dtype == EmbDtype::Bf16) {
        throw std::invalid_argument(
            "tuneGemmTile: bf16 is an embedding-storage format; the "
            "MLPs run the fp32 engine for it — tune fp32 or int8");
    }
    if (trans && dtype == EmbDtype::Int8) {
        throw std::invalid_argument(
            "tuneGemmTile: the u8·s8 engine has no n-major "
            "(transposed-activation) variant");
    }
    const SimdLevel level = currentSimdLevel();
    if (candidates.empty()) {
        if (dtype == EmbDtype::Int8) {
            // The int8 driver keeps the full depth in registers (kc
            // is ignored), so candidates differ only in microtile
            // height; oversize mr is clamped by the driver.
            for (std::size_t mr : {std::size_t(1), std::size_t(2),
                                   std::size_t(4), std::size_t(6)}) {
                if (mr <= std::max<std::size_t>(batch, 1) || mr == 1)
                    candidates.push_back(
                        GemmTile{mr, std::max<std::size_t>(in_dim, 1)});
            }
            candidates.push_back(GemmTile{}); // driver default
        } else {
            candidates = defaultGemmTileGrid(batch, in_dim, level);
        }
    }
    repeats = std::max(repeats, 1);

    // Trans activations are feature-major [in_dim x batch]; same
    // element count, so the blocked-baseline timing below (which is
    // layout-agnostic for measurement purposes) reads it untransposed.
    Tensor in(trans ? std::max<std::size_t>(in_dim, 1) : batch,
              trans ? batch : std::max<std::size_t>(in_dim, 1));
    in.randomize(mix64(seed), 0.5f);
    Tensor weights(out_dim, std::max<std::size_t>(in_dim, 1));
    weights.randomize(mix64(seed + 1), 0.1f);
    std::vector<float> bias(out_dim, 0.01f);
    std::vector<float> out(batch * out_dim);
    const PackedWeights packed(weights.data(), in_dim, out_dim);

    GemmTuneResult res;
    res.batch = batch;
    res.inDim = in_dim;
    res.outDim = out_dim;
    res.level = level;
    res.trans = trans;
    res.dtype = dtype;

    // Warm caches once, then time the scalar blocked baseline the
    // packed engine replaced.
    denseLayerForward(in.data(), batch, in_dim, weights.data(),
                      bias.data(), out_dim, out.data(), true);
    {
        double best = 1e300;
        for (int r = 0; r < repeats; ++r) {
            const auto t0 = Clock::now();
            denseLayerForward(in.data(), batch, in_dim, weights.data(),
                              bias.data(), out_dim, out.data(), true);
            best = std::min(
                best, std::chrono::duration<double, std::milli>(
                          Clock::now() - t0)
                          .count());
        }
        res.baselineMs = best;
    }

    res.bestMs = 1e300;
    if (dtype == EmbDtype::Int8) {
        // Quantize once up front: the cost is per-dispatch in the real
        // forward, identical for every candidate tile.
        const PackedWeightsInt8 qpacked(weights.data(), in_dim,
                                        out_dim);
        std::vector<std::uint8_t> qin(batch * qpacked.paddedK());
        const QuantParams qp = quantizeActivationsInt8(
            in.data(), batch, in_dim, qpacked.paddedK(), qin.data());
        for (const GemmTile& tile : candidates) {
            const double ms = timePackedInt8Ms(
                qin.data(), batch, qpacked, bias.data(), out.data(),
                qp.scale, qp.bias, tile, level, repeats);
            res.measurements.push_back({tile, ms});
            if (ms < res.bestMs) {
                res.bestMs = ms;
                res.best = tile;
            }
        }
    } else {
        for (const GemmTile& tile : candidates) {
            const double ms =
                timePackedMs(in.data(), batch, packed, bias.data(),
                             out.data(), tile, level, repeats, trans);
            res.measurements.push_back({tile, ms});
            if (ms < res.bestMs) {
                res.bestMs = ms;
                res.best = tile;
            }
        }
    }

    GemmTileCache::instance().install(batch, in_dim, out_dim, level,
                                      res.best, trans, dtype);
    return res;
}

std::vector<GemmTuneResult>
tuneMlpGemm(const std::vector<std::size_t>& dims,
            std::vector<std::size_t> batches, int repeats,
            std::uint64_t seed, EmbDtype dtype)
{
    if (dims.size() < 2) {
        throw std::invalid_argument(
            "tuneMlpGemm: need at least input + one layer");
    }
    if (batches.empty()) {
        for (int b = 0; b < GemmTileCache::numBuckets; ++b)
            batches.push_back(GemmTileCache::bucketRepresentative(b));
    }
    std::vector<GemmTuneResult> results;
    for (const std::size_t m : batches) {
        for (std::size_t l = 0; l + 1 < dims.size(); ++l) {
            results.push_back(tuneGemmTile(m, dims[l], dims[l + 1], {},
                                           repeats, seed + l,
                                           /*trans=*/false, dtype));
        }
        // The first layer is the one the streaming pipeline feeds
        // feature-major (interaction output without a repack), so
        // also tune its n-major engine slot. The pipeline (and thus
        // the n-major engine) is fp32-only.
        if (dtype != EmbDtype::Int8) {
            results.push_back(tuneGemmTile(m, dims[0], dims[1], {},
                                           repeats,
                                           seed + dims.size(),
                                           /*trans=*/true));
        }
    }
    return results;
}

} // namespace dlrmopt::core
