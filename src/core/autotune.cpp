#include "core/autotune.hpp"

#include <algorithm>
#include <chrono>
#include <tuple>

namespace dlrmopt::core
{

namespace
{

using Clock = std::chrono::steady_clock;

double
timeBagMs(const EmbeddingTable& table, const RowIndex *indices,
          const RowIndex *offsets, std::size_t samples,
          const PrefetchSpec& spec, int repeats,
          std::vector<float>& out)
{
    double best = 1e300;
    for (int r = 0; r < repeats; ++r) {
        const auto t0 = Clock::now();
        table.bag(indices, offsets, samples, out.data(), spec);
        const double ms =
            std::chrono::duration<double, std::milli>(Clock::now() -
                                                      t0)
                .count();
        best = std::min(best, ms);
    }
    return best;
}

} // namespace

std::vector<PrefetchSpec>
defaultTuneGrid(std::size_t row_lines)
{
    std::vector<PrefetchSpec> grid;
    const int full = static_cast<int>(row_lines);
    for (int dist : {1, 2, 4, 8, 16}) {
        for (int lines : {2, 4, full}) {
            if (lines <= full)
                grid.push_back(PrefetchSpec{dist, lines, 3});
        }
    }
    // Deduplicate (e.g. when full == 2 or 4).
    std::sort(grid.begin(), grid.end(),
              [](const PrefetchSpec& a, const PrefetchSpec& b) {
                  return std::tie(a.distance, a.lines, a.locality) <
                         std::tie(b.distance, b.lines, b.locality);
              });
    grid.erase(std::unique(grid.begin(), grid.end(),
                           [](const PrefetchSpec& a,
                              const PrefetchSpec& b) {
                               return a.distance == b.distance &&
                                      a.lines == b.lines &&
                                      a.locality == b.locality;
                           }),
               grid.end());
    return grid;
}

TuneResult
tunePrefetch(const EmbeddingTable& table, const RowIndex *indices,
             const RowIndex *offsets, std::size_t samples,
             std::vector<PrefetchSpec> candidates, int repeats)
{
    if (candidates.empty()) {
        const std::size_t row_lines =
            (table.dim() * sizeof(float) + 63) / 64;
        candidates = defaultTuneGrid(row_lines);
    }
    // User-supplied candidates must fail loudly, not silently tune a
    // disabled or hint-degraded spec.
    for (const PrefetchSpec& spec : candidates)
        spec.validate();
    repeats = std::max(repeats, 1);

    std::vector<float> out(samples * table.dim());

    TuneResult res;
    // Warm the table's hot rows once so every candidate sees the
    // same cache state, then measure the baseline.
    table.bag(indices, offsets, samples, out.data(), {});
    res.baselineMs = timeBagMs(table, indices, offsets, samples, {},
                               repeats, out);
    res.best = PrefetchSpec{};
    res.bestMs = res.baselineMs;

    for (const PrefetchSpec& spec : candidates) {
        const double ms = timeBagMs(table, indices, offsets, samples,
                                    spec, repeats, out);
        res.measurements.push_back({spec, ms});
        if (ms < res.bestMs) {
            res.bestMs = ms;
            res.best = spec;
        }
    }
    return res;
}

} // namespace dlrmopt::core
