#include "core/quant.hpp"

#include <cmath>
#include <stdexcept>

namespace dlrmopt::core
{

std::string
embDtypeName(EmbDtype dtype)
{
    switch (dtype) {
      case EmbDtype::Fp32:
        return "fp32";
      case EmbDtype::Bf16:
        return "bf16";
      case EmbDtype::Int8:
        return "int8";
    }
    return "unknown";
}

EmbDtype
parseEmbDtype(const std::string& name)
{
    if (name == "fp32")
        return EmbDtype::Fp32;
    if (name == "bf16")
        return EmbDtype::Bf16;
    if (name == "int8")
        return EmbDtype::Int8;
    throw std::invalid_argument(
        "unknown dtype '" + name + "' (expected fp32, bf16, or int8)");
}

std::size_t
embDtypeBits(EmbDtype dtype)
{
    switch (dtype) {
      case EmbDtype::Bf16:
        return 16;
      case EmbDtype::Int8:
        return 8;
      default:
        return 32;
    }
}

QuantParams
quantizeBlockInt8(const float *src, std::size_t n, std::uint8_t *dst,
                  int qmax)
{
    QuantParams p;
    if (n == 0)
        return p;
    float lo = src[0], hi = src[0];
    for (std::size_t i = 1; i < n; ++i) {
        lo = std::fmin(lo, src[i]);
        hi = std::fmax(hi, src[i]);
    }
    p.bias = lo;
    p.scale = hi > lo ? (hi - lo) / static_cast<float>(qmax) : 1.0f;
    const float inv = 1.0f / p.scale;
    for (std::size_t i = 0; i < n; ++i) {
        const float q = std::nearbyintf((src[i] - p.bias) * inv);
        const float c = std::fmin(std::fmax(q, 0.0f),
                                  static_cast<float>(qmax));
        dst[i] = static_cast<std::uint8_t>(c);
    }
    return p;
}

} // namespace dlrmopt::core
