/**
 * @file
 * Sparse-feature input layout for one inference batch.
 *
 * Mirrors PyTorch's embedding_bag input convention (Fig. 3 of the
 * paper): per table, an offsets array of length batch_size + 1 and a
 * flat indices array; sample i's lookups for table t are
 * indices[t][offsets[t][i] .. offsets[t][i+1]).
 */

#ifndef DLRMOPT_CORE_SPARSE_INPUT_HPP
#define DLRMOPT_CORE_SPARSE_INPUT_HPP

#include <algorithm>
#include <cstddef>
#include <vector>

#include "core/types.hpp"

namespace dlrmopt::core
{

/**
 * Sparse lookups for one batch across all embedding tables.
 */
struct SparseBatch
{
    std::size_t batchSize = 0;

    /** indices[t] is the flat lookup-index array for table t. */
    std::vector<std::vector<RowIndex>> indices;

    /** offsets[t] has batchSize + 1 entries delimiting each sample. */
    std::vector<std::vector<RowIndex>> offsets;

    std::size_t numTables() const { return indices.size(); }

    /** Total number of lookups across all tables in this batch. */
    std::size_t
    totalLookups() const
    {
        std::size_t n = 0;
        for (const auto& v : indices)
            n += v.size();
        return n;
    }

    /**
     * Copy of this batch keeping only the first @p new_batch samples
     * per table (used by the serving layer's shrink-batch degradation
     * tier). Clamped to the current batch size; keeps at least one
     * sample.
     */
    SparseBatch
    truncated(std::size_t new_batch) const
    {
        const std::size_t n =
            std::min(std::max<std::size_t>(new_batch, 1), batchSize);
        SparseBatch out;
        out.batchSize = n;
        out.indices.resize(numTables());
        out.offsets.resize(numTables());
        for (std::size_t t = 0; t < numTables(); ++t) {
            const auto& off = offsets[t];
            out.offsets[t].assign(off.begin(),
                                  off.begin() +
                                      static_cast<std::ptrdiff_t>(n + 1));
            out.indices[t].assign(
                indices[t].begin(),
                indices[t].begin() +
                    static_cast<std::ptrdiff_t>(out.offsets[t].back()));
        }
        return out;
    }

    /**
     * Structural validity check: matching table counts, offset array
     * shapes, monotone offsets ending at the index-array length, and
     * all indices within [0, rows).
     *
     * @param rows Number of rows per embedding table.
     * @retval true when the batch is well-formed.
     */
    bool
    valid(std::size_t rows) const
    {
        if (offsets.size() != indices.size())
            return false;
        for (std::size_t t = 0; t < indices.size(); ++t) {
            const auto& off = offsets[t];
            if (off.size() != batchSize + 1 || off.front() != 0)
                return false;
            if (static_cast<std::size_t>(off.back()) != indices[t].size())
                return false;
            for (std::size_t i = 0; i + 1 < off.size(); ++i) {
                if (off[i] > off[i + 1])
                    return false;
            }
            for (RowIndex idx : indices[t]) {
                if (idx < 0 || static_cast<std::size_t>(idx) >= rows)
                    return false;
            }
        }
        return true;
    }
};

} // namespace dlrmopt::core

#endif // DLRMOPT_CORE_SPARSE_INPUT_HPP
