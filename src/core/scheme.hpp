/**
 * @file
 * The six execution design points evaluated in Sec. 6 of the paper.
 */

#ifndef DLRMOPT_CORE_SCHEME_HPP
#define DLRMOPT_CORE_SCHEME_HPP

#include <array>
#include <string>

namespace dlrmopt::core
{

/**
 * Execution scheme for DLRM inference (Sec. 6 design points).
 */
enum class Scheme
{
    HwPfOff,    //!< Hardware prefetchers disabled ("w/o HW-PF").
    Baseline,   //!< Hardware prefetchers on, no software technique.
    SwPf,       //!< Application-initiated software prefetching (Sec. 4.2).
    DpHt,       //!< Naive data-parallel hyperthreading (two instances).
    MpHt,       //!< Model-parallel HT: embedding + bottom-MLP colocated.
    Integrated, //!< SW-PF combined with MP-HT (Sec. 4.4).
};

/** All schemes in the paper's presentation order. */
constexpr std::array<Scheme, 6> allSchemes = {
    Scheme::HwPfOff, Scheme::Baseline, Scheme::SwPf,
    Scheme::DpHt,    Scheme::MpHt,     Scheme::Integrated,
};

/** Human-readable scheme name matching the paper's legends. */
std::string schemeName(Scheme s);

/** True when the scheme uses software prefetching in embedding_bag. */
constexpr bool
usesSwPrefetch(Scheme s)
{
    return s == Scheme::SwPf || s == Scheme::Integrated;
}

/** True when the scheme colocates embedding and bottom-MLP threads. */
constexpr bool
usesMpHt(Scheme s)
{
    return s == Scheme::MpHt || s == Scheme::Integrated;
}

/** True when hardware prefetchers are modeled as enabled. */
constexpr bool
usesHwPrefetch(Scheme s)
{
    return s != Scheme::HwPfOff;
}

} // namespace dlrmopt::core

#endif // DLRMOPT_CORE_SCHEME_HPP
