#include "core/model_config.hpp"

#include <algorithm>
#include <stdexcept>

namespace dlrmopt::core
{

double
slaTargetMs(ModelClass cls)
{
    switch (cls) {
      case ModelClass::RMC1:
        return 100.0;
      case ModelClass::RMC2:
        return 400.0;
      case ModelClass::RMC3:
        return 100.0;
    }
    return 100.0;
}

ModelConfig
rm1()
{
    ModelConfig m;
    m.name = "rm1";
    m.cls = ModelClass::RMC1;
    m.rows = 500'000;
    m.dim = 64;
    m.tables = 32;
    m.lookups = 80;
    m.bottomMlp = {2048, 2048, 256, 64};
    m.topMlp = {768, 384, 1};
    m.embTimePercent = 65.0;
    return m;
}

ModelConfig
rm2_1()
{
    ModelConfig m;
    m.name = "rm2_1";
    m.cls = ModelClass::RMC2;
    m.rows = 1'000'000;
    m.dim = 128;
    m.tables = 60;
    m.lookups = 120;
    m.bottomMlp = {256, 128, 128};
    m.topMlp = {128, 64, 1};
    m.embTimePercent = 98.0;
    return m;
}

ModelConfig
rm2_2()
{
    ModelConfig m;
    m.name = "rm2_2";
    m.cls = ModelClass::RMC2;
    m.rows = 1'000'000;
    m.dim = 128;
    m.tables = 120;
    m.lookups = 150;
    m.bottomMlp = {1024, 512, 128, 128};
    m.topMlp = {384, 192, 1};
    m.embTimePercent = 96.0;
    return m;
}

ModelConfig
rm2_3()
{
    ModelConfig m;
    m.name = "rm2_3";
    m.cls = ModelClass::RMC2;
    m.rows = 1'000'000;
    m.dim = 128;
    m.tables = 170;
    m.lookups = 180;
    m.bottomMlp = {2048, 1024, 256, 128};
    m.topMlp = {512, 256, 1};
    m.embTimePercent = 95.0;
    return m;
}

const std::vector<ModelConfig>&
allModels()
{
    static const std::vector<ModelConfig> models = {rm2_1(), rm2_2(),
                                                    rm2_3(), rm1()};
    return models;
}

const ModelConfig&
modelByName(const std::string& name)
{
    for (const auto& m : allModels()) {
        if (m.name == name)
            return m;
    }
    throw std::out_of_range("unknown model: " + name);
}

ModelConfig
ModelConfig::scaledToFit(double max_bytes) const
{
    ModelConfig m = *this;
    if (embeddingBytes() <= max_bytes)
        return m;

    // Shrink the table count first (keeps per-table reuse structure),
    // then the row count, but never below sizes that still exceed any
    // modeled LLC so the memory-bound character is preserved.
    while (m.tables > 4 && m.embeddingBytes() > max_bytes)
        m.tables = std::max<std::size_t>(4, m.tables / 2);
    while (m.rows > 65'536 && m.embeddingBytes() > max_bytes)
        m.rows = std::max<std::size_t>(65'536, m.rows / 2);
    m.name += "_scaled";
    return m;
}

} // namespace dlrmopt::core
