#include "core/versioned.hpp"

#include <cstring>
#include <stdexcept>
#include <string>

#include "core/snapshot.hpp"
#include "core/types.hpp"

namespace dlrmopt::core
{

namespace
{

/** Identity fold: version id, seed, dtype, and every golden probe
 *  bit. Two versions serving different bytes cannot collide short of
 *  a mix64 collision. */
std::uint64_t
versionFingerprint(std::uint64_t version, std::uint64_t seed,
                   EmbDtype dtype, const std::vector<float>& probe)
{
    std::uint64_t h = mix64(version ^ mix64(seed + 1));
    h = mix64(h ^ (static_cast<std::uint64_t>(dtype) + 0x9E37ull));
    for (float p : probe) {
        std::uint32_t u;
        std::memcpy(&u, &p, sizeof(u));
        h = mix64(h ^ u);
    }
    return h;
}

} // namespace

std::shared_ptr<const ModelVersion>
ModelVersion::build(const ModelConfig& cfg, std::uint64_t version,
                    std::uint64_t seed, EmbDtype dtype,
                    std::size_t blockRows)
{
    auto store = std::make_shared<EmbeddingStore>(cfg, seed, blockRows,
                                                  dtype);
    auto model = std::make_shared<const DlrmModel>(cfg, store, seed);
    return adopt(cfg, version, seed, std::move(store),
                 std::move(model));
}

std::shared_ptr<const ModelVersion>
ModelVersion::adopt(const ModelConfig& cfg, std::uint64_t version,
                    std::uint64_t seed,
                    std::shared_ptr<EmbeddingStore> store,
                    std::shared_ptr<const DlrmModel> model)
{
    if (store == nullptr || model == nullptr) {
        throw std::invalid_argument(
            "ModelVersion: null store or model");
    }
    auto v = std::make_shared<ModelVersion>();
    v->version = version;
    v->weightSeed = seed;
    v->cfg = cfg;
    v->store = std::move(store);
    v->model = std::move(model);
    v->fingerprint = versionFingerprint(
        version, seed, v->store->dtype(),
        ModelSnapshot::probePredictions(*v->model));
    return v;
}

VersionedModel::VersionedModel(
    std::shared_ptr<const ModelVersion> initial)
    : _current(std::move(initial))
{
    if (_current == nullptr) {
        throw std::invalid_argument(
            "VersionedModel: null initial version");
    }
}

std::shared_ptr<const ModelVersion>
VersionedModel::current() const
{
    std::lock_guard<std::mutex> lk(_mu);
    return _current;
}

std::uint64_t
VersionedModel::currentVersion() const
{
    std::lock_guard<std::mutex> lk(_mu);
    return _current->version;
}

void
VersionedModel::publish(std::shared_ptr<const ModelVersion> next)
{
    if (next == nullptr)
        throw std::invalid_argument("VersionedModel: null publish");
    std::lock_guard<std::mutex> lk(_mu);
    if (next->version <= _current->version) {
        throw std::invalid_argument(
            "VersionedModel: version " + std::to_string(next->version) +
            " does not advance past " +
            std::to_string(_current->version) +
            " (ids are monotonic; re-publish rollbacks under a fresh "
            "id)");
    }
    _retiring.push_back(std::move(_current));
    _current = std::move(next);
    ++_published;
}

std::size_t
VersionedModel::retireDrained()
{
    std::lock_guard<std::mutex> lk(_mu);
    std::size_t n = 0;
    for (std::size_t i = _retiring.size(); i-- > 0;) {
        if (_retiring[i].use_count() == 1) {
            _retiring.erase(_retiring.begin() +
                            static_cast<std::ptrdiff_t>(i));
            ++n;
        }
    }
    _retired += n;
    return n;
}

std::size_t
VersionedModel::retiringCount() const
{
    std::lock_guard<std::mutex> lk(_mu);
    return _retiring.size();
}

} // namespace dlrmopt::core
