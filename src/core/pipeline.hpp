/**
 * @file
 * Real-execution inference pipeline implementing the paper's stage
 * orderings: Sequential, MP-HT (embedding and bottom-MLP overlapped
 * on two threads, Fig. 11), and DP-HT (two full instances running
 * concurrently).
 *
 * This is the path that runs actual kernels with wall-clock timing;
 * the simulator-based path used for the figure benches lives in
 * src/platform.
 */

#ifndef DLRMOPT_CORE_PIPELINE_HPP
#define DLRMOPT_CORE_PIPELINE_HPP

#include <cstddef>
#include <vector>

#include "core/dlrm.hpp"
#include "core/scheme.hpp"

namespace dlrmopt::core
{

/** Per-stage wall-clock timing aggregated over a run. */
struct PipelineStats
{
    std::size_t batches = 0;
    double totalMs = 0.0;
    double bottomMs = 0.0; //!< bottom-MLP stage (may overlap embedding)
    double embMs = 0.0;    //!< embedding lookup stage
    double interMs = 0.0;  //!< feature interaction
    double topMs = 0.0;    //!< top MLP + sigmoid

    double
    avgBatchMs() const
    {
        return batches ? totalMs / static_cast<double>(batches) : 0.0;
    }
};

/**
 * Drives DlrmModel::forward over a batch stream under one execution
 * scheme. Thread-overlap schemes spawn their helper thread per run and
 * join before returning, so the pipeline is stateless between runs.
 */
class InferencePipeline
{
  public:
    /**
     * @param model Model to run (not owned; must outlive the pipeline).
     * @param scheme Execution scheme. HwPfOff behaves like Baseline in
     *               real execution (MSRs are not touched); the
     *               distinction only exists in the simulator.
     * @param pf Prefetch spec used when the scheme enables SW-PF.
     */
    InferencePipeline(const DlrmModel& model, Scheme scheme,
                      const PrefetchSpec& pf = PrefetchSpec::paperDefault());

    /**
     * Runs inference over all batches and returns per-stage timing.
     *
     * @param dense Dense features shared by every batch.
     * @param batches Sparse inputs, one entry per batch.
     */
    PipelineStats run(const Tensor& dense,
                      const std::vector<SparseBatch>& batches) const;

  private:
    PipelineStats runSequential(const Tensor& dense,
                                const std::vector<SparseBatch>& batches,
                                const PrefetchSpec& pf) const;
    PipelineStats runMpHt(const Tensor& dense,
                          const std::vector<SparseBatch>& batches,
                          const PrefetchSpec& pf) const;
    PipelineStats runDpHt(const Tensor& dense,
                          const std::vector<SparseBatch>& batches) const;

    const DlrmModel& _model;
    Scheme _scheme;
    PrefetchSpec _pf;
};

} // namespace dlrmopt::core

#endif // DLRMOPT_CORE_PIPELINE_HPP
