/**
 * @file
 * SIMD feature detection and vectorized accumulate kernels.
 *
 * The paper's embedding stage runs on IPEX's AVX-512 kernels
 * (vec.ld / vec.add / vec.st in Algorithm 1). embedding_bag's inner
 * accumulate is provided here in explicit AVX-512 and AVX2 forms
 * with runtime dispatch, falling back to the portable scalar loop.
 * All variants are bit-identical for fp32 addition (same order).
 */

#ifndef DLRMOPT_CORE_SIMD_HPP
#define DLRMOPT_CORE_SIMD_HPP

#include <cstddef>
#include <cstdint>
#include <string>

#include "core/types.hpp"

namespace dlrmopt::core
{

/** Instruction set the accumulate kernel dispatches to. */
enum class SimdLevel
{
    Scalar,
    Avx2,
    Avx512,
};

/** Highest level supported by the running CPU. */
SimdLevel detectSimdLevel();

/** True when the running CPU exposes AVX512-VNNI (vpdpbusd). */
bool cpuHasAvx512Vnni();

/**
 * Enables/disables the VNNI u8·s8 GEMM microkernel at runtime
 * (default: detected capability). Requests to enable on a host
 * without AVX512-VNNI are clamped to off. Both paths accumulate the
 * identical exact s32 dot products, so toggling never changes a
 * prediction bit — this exists so tests can run the widening path on
 * VNNI hosts and benches can A/B the two.
 *
 * @return The state actually selected.
 */
bool setVnniEnabled(bool enabled);

/** True when the VNNI microkernel is currently selected. */
bool vnniEnabled();

/** Human-readable name ("scalar", "AVX2", "AVX-512"). */
std::string simdLevelName(SimdLevel level);

/**
 * fp32 lanes per vector register at @p level (1 / 8 / 16). Used for
 * roofline math in the benches and the GEMM microkernel geometry
 * reporting; independent of what the running CPU supports.
 */
std::size_t simdVectorFloats(SimdLevel level);

/**
 * out[0..n) += row[0..n), dispatched to the best available ISA.
 * @param n Element count (any value; tails handled).
 */
void accumulateRow(float *out, const float *row, std::size_t n);

/** Force a specific implementation (testing / ablation). */
void accumulateRowScalar(float *out, const float *row, std::size_t n);
void accumulateRowAvx2(float *out, const float *row, std::size_t n);
void accumulateRowAvx512(float *out, const float *row, std::size_t n);

/**
 * Fused-dequant accumulate over a bf16-stored row:
 * out[i] += widen(row[i]), where widen is the exact bit-shift
 * conversion (core/quant.hpp) — one pass over the stored bytes, half
 * the memory traffic of the fp32 kernel. The vector forms widen in
 * registers (zero-extend + shift-left 16 + fp32 add); the widened
 * addend is bit-exact in every variant, and the tails run the scalar
 * mirror of the same chain, so all levels are bitwise-identical.
 */
void accumulateRowBf16(float *out, const std::uint16_t *row,
                       std::size_t n);
void accumulateRowBf16Scalar(float *out, const std::uint16_t *row,
                             std::size_t n);
void accumulateRowBf16Avx2(float *out, const std::uint16_t *row,
                           std::size_t n);
void accumulateRowBf16Avx512(float *out, const std::uint16_t *row,
                             std::size_t n);

/**
 * Fused-dequant accumulate over an int8-stored row with per-block
 * affine parameters (value = code * scale + bias):
 *
 *   out[i] = fmaf((float)row[i], scale, out[i]) + bias
 *
 * — a quarter of the fp32 kernel's memory traffic, with the
 * dequantization folded into the accumulate (widen u8 in registers,
 * one fma, one add). The per-element chain is the same in all three
 * variants (vector fmadd <-> scalar fmaf, exact u8->fp32 widening),
 * and tails run the scalar mirror, so all levels are
 * bitwise-identical.
 */
void accumulateRowInt8(float *out, const std::uint8_t *row, float scale,
                       float bias, std::size_t n);
void accumulateRowInt8Scalar(float *out, const std::uint8_t *row,
                             float scale, float bias, std::size_t n);
void accumulateRowInt8Avx2(float *out, const std::uint8_t *row,
                           float scale, float bias, std::size_t n);
void accumulateRowInt8Avx512(float *out, const std::uint8_t *row,
                             float scale, float bias, std::size_t n);

/**
 * Register-blocked whole-sample quantized bags: pool every row of one
 * sample into vector-register accumulators and store the output once,
 * instead of a load-accumulate-store round trip of the output buffer
 * per row. The per-lane arithmetic chain is exactly the per-row
 * kernel's (same widen/fma/add order — a register-held partial equals
 * the stored-and-reloaded one bitwise), so bag() output is unchanged;
 * only the memory traffic shrinks.
 *
 * @param out Output row [dim], stored once at the end.
 * @param base Table payload base (fused rows for int8).
 * @param strideBytes Stored bytes per row (int8: dim + 8).
 * @param dim Embedding dimension.
 * @param indices Flat lookup-index array (pre-validated by caller).
 * @param begin,end This sample's span within @p indices.
 * @param total Total lookups in @p indices (prefetch look-ahead cap).
 * @param pfDist Look-ahead distance in lookups; 0 disables.
 * @param pfLines Cache lines of the future row to prefetch (T0 hint).
 *
 * @return false when the active level or shape has no specialized
 *         kernel (scalar level, dim not a lane multiple, or dim too
 *         large to hold in registers) — the caller falls back to the
 *         per-row path.
 */
bool bagSampleBf16(float *out, const std::uint16_t *base,
                   std::size_t dim, const RowIndex *indices,
                   std::size_t begin, std::size_t end,
                   std::size_t total, std::size_t pfDist, int pfLines);
bool bagSampleInt8(float *out, const std::uint8_t *base,
                   std::size_t strideBytes, std::size_t dim,
                   const RowIndex *indices, std::size_t begin,
                   std::size_t end, std::size_t total,
                   std::size_t pfDist, int pfLines);

/**
 * Pointer-walking mirrors of the whole-sample bags for callers whose
 * rows do not share one base address — the hot tier resolves each
 * lookup to either its pinned copy or the cold row and hands the
 * per-sample pointer list here. Accumulation order is the pointer
 * order and the per-lane chain matches the per-row kernels, so the
 * result is bitwise-identical to per-row accumulation over the same
 * pointers (and hence to the cold bag over the same index stream).
 * Int8 pointers reference fused rows (scale/bias trailer at +dim).
 *
 * @return false when the active level or shape has no specialized
 *         kernel — the caller falls back to the per-row path.
 */
bool bagSamplePtrsF32(float *out, const std::uint8_t *const *rows,
                      std::size_t n, std::size_t dim);
bool bagSamplePtrsBf16(float *out, const std::uint8_t *const *rows,
                       std::size_t n, std::size_t dim);
bool bagSamplePtrsInt8(float *out, const std::uint8_t *const *rows,
                       std::size_t n, std::size_t dim);

/**
 * Logistic-sigmoid variants backing core::sigmoidInplace's dispatch.
 *
 * The scalar form is the exact-libm reference (1 / (1 + expf(-x)));
 * the vector forms use a Cody-Waite range-reduced degree-6 polynomial
 * exp (Cephes coefficients, relative error ~1e-7 vs libm — tolerance-
 * tested against the scalar reference in tests/core/test_simd.cpp).
 *
 * Within one vector variant every element takes the identical
 * arithmetic path regardless of its position or the array length: the
 * AVX-512 tail is a masked vector op, and the AVX2 tail is a scalar
 * mirror built from fmaf/nearbyintf matching the vector lanes
 * bitwise. That position-independence is what keeps a coalesced
 * batched forward bitwise-identical to per-request forwards.
 */
void sigmoidInplaceScalar(float *data, std::size_t n);
void sigmoidInplaceAvx2(float *data, std::size_t n);
void sigmoidInplaceAvx512(float *data, std::size_t n);

/**
 * Overrides dispatch globally (e.g. to benchmark scalar vs vector).
 * Levels above the detected capability are clamped down.
 * @return The level actually selected.
 */
SimdLevel setSimdLevel(SimdLevel level);

/** Currently selected dispatch level. */
SimdLevel currentSimdLevel();

} // namespace dlrmopt::core

#endif // DLRMOPT_CORE_SIMD_HPP
