/**
 * @file
 * SIMD feature detection and vectorized accumulate kernels.
 *
 * The paper's embedding stage runs on IPEX's AVX-512 kernels
 * (vec.ld / vec.add / vec.st in Algorithm 1). embedding_bag's inner
 * accumulate is provided here in explicit AVX-512 and AVX2 forms
 * with runtime dispatch, falling back to the portable scalar loop.
 * All variants are bit-identical for fp32 addition (same order).
 */

#ifndef DLRMOPT_CORE_SIMD_HPP
#define DLRMOPT_CORE_SIMD_HPP

#include <cstddef>
#include <string>

namespace dlrmopt::core
{

/** Instruction set the accumulate kernel dispatches to. */
enum class SimdLevel
{
    Scalar,
    Avx2,
    Avx512,
};

/** Highest level supported by the running CPU. */
SimdLevel detectSimdLevel();

/** Human-readable name ("scalar", "AVX2", "AVX-512"). */
std::string simdLevelName(SimdLevel level);

/**
 * fp32 lanes per vector register at @p level (1 / 8 / 16). Used for
 * roofline math in the benches and the GEMM microkernel geometry
 * reporting; independent of what the running CPU supports.
 */
std::size_t simdVectorFloats(SimdLevel level);

/**
 * out[0..n) += row[0..n), dispatched to the best available ISA.
 * @param n Element count (any value; tails handled).
 */
void accumulateRow(float *out, const float *row, std::size_t n);

/** Force a specific implementation (testing / ablation). */
void accumulateRowScalar(float *out, const float *row, std::size_t n);
void accumulateRowAvx2(float *out, const float *row, std::size_t n);
void accumulateRowAvx512(float *out, const float *row, std::size_t n);

/**
 * Logistic-sigmoid variants backing core::sigmoidInplace's dispatch.
 *
 * The scalar form is the exact-libm reference (1 / (1 + expf(-x)));
 * the vector forms use a Cody-Waite range-reduced degree-6 polynomial
 * exp (Cephes coefficients, relative error ~1e-7 vs libm — tolerance-
 * tested against the scalar reference in tests/core/test_simd.cpp).
 *
 * Within one vector variant every element takes the identical
 * arithmetic path regardless of its position or the array length: the
 * AVX-512 tail is a masked vector op, and the AVX2 tail is a scalar
 * mirror built from fmaf/nearbyintf matching the vector lanes
 * bitwise. That position-independence is what keeps a coalesced
 * batched forward bitwise-identical to per-request forwards.
 */
void sigmoidInplaceScalar(float *data, std::size_t n);
void sigmoidInplaceAvx2(float *data, std::size_t n);
void sigmoidInplaceAvx512(float *data, std::size_t n);

/**
 * Overrides dispatch globally (e.g. to benchmark scalar vs vector).
 * Levels above the detected capability are clamped down.
 * @return The level actually selected.
 */
SimdLevel setSimdLevel(SimdLevel level);

/** Currently selected dispatch level. */
SimdLevel currentSimdLevel();

} // namespace dlrmopt::core

#endif // DLRMOPT_CORE_SIMD_HPP
