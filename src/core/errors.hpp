/**
 * @file
 * Typed exception hierarchy for the dlrmopt core library.
 *
 * Kernels on the serving path report recoverable input problems (bad
 * lookup indices, malformed batches) through these types so the
 * serving layer can distinguish "this request is poisoned, fail it"
 * from "the process is broken, crash loudly".
 */

#ifndef DLRMOPT_CORE_ERRORS_HPP
#define DLRMOPT_CORE_ERRORS_HPP

#include <stdexcept>
#include <string>

namespace dlrmopt::core
{

/**
 * An embedding lookup index fell outside the table's row range.
 *
 * Raised by EmbeddingTable::bag instead of reading out of bounds;
 * derives from std::out_of_range so existing catch sites keep working.
 */
class IndexError : public std::out_of_range
{
  public:
    explicit IndexError(const std::string& what)
        : std::out_of_range(what)
    {
    }
};

} // namespace dlrmopt::core

#endif // DLRMOPT_CORE_ERRORS_HPP
