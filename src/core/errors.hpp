/**
 * @file
 * Typed exception hierarchy for the dlrmopt core library.
 *
 * Kernels on the serving path report recoverable input problems (bad
 * lookup indices, malformed batches) through these types so the
 * serving layer can distinguish "this request is poisoned, fail it"
 * from "the process is broken, crash loudly".
 */

#ifndef DLRMOPT_CORE_ERRORS_HPP
#define DLRMOPT_CORE_ERRORS_HPP

#include <stdexcept>
#include <string>

namespace dlrmopt::core
{

/**
 * An embedding lookup index fell outside the table's row range.
 *
 * Raised by EmbeddingTable::bag instead of reading out of bounds;
 * derives from std::out_of_range so existing catch sites keep working.
 */
class IndexError : public std::out_of_range
{
  public:
    explicit IndexError(const std::string& what)
        : std::out_of_range(what)
    {
    }
};

/**
 * A model-snapshot file operation failed: the file is missing,
 * truncated, bit-flipped (a header/block/footer checksum mismatched),
 * describes a different model than the caller expected, or an OS-level
 * read/write/fsync/rename failed. The message names the offending
 * section and offset so operators can tell a torn write from a config
 * mismatch. Recoverable by construction: a loader that catches IoError
 * keeps serving its current version.
 */
class IoError : public std::runtime_error
{
  public:
    explicit IoError(const std::string& what) : std::runtime_error(what)
    {
    }
};

} // namespace dlrmopt::core

#endif // DLRMOPT_CORE_ERRORS_HPP
