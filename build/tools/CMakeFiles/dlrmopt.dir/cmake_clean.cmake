file(REMOVE_RECURSE
  "CMakeFiles/dlrmopt.dir/main.cpp.o"
  "CMakeFiles/dlrmopt.dir/main.cpp.o.d"
  "dlrmopt"
  "dlrmopt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlrmopt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
