# Empty dependencies file for dlrmopt.
# This may be replaced when dependencies are built.
