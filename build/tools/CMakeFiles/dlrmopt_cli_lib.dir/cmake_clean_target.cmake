file(REMOVE_RECURSE
  "libdlrmopt_cli_lib.a"
)
