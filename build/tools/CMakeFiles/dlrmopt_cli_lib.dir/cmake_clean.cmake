file(REMOVE_RECURSE
  "CMakeFiles/dlrmopt_cli_lib.dir/cli.cpp.o"
  "CMakeFiles/dlrmopt_cli_lib.dir/cli.cpp.o.d"
  "libdlrmopt_cli_lib.a"
  "libdlrmopt_cli_lib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlrmopt_cli_lib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
