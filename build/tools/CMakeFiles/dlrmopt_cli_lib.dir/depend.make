# Empty dependencies file for dlrmopt_cli_lib.
# This may be replaced when dependencies are built.
