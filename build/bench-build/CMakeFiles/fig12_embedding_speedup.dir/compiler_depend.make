# Empty compiler generated dependencies file for fig12_embedding_speedup.
# This may be replaced when dependencies are built.
