# Empty dependencies file for fig17_tail_latency.
# This may be replaced when dependencies are built.
