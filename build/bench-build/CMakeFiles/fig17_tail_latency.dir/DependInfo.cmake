
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig17_tail_latency.cpp" "bench-build/CMakeFiles/fig17_tail_latency.dir/fig17_tail_latency.cpp.o" "gcc" "bench-build/CMakeFiles/fig17_tail_latency.dir/fig17_tail_latency.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dlrmopt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/dlrmopt_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/memsim/CMakeFiles/dlrmopt_memsim.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/dlrmopt_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/dlrmopt_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/serve/CMakeFiles/dlrmopt_serve.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
