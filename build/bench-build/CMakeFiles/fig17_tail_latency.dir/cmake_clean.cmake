file(REMOVE_RECURSE
  "../bench/fig17_tail_latency"
  "../bench/fig17_tail_latency.pdb"
  "CMakeFiles/fig17_tail_latency.dir/fig17_tail_latency.cpp.o"
  "CMakeFiles/fig17_tail_latency.dir/fig17_tail_latency.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_tail_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
