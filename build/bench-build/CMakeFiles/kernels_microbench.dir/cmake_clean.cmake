file(REMOVE_RECURSE
  "../bench/kernels_microbench"
  "../bench/kernels_microbench.pdb"
  "CMakeFiles/kernels_microbench.dir/kernels_microbench.cpp.o"
  "CMakeFiles/kernels_microbench.dir/kernels_microbench.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernels_microbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
