# Empty dependencies file for fig16_cpu_platforms.
# This may be replaced when dependencies are built.
