file(REMOVE_RECURSE
  "../bench/fig16_cpu_platforms"
  "../bench/fig16_cpu_platforms.pdb"
  "CMakeFiles/fig16_cpu_platforms.dir/fig16_cpu_platforms.cpp.o"
  "CMakeFiles/fig16_cpu_platforms.dir/fig16_cpu_platforms.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_cpu_platforms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
