file(REMOVE_RECURSE
  "../bench/table04_embedding_times"
  "../bench/table04_embedding_times.pdb"
  "CMakeFiles/table04_embedding_times.dir/table04_embedding_times.cpp.o"
  "CMakeFiles/table04_embedding_times.dir/table04_embedding_times.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table04_embedding_times.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
