# Empty dependencies file for table04_embedding_times.
# This may be replaced when dependencies are built.
