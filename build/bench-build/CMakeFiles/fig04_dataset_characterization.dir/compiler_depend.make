# Empty compiler generated dependencies file for fig04_dataset_characterization.
# This may be replaced when dependencies are built.
