file(REMOVE_RECURSE
  "../bench/fig04_dataset_characterization"
  "../bench/fig04_dataset_characterization.pdb"
  "CMakeFiles/fig04_dataset_characterization.dir/fig04_dataset_characterization.cpp.o"
  "CMakeFiles/fig04_dataset_characterization.dir/fig04_dataset_characterization.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_dataset_characterization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
