file(REMOVE_RECURSE
  "../bench/fig07_reuse_distance"
  "../bench/fig07_reuse_distance.pdb"
  "CMakeFiles/fig07_reuse_distance.dir/fig07_reuse_distance.cpp.o"
  "CMakeFiles/fig07_reuse_distance.dir/fig07_reuse_distance.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_reuse_distance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
