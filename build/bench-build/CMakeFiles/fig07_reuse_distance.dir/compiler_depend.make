# Empty compiler generated dependencies file for fig07_reuse_distance.
# This may be replaced when dependencies are built.
