# Empty compiler generated dependencies file for fig15_cache_metrics.
# This may be replaced when dependencies are built.
