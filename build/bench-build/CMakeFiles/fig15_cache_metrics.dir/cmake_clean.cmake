file(REMOVE_RECURSE
  "../bench/fig15_cache_metrics"
  "../bench/fig15_cache_metrics.pdb"
  "CMakeFiles/fig15_cache_metrics.dir/fig15_cache_metrics.cpp.o"
  "CMakeFiles/fig15_cache_metrics.dir/fig15_cache_metrics.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_cache_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
