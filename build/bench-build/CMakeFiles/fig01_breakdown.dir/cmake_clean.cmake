file(REMOVE_RECURSE
  "../bench/fig01_breakdown"
  "../bench/fig01_breakdown.pdb"
  "CMakeFiles/fig01_breakdown.dir/fig01_breakdown.cpp.o"
  "CMakeFiles/fig01_breakdown.dir/fig01_breakdown.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
