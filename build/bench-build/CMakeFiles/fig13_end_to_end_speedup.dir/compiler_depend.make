# Empty compiler generated dependencies file for fig13_end_to_end_speedup.
# This may be replaced when dependencies are built.
