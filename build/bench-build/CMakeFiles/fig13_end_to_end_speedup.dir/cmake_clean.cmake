file(REMOVE_RECURSE
  "../bench/fig13_end_to_end_speedup"
  "../bench/fig13_end_to_end_speedup.pdb"
  "CMakeFiles/fig13_end_to_end_speedup.dir/fig13_end_to_end_speedup.cpp.o"
  "CMakeFiles/fig13_end_to_end_speedup.dir/fig13_end_to_end_speedup.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_end_to_end_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
