file(REMOVE_RECURSE
  "../bench/fig14_mixed_model"
  "../bench/fig14_mixed_model.pdb"
  "CMakeFiles/fig14_mixed_model.dir/fig14_mixed_model.cpp.o"
  "CMakeFiles/fig14_mixed_model.dir/fig14_mixed_model.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_mixed_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
