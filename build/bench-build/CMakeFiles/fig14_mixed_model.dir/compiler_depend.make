# Empty compiler generated dependencies file for fig14_mixed_model.
# This may be replaced when dependencies are built.
