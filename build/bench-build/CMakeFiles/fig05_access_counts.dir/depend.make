# Empty dependencies file for fig05_access_counts.
# This may be replaced when dependencies are built.
