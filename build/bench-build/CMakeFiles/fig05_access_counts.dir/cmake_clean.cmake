file(REMOVE_RECURSE
  "../bench/fig05_access_counts"
  "../bench/fig05_access_counts.pdb"
  "CMakeFiles/fig05_access_counts.dir/fig05_access_counts.cpp.o"
  "CMakeFiles/fig05_access_counts.dir/fig05_access_counts.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_access_counts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
