# Empty compiler generated dependencies file for fig08_multicore_scaling.
# This may be replaced when dependencies are built.
