file(REMOVE_RECURSE
  "../bench/fig08_multicore_scaling"
  "../bench/fig08_multicore_scaling.pdb"
  "CMakeFiles/fig08_multicore_scaling.dir/fig08_multicore_scaling.cpp.o"
  "CMakeFiles/fig08_multicore_scaling.dir/fig08_multicore_scaling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_multicore_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
