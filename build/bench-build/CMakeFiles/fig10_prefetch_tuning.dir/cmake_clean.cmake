file(REMOVE_RECURSE
  "../bench/fig10_prefetch_tuning"
  "../bench/fig10_prefetch_tuning.pdb"
  "CMakeFiles/fig10_prefetch_tuning.dir/fig10_prefetch_tuning.cpp.o"
  "CMakeFiles/fig10_prefetch_tuning.dir/fig10_prefetch_tuning.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_prefetch_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
