# Empty dependencies file for fig10_prefetch_tuning.
# This may be replaced when dependencies are built.
