file(REMOVE_RECURSE
  "libdlrmopt_memsim.a"
)
