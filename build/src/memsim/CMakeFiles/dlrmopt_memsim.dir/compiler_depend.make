# Empty compiler generated dependencies file for dlrmopt_memsim.
# This may be replaced when dependencies are built.
