file(REMOVE_RECURSE
  "CMakeFiles/dlrmopt_memsim.dir/cache.cpp.o"
  "CMakeFiles/dlrmopt_memsim.dir/cache.cpp.o.d"
  "CMakeFiles/dlrmopt_memsim.dir/embedding_sim.cpp.o"
  "CMakeFiles/dlrmopt_memsim.dir/embedding_sim.cpp.o.d"
  "CMakeFiles/dlrmopt_memsim.dir/hierarchy.cpp.o"
  "CMakeFiles/dlrmopt_memsim.dir/hierarchy.cpp.o.d"
  "CMakeFiles/dlrmopt_memsim.dir/hw_prefetcher.cpp.o"
  "CMakeFiles/dlrmopt_memsim.dir/hw_prefetcher.cpp.o.d"
  "CMakeFiles/dlrmopt_memsim.dir/reuse.cpp.o"
  "CMakeFiles/dlrmopt_memsim.dir/reuse.cpp.o.d"
  "CMakeFiles/dlrmopt_memsim.dir/reuse_model.cpp.o"
  "CMakeFiles/dlrmopt_memsim.dir/reuse_model.cpp.o.d"
  "libdlrmopt_memsim.a"
  "libdlrmopt_memsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlrmopt_memsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
