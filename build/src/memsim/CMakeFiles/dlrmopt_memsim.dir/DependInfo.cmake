
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/memsim/cache.cpp" "src/memsim/CMakeFiles/dlrmopt_memsim.dir/cache.cpp.o" "gcc" "src/memsim/CMakeFiles/dlrmopt_memsim.dir/cache.cpp.o.d"
  "/root/repo/src/memsim/embedding_sim.cpp" "src/memsim/CMakeFiles/dlrmopt_memsim.dir/embedding_sim.cpp.o" "gcc" "src/memsim/CMakeFiles/dlrmopt_memsim.dir/embedding_sim.cpp.o.d"
  "/root/repo/src/memsim/hierarchy.cpp" "src/memsim/CMakeFiles/dlrmopt_memsim.dir/hierarchy.cpp.o" "gcc" "src/memsim/CMakeFiles/dlrmopt_memsim.dir/hierarchy.cpp.o.d"
  "/root/repo/src/memsim/hw_prefetcher.cpp" "src/memsim/CMakeFiles/dlrmopt_memsim.dir/hw_prefetcher.cpp.o" "gcc" "src/memsim/CMakeFiles/dlrmopt_memsim.dir/hw_prefetcher.cpp.o.d"
  "/root/repo/src/memsim/reuse.cpp" "src/memsim/CMakeFiles/dlrmopt_memsim.dir/reuse.cpp.o" "gcc" "src/memsim/CMakeFiles/dlrmopt_memsim.dir/reuse.cpp.o.d"
  "/root/repo/src/memsim/reuse_model.cpp" "src/memsim/CMakeFiles/dlrmopt_memsim.dir/reuse_model.cpp.o" "gcc" "src/memsim/CMakeFiles/dlrmopt_memsim.dir/reuse_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dlrmopt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/dlrmopt_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
