# Empty compiler generated dependencies file for dlrmopt_trace.
# This may be replaced when dependencies are built.
