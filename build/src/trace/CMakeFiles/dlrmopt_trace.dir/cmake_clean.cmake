file(REMOVE_RECURSE
  "CMakeFiles/dlrmopt_trace.dir/generator.cpp.o"
  "CMakeFiles/dlrmopt_trace.dir/generator.cpp.o.d"
  "CMakeFiles/dlrmopt_trace.dir/hotness.cpp.o"
  "CMakeFiles/dlrmopt_trace.dir/hotness.cpp.o.d"
  "CMakeFiles/dlrmopt_trace.dir/io.cpp.o"
  "CMakeFiles/dlrmopt_trace.dir/io.cpp.o.d"
  "CMakeFiles/dlrmopt_trace.dir/stats.cpp.o"
  "CMakeFiles/dlrmopt_trace.dir/stats.cpp.o.d"
  "libdlrmopt_trace.a"
  "libdlrmopt_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlrmopt_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
