# Empty dependencies file for dlrmopt_trace.
# This may be replaced when dependencies are built.
