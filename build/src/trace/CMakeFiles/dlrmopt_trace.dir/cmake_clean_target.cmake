file(REMOVE_RECURSE
  "libdlrmopt_trace.a"
)
