# Empty dependencies file for dlrmopt_core.
# This may be replaced when dependencies are built.
