file(REMOVE_RECURSE
  "CMakeFiles/dlrmopt_core.dir/autotune.cpp.o"
  "CMakeFiles/dlrmopt_core.dir/autotune.cpp.o.d"
  "CMakeFiles/dlrmopt_core.dir/dlrm.cpp.o"
  "CMakeFiles/dlrmopt_core.dir/dlrm.cpp.o.d"
  "CMakeFiles/dlrmopt_core.dir/embedding.cpp.o"
  "CMakeFiles/dlrmopt_core.dir/embedding.cpp.o.d"
  "CMakeFiles/dlrmopt_core.dir/gemm.cpp.o"
  "CMakeFiles/dlrmopt_core.dir/gemm.cpp.o.d"
  "CMakeFiles/dlrmopt_core.dir/interaction.cpp.o"
  "CMakeFiles/dlrmopt_core.dir/interaction.cpp.o.d"
  "CMakeFiles/dlrmopt_core.dir/mlp.cpp.o"
  "CMakeFiles/dlrmopt_core.dir/mlp.cpp.o.d"
  "CMakeFiles/dlrmopt_core.dir/model_config.cpp.o"
  "CMakeFiles/dlrmopt_core.dir/model_config.cpp.o.d"
  "CMakeFiles/dlrmopt_core.dir/pipeline.cpp.o"
  "CMakeFiles/dlrmopt_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/dlrmopt_core.dir/scheme.cpp.o"
  "CMakeFiles/dlrmopt_core.dir/scheme.cpp.o.d"
  "CMakeFiles/dlrmopt_core.dir/simd.cpp.o"
  "CMakeFiles/dlrmopt_core.dir/simd.cpp.o.d"
  "CMakeFiles/dlrmopt_core.dir/tensor.cpp.o"
  "CMakeFiles/dlrmopt_core.dir/tensor.cpp.o.d"
  "libdlrmopt_core.a"
  "libdlrmopt_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlrmopt_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
