
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/autotune.cpp" "src/core/CMakeFiles/dlrmopt_core.dir/autotune.cpp.o" "gcc" "src/core/CMakeFiles/dlrmopt_core.dir/autotune.cpp.o.d"
  "/root/repo/src/core/dlrm.cpp" "src/core/CMakeFiles/dlrmopt_core.dir/dlrm.cpp.o" "gcc" "src/core/CMakeFiles/dlrmopt_core.dir/dlrm.cpp.o.d"
  "/root/repo/src/core/embedding.cpp" "src/core/CMakeFiles/dlrmopt_core.dir/embedding.cpp.o" "gcc" "src/core/CMakeFiles/dlrmopt_core.dir/embedding.cpp.o.d"
  "/root/repo/src/core/gemm.cpp" "src/core/CMakeFiles/dlrmopt_core.dir/gemm.cpp.o" "gcc" "src/core/CMakeFiles/dlrmopt_core.dir/gemm.cpp.o.d"
  "/root/repo/src/core/interaction.cpp" "src/core/CMakeFiles/dlrmopt_core.dir/interaction.cpp.o" "gcc" "src/core/CMakeFiles/dlrmopt_core.dir/interaction.cpp.o.d"
  "/root/repo/src/core/mlp.cpp" "src/core/CMakeFiles/dlrmopt_core.dir/mlp.cpp.o" "gcc" "src/core/CMakeFiles/dlrmopt_core.dir/mlp.cpp.o.d"
  "/root/repo/src/core/model_config.cpp" "src/core/CMakeFiles/dlrmopt_core.dir/model_config.cpp.o" "gcc" "src/core/CMakeFiles/dlrmopt_core.dir/model_config.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/core/CMakeFiles/dlrmopt_core.dir/pipeline.cpp.o" "gcc" "src/core/CMakeFiles/dlrmopt_core.dir/pipeline.cpp.o.d"
  "/root/repo/src/core/scheme.cpp" "src/core/CMakeFiles/dlrmopt_core.dir/scheme.cpp.o" "gcc" "src/core/CMakeFiles/dlrmopt_core.dir/scheme.cpp.o.d"
  "/root/repo/src/core/simd.cpp" "src/core/CMakeFiles/dlrmopt_core.dir/simd.cpp.o" "gcc" "src/core/CMakeFiles/dlrmopt_core.dir/simd.cpp.o.d"
  "/root/repo/src/core/tensor.cpp" "src/core/CMakeFiles/dlrmopt_core.dir/tensor.cpp.o" "gcc" "src/core/CMakeFiles/dlrmopt_core.dir/tensor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
