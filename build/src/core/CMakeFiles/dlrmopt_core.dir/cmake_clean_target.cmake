file(REMOVE_RECURSE
  "libdlrmopt_core.a"
)
