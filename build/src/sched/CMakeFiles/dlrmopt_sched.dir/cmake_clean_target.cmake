file(REMOVE_RECURSE
  "libdlrmopt_sched.a"
)
