# Empty dependencies file for dlrmopt_sched.
# This may be replaced when dependencies are built.
