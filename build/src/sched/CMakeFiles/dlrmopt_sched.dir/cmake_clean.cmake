file(REMOVE_RECURSE
  "CMakeFiles/dlrmopt_sched.dir/ht_thread_pool.cpp.o"
  "CMakeFiles/dlrmopt_sched.dir/ht_thread_pool.cpp.o.d"
  "CMakeFiles/dlrmopt_sched.dir/mp_ht_runner.cpp.o"
  "CMakeFiles/dlrmopt_sched.dir/mp_ht_runner.cpp.o.d"
  "CMakeFiles/dlrmopt_sched.dir/topology.cpp.o"
  "CMakeFiles/dlrmopt_sched.dir/topology.cpp.o.d"
  "libdlrmopt_sched.a"
  "libdlrmopt_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlrmopt_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
