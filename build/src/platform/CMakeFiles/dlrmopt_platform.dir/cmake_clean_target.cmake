file(REMOVE_RECURSE
  "libdlrmopt_platform.a"
)
