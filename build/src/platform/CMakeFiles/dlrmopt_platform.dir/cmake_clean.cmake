file(REMOVE_RECURSE
  "CMakeFiles/dlrmopt_platform.dir/cpu_config.cpp.o"
  "CMakeFiles/dlrmopt_platform.dir/cpu_config.cpp.o.d"
  "CMakeFiles/dlrmopt_platform.dir/evaluator.cpp.o"
  "CMakeFiles/dlrmopt_platform.dir/evaluator.cpp.o.d"
  "CMakeFiles/dlrmopt_platform.dir/report.cpp.o"
  "CMakeFiles/dlrmopt_platform.dir/report.cpp.o.d"
  "CMakeFiles/dlrmopt_platform.dir/timing.cpp.o"
  "CMakeFiles/dlrmopt_platform.dir/timing.cpp.o.d"
  "libdlrmopt_platform.a"
  "libdlrmopt_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlrmopt_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
