# Empty compiler generated dependencies file for dlrmopt_platform.
# This may be replaced when dependencies are built.
