
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/platform/cpu_config.cpp" "src/platform/CMakeFiles/dlrmopt_platform.dir/cpu_config.cpp.o" "gcc" "src/platform/CMakeFiles/dlrmopt_platform.dir/cpu_config.cpp.o.d"
  "/root/repo/src/platform/evaluator.cpp" "src/platform/CMakeFiles/dlrmopt_platform.dir/evaluator.cpp.o" "gcc" "src/platform/CMakeFiles/dlrmopt_platform.dir/evaluator.cpp.o.d"
  "/root/repo/src/platform/report.cpp" "src/platform/CMakeFiles/dlrmopt_platform.dir/report.cpp.o" "gcc" "src/platform/CMakeFiles/dlrmopt_platform.dir/report.cpp.o.d"
  "/root/repo/src/platform/timing.cpp" "src/platform/CMakeFiles/dlrmopt_platform.dir/timing.cpp.o" "gcc" "src/platform/CMakeFiles/dlrmopt_platform.dir/timing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dlrmopt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/dlrmopt_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/memsim/CMakeFiles/dlrmopt_memsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
