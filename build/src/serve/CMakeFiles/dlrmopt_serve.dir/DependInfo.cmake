
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/serve/latency_stats.cpp" "src/serve/CMakeFiles/dlrmopt_serve.dir/latency_stats.cpp.o" "gcc" "src/serve/CMakeFiles/dlrmopt_serve.dir/latency_stats.cpp.o.d"
  "/root/repo/src/serve/loadgen.cpp" "src/serve/CMakeFiles/dlrmopt_serve.dir/loadgen.cpp.o" "gcc" "src/serve/CMakeFiles/dlrmopt_serve.dir/loadgen.cpp.o.d"
  "/root/repo/src/serve/queue_sim.cpp" "src/serve/CMakeFiles/dlrmopt_serve.dir/queue_sim.cpp.o" "gcc" "src/serve/CMakeFiles/dlrmopt_serve.dir/queue_sim.cpp.o.d"
  "/root/repo/src/serve/sla.cpp" "src/serve/CMakeFiles/dlrmopt_serve.dir/sla.cpp.o" "gcc" "src/serve/CMakeFiles/dlrmopt_serve.dir/sla.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dlrmopt_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
