# Empty dependencies file for dlrmopt_serve.
# This may be replaced when dependencies are built.
