file(REMOVE_RECURSE
  "libdlrmopt_serve.a"
)
