file(REMOVE_RECURSE
  "CMakeFiles/dlrmopt_serve.dir/latency_stats.cpp.o"
  "CMakeFiles/dlrmopt_serve.dir/latency_stats.cpp.o.d"
  "CMakeFiles/dlrmopt_serve.dir/loadgen.cpp.o"
  "CMakeFiles/dlrmopt_serve.dir/loadgen.cpp.o.d"
  "CMakeFiles/dlrmopt_serve.dir/queue_sim.cpp.o"
  "CMakeFiles/dlrmopt_serve.dir/queue_sim.cpp.o.d"
  "CMakeFiles/dlrmopt_serve.dir/sla.cpp.o"
  "CMakeFiles/dlrmopt_serve.dir/sla.cpp.o.d"
  "libdlrmopt_serve.a"
  "libdlrmopt_serve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlrmopt_serve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
