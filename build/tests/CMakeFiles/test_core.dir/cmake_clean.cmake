file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_autotune.cpp.o"
  "CMakeFiles/test_core.dir/core/test_autotune.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_dlrm.cpp.o"
  "CMakeFiles/test_core.dir/core/test_dlrm.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_embedding.cpp.o"
  "CMakeFiles/test_core.dir/core/test_embedding.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_gemm.cpp.o"
  "CMakeFiles/test_core.dir/core/test_gemm.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_interaction.cpp.o"
  "CMakeFiles/test_core.dir/core/test_interaction.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_mlp.cpp.o"
  "CMakeFiles/test_core.dir/core/test_mlp.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_model_config.cpp.o"
  "CMakeFiles/test_core.dir/core/test_model_config.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_pipeline.cpp.o"
  "CMakeFiles/test_core.dir/core/test_pipeline.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_scheme.cpp.o"
  "CMakeFiles/test_core.dir/core/test_scheme.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_simd.cpp.o"
  "CMakeFiles/test_core.dir/core/test_simd.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_tensor.cpp.o"
  "CMakeFiles/test_core.dir/core/test_tensor.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
