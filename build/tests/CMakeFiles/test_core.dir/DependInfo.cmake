
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_autotune.cpp" "tests/CMakeFiles/test_core.dir/core/test_autotune.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_autotune.cpp.o.d"
  "/root/repo/tests/core/test_dlrm.cpp" "tests/CMakeFiles/test_core.dir/core/test_dlrm.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_dlrm.cpp.o.d"
  "/root/repo/tests/core/test_embedding.cpp" "tests/CMakeFiles/test_core.dir/core/test_embedding.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_embedding.cpp.o.d"
  "/root/repo/tests/core/test_gemm.cpp" "tests/CMakeFiles/test_core.dir/core/test_gemm.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_gemm.cpp.o.d"
  "/root/repo/tests/core/test_interaction.cpp" "tests/CMakeFiles/test_core.dir/core/test_interaction.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_interaction.cpp.o.d"
  "/root/repo/tests/core/test_mlp.cpp" "tests/CMakeFiles/test_core.dir/core/test_mlp.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_mlp.cpp.o.d"
  "/root/repo/tests/core/test_model_config.cpp" "tests/CMakeFiles/test_core.dir/core/test_model_config.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_model_config.cpp.o.d"
  "/root/repo/tests/core/test_pipeline.cpp" "tests/CMakeFiles/test_core.dir/core/test_pipeline.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_pipeline.cpp.o.d"
  "/root/repo/tests/core/test_scheme.cpp" "tests/CMakeFiles/test_core.dir/core/test_scheme.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_scheme.cpp.o.d"
  "/root/repo/tests/core/test_simd.cpp" "tests/CMakeFiles/test_core.dir/core/test_simd.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_simd.cpp.o.d"
  "/root/repo/tests/core/test_tensor.cpp" "tests/CMakeFiles/test_core.dir/core/test_tensor.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_tensor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dlrmopt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/dlrmopt_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/memsim/CMakeFiles/dlrmopt_memsim.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/dlrmopt_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/dlrmopt_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/serve/CMakeFiles/dlrmopt_serve.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
