file(REMOVE_RECURSE
  "CMakeFiles/test_serve.dir/serve/test_latency_stats.cpp.o"
  "CMakeFiles/test_serve.dir/serve/test_latency_stats.cpp.o.d"
  "CMakeFiles/test_serve.dir/serve/test_loadgen.cpp.o"
  "CMakeFiles/test_serve.dir/serve/test_loadgen.cpp.o.d"
  "CMakeFiles/test_serve.dir/serve/test_queue_properties.cpp.o"
  "CMakeFiles/test_serve.dir/serve/test_queue_properties.cpp.o.d"
  "CMakeFiles/test_serve.dir/serve/test_queue_sim.cpp.o"
  "CMakeFiles/test_serve.dir/serve/test_queue_sim.cpp.o.d"
  "CMakeFiles/test_serve.dir/serve/test_sla.cpp.o"
  "CMakeFiles/test_serve.dir/serve/test_sla.cpp.o.d"
  "test_serve"
  "test_serve.pdb"
  "test_serve[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_serve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
