file(REMOVE_RECURSE
  "CMakeFiles/test_platform.dir/platform/test_cpu_config.cpp.o"
  "CMakeFiles/test_platform.dir/platform/test_cpu_config.cpp.o.d"
  "CMakeFiles/test_platform.dir/platform/test_evaluator.cpp.o"
  "CMakeFiles/test_platform.dir/platform/test_evaluator.cpp.o.d"
  "CMakeFiles/test_platform.dir/platform/test_evaluator_consistency.cpp.o"
  "CMakeFiles/test_platform.dir/platform/test_evaluator_consistency.cpp.o.d"
  "CMakeFiles/test_platform.dir/platform/test_report.cpp.o"
  "CMakeFiles/test_platform.dir/platform/test_report.cpp.o.d"
  "CMakeFiles/test_platform.dir/platform/test_timing.cpp.o"
  "CMakeFiles/test_platform.dir/platform/test_timing.cpp.o.d"
  "CMakeFiles/test_platform.dir/platform/test_timing_properties.cpp.o"
  "CMakeFiles/test_platform.dir/platform/test_timing_properties.cpp.o.d"
  "test_platform"
  "test_platform.pdb"
  "test_platform[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
