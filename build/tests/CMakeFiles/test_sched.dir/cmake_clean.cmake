file(REMOVE_RECURSE
  "CMakeFiles/test_sched.dir/sched/test_ht_thread_pool.cpp.o"
  "CMakeFiles/test_sched.dir/sched/test_ht_thread_pool.cpp.o.d"
  "CMakeFiles/test_sched.dir/sched/test_mp_ht_runner.cpp.o"
  "CMakeFiles/test_sched.dir/sched/test_mp_ht_runner.cpp.o.d"
  "CMakeFiles/test_sched.dir/sched/test_topology.cpp.o"
  "CMakeFiles/test_sched.dir/sched/test_topology.cpp.o.d"
  "test_sched"
  "test_sched.pdb"
  "test_sched[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
