file(REMOVE_RECURSE
  "CMakeFiles/test_memsim.dir/memsim/test_cache.cpp.o"
  "CMakeFiles/test_memsim.dir/memsim/test_cache.cpp.o.d"
  "CMakeFiles/test_memsim.dir/memsim/test_cache_properties.cpp.o"
  "CMakeFiles/test_memsim.dir/memsim/test_cache_properties.cpp.o.d"
  "CMakeFiles/test_memsim.dir/memsim/test_dram.cpp.o"
  "CMakeFiles/test_memsim.dir/memsim/test_dram.cpp.o.d"
  "CMakeFiles/test_memsim.dir/memsim/test_embedding_sim.cpp.o"
  "CMakeFiles/test_memsim.dir/memsim/test_embedding_sim.cpp.o.d"
  "CMakeFiles/test_memsim.dir/memsim/test_hierarchy.cpp.o"
  "CMakeFiles/test_memsim.dir/memsim/test_hierarchy.cpp.o.d"
  "CMakeFiles/test_memsim.dir/memsim/test_hw_prefetcher.cpp.o"
  "CMakeFiles/test_memsim.dir/memsim/test_hw_prefetcher.cpp.o.d"
  "CMakeFiles/test_memsim.dir/memsim/test_reuse.cpp.o"
  "CMakeFiles/test_memsim.dir/memsim/test_reuse.cpp.o.d"
  "CMakeFiles/test_memsim.dir/memsim/test_reuse_model.cpp.o"
  "CMakeFiles/test_memsim.dir/memsim/test_reuse_model.cpp.o.d"
  "CMakeFiles/test_memsim.dir/memsim/test_sockets.cpp.o"
  "CMakeFiles/test_memsim.dir/memsim/test_sockets.cpp.o.d"
  "test_memsim"
  "test_memsim.pdb"
  "test_memsim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_memsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
