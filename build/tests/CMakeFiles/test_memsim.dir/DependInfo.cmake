
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/memsim/test_cache.cpp" "tests/CMakeFiles/test_memsim.dir/memsim/test_cache.cpp.o" "gcc" "tests/CMakeFiles/test_memsim.dir/memsim/test_cache.cpp.o.d"
  "/root/repo/tests/memsim/test_cache_properties.cpp" "tests/CMakeFiles/test_memsim.dir/memsim/test_cache_properties.cpp.o" "gcc" "tests/CMakeFiles/test_memsim.dir/memsim/test_cache_properties.cpp.o.d"
  "/root/repo/tests/memsim/test_dram.cpp" "tests/CMakeFiles/test_memsim.dir/memsim/test_dram.cpp.o" "gcc" "tests/CMakeFiles/test_memsim.dir/memsim/test_dram.cpp.o.d"
  "/root/repo/tests/memsim/test_embedding_sim.cpp" "tests/CMakeFiles/test_memsim.dir/memsim/test_embedding_sim.cpp.o" "gcc" "tests/CMakeFiles/test_memsim.dir/memsim/test_embedding_sim.cpp.o.d"
  "/root/repo/tests/memsim/test_hierarchy.cpp" "tests/CMakeFiles/test_memsim.dir/memsim/test_hierarchy.cpp.o" "gcc" "tests/CMakeFiles/test_memsim.dir/memsim/test_hierarchy.cpp.o.d"
  "/root/repo/tests/memsim/test_hw_prefetcher.cpp" "tests/CMakeFiles/test_memsim.dir/memsim/test_hw_prefetcher.cpp.o" "gcc" "tests/CMakeFiles/test_memsim.dir/memsim/test_hw_prefetcher.cpp.o.d"
  "/root/repo/tests/memsim/test_reuse.cpp" "tests/CMakeFiles/test_memsim.dir/memsim/test_reuse.cpp.o" "gcc" "tests/CMakeFiles/test_memsim.dir/memsim/test_reuse.cpp.o.d"
  "/root/repo/tests/memsim/test_reuse_model.cpp" "tests/CMakeFiles/test_memsim.dir/memsim/test_reuse_model.cpp.o" "gcc" "tests/CMakeFiles/test_memsim.dir/memsim/test_reuse_model.cpp.o.d"
  "/root/repo/tests/memsim/test_sockets.cpp" "tests/CMakeFiles/test_memsim.dir/memsim/test_sockets.cpp.o" "gcc" "tests/CMakeFiles/test_memsim.dir/memsim/test_sockets.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dlrmopt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/dlrmopt_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/memsim/CMakeFiles/dlrmopt_memsim.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/dlrmopt_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/dlrmopt_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/serve/CMakeFiles/dlrmopt_serve.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
