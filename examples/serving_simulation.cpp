/**
 * @file
 * Serving simulation: measures this host's real per-batch inference
 * latency for a scaled model, then drives the Poisson load
 * generator + FCFS queue to find the SLA-compliant arrival region
 * per execution scheme (the Sec. 6.5 methodology, on live numbers).
 *
 * Usage: serving_simulation [servers] [requests]
 */

#include <cstdio>
#include <cstdlib>

#include "core/pipeline.hpp"
#include "sched/topology.hpp"
#include "serve/loadgen.hpp"
#include "serve/queue_sim.hpp"
#include "trace/generator.hpp"

using namespace dlrmopt;

int
main(int argc, char **argv)
{
    const std::size_t servers =
        argc > 1 ? std::strtoul(argv[1], nullptr, 10)
                 : sched::Topology::detect().numPhysicalCores();
    const std::size_t requests =
        argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 4000;

    // A mixed model (RMC1: 100 ms SLA), scaled for this host: fewer
    // rows/tables and a slimmer bottom MLP so one batch takes tens of
    // milliseconds on laptop-class machines.
    core::ModelConfig cfg = core::rm1().scaledToFit(0.5 * (1u << 30));
    cfg.bottomMlp = {512, 256, cfg.dim};
    cfg.topMlp = {128, 1};
    std::printf("model %s (%.2f GB embeddings), SLA %.0f ms, %zu "
                "serving cores\n",
                cfg.name.c_str(), cfg.embeddingBytes() / (1u << 30),
                cfg.slaMs(), servers);

    core::DlrmModel model(cfg, 3);
    traces::TraceConfig tc =
        traces::TraceConfig::forModel(cfg, traces::Hotness::Low, 5);
    traces::TraceGenerator gen(tc);
    std::vector<core::SparseBatch> batches;
    for (std::size_t b = 0; b < 6; ++b)
        batches.push_back(gen.batch(b));
    core::Tensor dense(core::paperBatchSize, cfg.denseDim());
    dense.randomize(9);

    // Measure service times per scheme on this machine.
    struct Row
    {
        core::Scheme scheme;
        double serviceMs;
    };
    std::vector<Row> rows;
    for (auto s : {core::Scheme::Baseline, core::Scheme::SwPf,
                   core::Scheme::MpHt, core::Scheme::Integrated}) {
        core::InferencePipeline pipe(model, s);
        pipe.run(dense, {batches.front()}); // warm-up
        const auto st = pipe.run(dense, batches);
        rows.push_back({s, st.avgBatchMs()});
        std::printf("measured %-12s service time: %.2f ms/batch\n",
                    core::schemeName(s).c_str(), st.avgBatchMs());
    }

    // Sweep arrival rates around each scheme's capacity.
    std::printf("\n%-14s", "arrival(ms)");
    for (const auto& r : rows)
        std::printf("%14s", core::schemeName(r.scheme).c_str());
    std::printf("      (p95 latency ms; * = violates SLA)\n");

    const double base = rows.front().serviceMs /
                        static_cast<double>(servers);
    for (double mult : {4.0, 2.0, 1.5, 1.2, 1.0, 0.8, 0.6}) {
        const double arrival = base * mult;
        serve::PoissonLoadGen lg(arrival, 11);
        const auto arrivals = lg.arrivals(requests);
        std::printf("%-14.3f", arrival);
        for (const auto& r : rows) {
            const auto q =
                serve::simulateQueue(arrivals, r.serviceMs, servers);
            const double p95 = q.latency.p95();
            std::printf("%13.1f%c", p95,
                        p95 <= cfg.slaMs() ? ' ' : '*');
        }
        std::printf("\n");
    }

    std::printf("\nFaster schemes keep p95 under the SLA at arrival "
                "rates where the baseline saturates — the Fig. 17 "
                "effect, reproduced with live measurements.\n");
    return 0;
}
