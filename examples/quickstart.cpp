/**
 * @file
 * Quickstart: build a DLRM, generate synthetic sparse inputs, and
 * run real inference under the paper's execution schemes, measuring
 * wall-clock per-batch latency on this machine.
 *
 * The model is a scaled-down rm2_1 (same embedding dimension and
 * lookup structure; fewer rows/tables) so it fits small hosts while
 * staying larger than typical LLCs — the regime where the paper's
 * software prefetching matters.
 *
 * Usage: quickstart [num_batches]
 */

#include <cstdio>
#include <cstdlib>

#include "core/dlrm.hpp"
#include "core/pipeline.hpp"
#include "trace/generator.hpp"

using namespace dlrmopt;

int
main(int argc, char **argv)
{
    const std::size_t num_batches =
        argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 8;

    // 1. Pick a model (Table 2 of the paper) and scale it to ~1 GB of
    //    embeddings for laptop-class hosts.
    core::ModelConfig cfg =
        core::rm2_1().scaledToFit(1.0 * (1u << 30));
    std::printf("model: %s — %zu tables x %zu rows x dim %zu "
                "(%.2f GB embeddings), %zu lookups/sample\n",
                cfg.name.c_str(), cfg.tables, cfg.rows, cfg.dim,
                cfg.embeddingBytes() / (1u << 30), cfg.lookups);

    std::printf("materializing model (allocates the tables)...\n");
    core::DlrmModel model(cfg, /*seed=*/42);

    // 2. Generate a Medium-hot synthetic trace (Sec. 5's trace
    //    statistics) and dense features.
    traces::TraceConfig tc = traces::TraceConfig::forModel(
        cfg, traces::Hotness::Medium, /*seed=*/1);
    traces::TraceGenerator gen(tc);
    std::vector<core::SparseBatch> batches;
    for (std::size_t b = 0; b < num_batches; ++b)
        batches.push_back(gen.batch(b));

    core::Tensor dense(core::paperBatchSize, cfg.denseDim());
    dense.randomize(7);

    // 3. Run each scheme and report per-batch latency. On machines
    //    without SMT the HT schemes still run (threads share cores),
    //    but their benefit needs real sibling hyperthreads.
    std::printf("\n%-12s %14s %14s %10s\n", "scheme", "batch (ms)",
                "embedding (ms)", "speedup");
    double base_ms = 0.0;
    const core::Scheme order[] = {
        core::Scheme::Baseline, core::Scheme::HwPfOff,
        core::Scheme::SwPf,     core::Scheme::DpHt,
        core::Scheme::MpHt,     core::Scheme::Integrated};
    for (auto s : order) {
        core::InferencePipeline pipe(model, s);
        // Warm-up pass, then the measured pass.
        pipe.run(dense, {batches.front()});
        const auto st = pipe.run(dense, batches);
        const double ms = st.avgBatchMs();
        if (s == core::Scheme::Baseline)
            base_ms = ms;
        std::printf("%-12s %14.3f %14.3f %9.2fx\n",
                    core::schemeName(s).c_str(), ms,
                    st.embMs / static_cast<double>(st.batches),
                    base_ms > 0.0 ? base_ms / ms : 0.0);
    }

    std::printf("\nPredictions are identical across schemes; only "
                "timing differs. See examples/platform_explorer for "
                "the paper's simulated server platforms.\n");
    return 0;
}
