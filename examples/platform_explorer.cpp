/**
 * @file
 * Platform explorer: evaluate any (CPU platform, model, dataset,
 * scheme, core count) point on the simulated-server path — the same
 * machinery behind the figure benches — and print the full result:
 * stage times, cache behaviour, prefetch accounting, and bandwidth.
 *
 * Usage:
 *   platform_explorer [cpu] [model] [hotness] [cores]
 *     cpu     = SKL | CSL | ICL | SPR | Zen3        (default CSL)
 *     model   = rm1 | rm2_1 | rm2_2 | rm2_3         (default rm2_1)
 *     hotness = low | medium | high                 (default low)
 *     cores   = 1..N                                (default 8)
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "platform/evaluator.hpp"

using namespace dlrmopt;

namespace
{

traces::Hotness
parseHotness(const std::string& v)
{
    if (v == "low")
        return traces::Hotness::Low;
    if (v == "medium")
        return traces::Hotness::Medium;
    if (v == "high")
        return traces::Hotness::High;
    std::fprintf(stderr, "unknown hotness '%s'\n", v.c_str());
    std::exit(1);
}

} // namespace

int
main(int argc, char **argv)
{
    platform::EvalConfig cfg;
    cfg.cpu = platform::cpuByName(argc > 1 ? argv[1] : "CSL");
    cfg.model = core::modelByName(argc > 2 ? argv[2] : "rm2_1");
    cfg.hotness = parseHotness(argc > 3 ? argv[3] : "low");
    cfg.cores = argc > 4 ? std::strtoul(argv[4], nullptr, 10) : 8;
    cfg.maxSimTables = 24; // keep interactive latency reasonable

    std::printf("platform %s (%zu cores, %.1f GHz, LLC %.1f MB, "
                "%.0f GB/s), model %s, %s, %zu active cores\n",
                cfg.cpu.name.c_str(), cfg.cpu.cores, cfg.cpu.freqGHz,
                cfg.cpu.l3.sizeBytes / (1024.0 * 1024.0),
                cfg.cpu.dramBandwidthGBs, cfg.model.name.c_str(),
                traces::hotnessName(cfg.hotness).c_str(), cfg.cores);

    std::printf("\n%-12s %9s %9s %9s %9s %9s | %8s %8s %7s\n",
                "scheme", "batch ms", "bottom", "emb", "inter", "top",
                "L1D hit", "lat(cy)", "GB/s");
    double base = 0.0;
    for (auto s : core::allSchemes) {
        cfg.scheme = s;
        const auto r = platform::evaluate(cfg);
        if (s == core::Scheme::Baseline)
            base = r.batchMs;
        std::printf("%-12s %9.2f %9.2f %9.2f %9.2f %9.2f | %8.3f "
                    "%8.1f %7.1f",
                    core::schemeName(s).c_str(), r.batchMs,
                    r.stages.bottom, r.stages.emb, r.stages.inter,
                    r.stages.top, r.sim.vtuneL1HitRate(),
                    r.embTiming.avgLoadLatency,
                    r.embTiming.achievedGBs);
        if (base > 0.0)
            std::printf("  %5.2fx", base / r.batchMs);
        std::printf("\n");

        if (s == core::Scheme::SwPf) {
            std::printf("%-12s   prefetch: issued %llu lines, "
                        "useless %llu, DRAM fills %llu, covered "
                        "%llu\n",
                        "",
                        static_cast<unsigned long long>(
                            r.sim.swPfIssued),
                        static_cast<unsigned long long>(
                            r.sim.swPfUseless),
                        static_cast<unsigned long long>(
                            r.sim.swPfDramFills),
                        static_cast<unsigned long long>(
                            r.sim.swCoveredTotal()));
        }
    }
    std::printf("\nSLA target for this model class: %.0f ms\n",
                cfg.model.slaMs());
    return 0;
}
