/**
 * @file
 * Trace characterization walkthrough (Sec. 3 of the paper): generate
 * or load an embedding-lookup trace, then report its hotness
 * statistics, reuse-distance profile, and modeled cache hit rates —
 * the Fig. 5/6/7 analysis as a reusable tool.
 *
 * Usage:
 *   characterize_trace [low|medium|high|random|one-item] [cores]
 *   characterize_trace --file trace.bin [cores]
 *
 * The --file form reads a trace previously written with
 * traces::saveTrace() (e.g. exported from production inputs in the
 * offsets/indices layout of Meta's dlrm_datasets).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "memsim/reuse.hpp"
#include "memsim/reuse_model.hpp"
#include "trace/generator.hpp"
#include "trace/io.hpp"
#include "trace/stats.hpp"

using namespace dlrmopt;

namespace
{

traces::Hotness
parseHotness(const char *s)
{
    const std::string v = s;
    if (v == "low")
        return traces::Hotness::Low;
    if (v == "medium")
        return traces::Hotness::Medium;
    if (v == "high")
        return traces::Hotness::High;
    if (v == "random")
        return traces::Hotness::Random;
    if (v == "one-item")
        return traces::Hotness::OneItem;
    std::fprintf(stderr, "unknown hotness '%s'\n", s);
    std::exit(1);
}

void
reportStats(const std::vector<RowIndex>& stream, const char *label)
{
    const auto st = traces::computeAccessStats(stream);
    std::printf("\n-- access statistics (%s) --\n", label);
    std::printf("accesses: %llu, unique rows: %zu (%.1f%% unique)\n",
                static_cast<unsigned long long>(st.totalAccesses),
                st.uniqueRows(), 100.0 * st.uniqueFraction());
    std::printf("hottest row: %llu accesses; top-64: %.1f%%; "
                "top-1024: %.1f%% of traffic\n",
                st.sortedCounts.empty()
                    ? 0ull
                    : static_cast<unsigned long long>(
                          st.sortedCounts.front()),
                100.0 * st.topKShare(64), 100.0 * st.topKShare(1024));

    const auto hist = memsim::computeReuseHistogram(
        std::vector<std::uint64_t>(stream.begin(), stream.end()));
    std::printf("cold accesses: %.1f%%\n", 100.0 * hist.coldFraction());
    std::printf("fully-associative hit rate at 64 rows (L1D-sized): "
                "%.3f; at 2048 rows (L2): %.3f; at 73216 rows (LLC): "
                "%.3f\n",
                hist.hitRateAtCapacity(64),
                hist.hitRateAtCapacity(2048),
                hist.hitRateAtCapacity(73'216));
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc >= 2 && std::strcmp(argv[1], "--file") == 0) {
        if (argc < 3) {
            std::fprintf(stderr, "--file needs a path\n");
            return 1;
        }
        const auto batches = traces::loadTrace(argv[2]);
        std::printf("loaded %zu batches from %s\n", batches.size(),
                    argv[2]);
        if (batches.empty())
            return 0;
        // Analyze table 0 across all batches.
        std::vector<RowIndex> stream;
        for (const auto& b : batches) {
            stream.insert(stream.end(), b.indices[0].begin(),
                          b.indices[0].end());
        }
        reportStats(stream, "table 0 of file");
        return 0;
    }

    const traces::Hotness h =
        argc > 1 ? parseHotness(argv[1]) : traces::Hotness::Medium;
    const std::size_t cores =
        argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 4;

    const auto model = core::rm2_1();
    traces::TraceConfig tc = traces::TraceConfig::forModel(model, h, 1);
    tc.numBatches = 40;
    traces::TraceGenerator gen(tc);

    std::printf("synthetic %s trace for %s (%zu tables, %zu "
                "lookups/sample, calibrated uniform fraction %.3f)\n",
                traces::hotnessName(h).c_str(), model.name.c_str(),
                model.tables, model.lookups, gen.uniformFraction());

    reportStats(gen.tableStream(0, 0, tc.numBatches), "table 0");

    // The multi-core reuse model of Fig. 6/7.
    memsim::ReuseModelConfig rc;
    rc.trace = tc;
    rc.trace.tables = 12; // keep the example snappy
    rc.dim = model.dim;
    rc.cores = cores;
    rc.numBatches = std::max<std::size_t>(cores, 8);
    const auto res = memsim::runReuseModel(rc);
    std::printf("\n-- multi-core reuse model (%zu cores, %zu tables "
                "folded) --\n", cores, rc.trace.tables);
    std::printf("cold: %.1f%%; hit rates L1D/L2/LLC = %.3f / %.3f / "
                "%.3f\n",
                100.0 * res.coldFraction(), res.hitRates[0],
                res.hitRates[1], res.hitRates[2]);
    std::printf("\nInterpretation (Sec. 3.3): reuse distances beyond "
                "the LLC capacity and high cold fractions are why "
                "LRU caches cannot capture this working set — the "
                "motivation for application-level prefetching.\n");
    return 0;
}
